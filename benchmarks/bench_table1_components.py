"""Table 1 — components supported by Campion and the check used for each.

A property of the tool rather than a measurement; regenerated from the
live dispatch table so the bench fails if a component's check type ever
drifts from the paper's design.
"""

from conftest import emit

from repro.core import COMPONENT_CHECKS, ComponentKind
from repro.core.config_diff import config_diff
from repro.workloads.figure1 import figure1_devices

PAPER_TABLE1 = {
    ComponentKind.ACL: "SemanticDiff",
    ComponentKind.ROUTE_MAP: "SemanticDiff",
    ComponentKind.STATIC_ROUTE: "StructuralDiff",
    ComponentKind.CONNECTED_ROUTE: "StructuralDiff",
    ComponentKind.BGP_PROPERTY: "StructuralDiff",
    ComponentKind.OSPF_PROPERTY: "StructuralDiff",
    ComponentKind.ADMIN_DISTANCE: "StructuralDiff",
}


def test_table1_component_checks(benchmark, results_dir):
    # The timed body is the dispatch a full ConfigDiff performs.
    devices = figure1_devices()
    benchmark(lambda: config_diff(*devices))

    rows = ["| Feature | Check Used |", "|---|---|"]
    for kind, check in COMPONENT_CHECKS.items():
        rows.append(f"| {kind.value} | {check} |")
    emit(results_dir, "table1_components", "\n".join(rows))

    assert COMPONENT_CHECKS == PAPER_TABLE1
