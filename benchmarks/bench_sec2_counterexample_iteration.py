"""§2.1 — how many iterated counterexamples the Minesweeper-style loop
needs before it informs the operator as well as Campion's first report.

Paper: 7 counterexamples until every prefix range relevant to
Difference 1 has a witness; after editing the second Cisco prefix-list
line from ``le 32`` to ``le 31``, 27 counterexamples until the solver
first exhibits Difference 1 at all.  Exact counts are solver-model-order
idiosyncrasies; the qualitative claims this bench asserts are (a) one
counterexample never suffices, (b) several are needed in the median,
and (c) the count is fragile under a trivial config edit.
"""

import statistics

from conftest import emit

from repro.baseline import count_to_cover
from repro.encoding import RouteSpace
from repro.model import Prefix, PrefixRange
from repro.parsers import parse_cisco
from repro.workloads.figure1 import CISCO_FIGURE1, figure1_devices

SEEDS = range(10)


def _coverage_counts():
    cisco, juniper = figure1_devices()
    map1, map2 = cisco.route_maps["POL"], juniper.route_maps["POL"]
    space = RouteSpace([map1, map2])
    targets = [
        space.range_pred(PrefixRange(Prefix.parse("10.9.0.0/16"), 17, 32)),
        space.range_pred(PrefixRange(Prefix.parse("10.100.0.0/16"), 17, 32)),
    ]
    return [
        count_to_cover(
            map1, map2, targets, space, seed=seed, max_iterations=400, block_mode="cube"
        )
        for seed in SEEDS
    ]


def _mutated_counts():
    mutated_text = CISCO_FIGURE1.replace(
        "ip prefix-list NETS permit 10.100.0.0/16 le 32",
        "ip prefix-list NETS permit 10.100.0.0/16 le 31",
    )
    cisco = parse_cisco(mutated_text, "cisco_mutated.cfg")
    _, juniper = figure1_devices()
    map1, map2 = cisco.route_maps["POL"], juniper.route_maps["POL"]
    space = RouteSpace([map1, map2])
    difference1_region = space.range_pred(
        PrefixRange(Prefix.parse("10.9.0.0/16"), 17, 32)
    ) | space.range_pred(PrefixRange(Prefix.parse("10.100.0.0/16"), 17, 31))
    return [
        count_to_cover(
            map1,
            map2,
            [difference1_region],
            space,
            seed=seed,
            max_iterations=400,
            block_mode="cube",
        )
        for seed in SEEDS
    ]


def test_sec2_counterexample_iteration(benchmark, results_dir):
    original = benchmark(_coverage_counts)
    mutated = _mutated_counts()

    covered_original = [c for c in original if c is not None]
    covered_mutated = [c for c in mutated if c is not None]
    assert covered_original, "coverage must be reachable"
    assert covered_mutated

    median_original = statistics.median(covered_original)
    rows = [
        "Counterexamples needed (Minesweeper-style blocking loop, 10 seeds)",
        "",
        "| experiment | paper | ours (per-seed) | ours (median) |",
        "|---|---|---|---|",
        f"| cover both Difference-1 ranges (Figure 1) | 7 | {original} | {median_original} |",
        f"| first Difference-1 witness (le 32 -> le 31 edit) | 27 | {mutated} | "
        f"{statistics.median(covered_mutated)} |",
        "",
        "Campion reports both differences, fully localized, in one run.",
    ]
    emit(results_dir, "sec2_counterexample_iteration", "\n".join(rows))

    # Qualitative claims:
    assert min(covered_original) >= 2, "one CE cannot cover two disjoint ranges"
    assert median_original >= 3, "several counterexamples needed in the median"
    spread = max(covered_original + covered_mutated) - min(
        covered_original + covered_mutated
    )
    assert spread >= 3, "the approach is fragile: counts vary widely"
