"""Table 8 — university network results.

Regenerates both halves: (a) SemanticDiff outputted-difference counts
per export/import route-map pair, and (b) the structural classes on the
core pair (two static-route classes, one BGP-properties class), plus
the §5.4 claim that comparing both pairs takes seconds.
"""

import time

from conftest import emit

from repro.core import ComponentKind, config_diff, diff_route_maps, group_differences
from repro.workloads.university import university_network

# (Outputted Differences, Differences Reported) per Table 8(a).
PAPER_TABLE8A = {
    "Export 1": (5, 5),
    "Export 2": (1, 1),
    "Export 3": (1, 1),
    "Export 4": (1, 1),
    "Export 5": (2, 1),
    "Import": (0, 0),
}


def _run():
    network = university_network()
    outputted = {}
    start = time.perf_counter()
    for pair in network.pairs():
        for label, (cisco_name, juniper_name) in {
            **pair.export_maps,
            **pair.import_maps,
        }.items():
            _, differences = diff_route_maps(
                pair.cisco.route_maps[cisco_name],
                pair.juniper.route_maps[juniper_name],
            )
            outputted[label] = (len(differences), len(group_differences(differences)))
    semantic_seconds = time.perf_counter() - start
    core_report = config_diff(network.core.cisco, network.core.juniper)
    return outputted, semantic_seconds, core_report


def test_table8_university_results(benchmark, results_dir):
    outputted, semantic_seconds, core_report = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    static = [
        d for d in core_report.structural if d.kind is ComponentKind.STATIC_ROUTE
    ]
    bgp = [d for d in core_report.structural if d.kind is ComponentKind.BGP_PROPERTY]
    attribute_class = [d for d in static if not d.is_presence_diff()]
    presence_class = [d for d in static if d.is_presence_diff()]

    rows = [
        "(a) SemanticDiff on route maps",
        "| Route Map | paper outputted | ours | paper reported | ours |",
        "|---|---|---|---|---|",
    ]
    for label, (expected_out, expected_rep) in PAPER_TABLE8A.items():
        ours_out, ours_rep = outputted[label]
        rows.append(
            f"| {label} | {expected_out} | {ours_out} | {expected_rep} | {ours_rep} |"
        )
    rows += [
        "",
        "(b) StructuralDiff on the core pair",
        "| Component | paper classes | ours |",
        "|---|---|---|",
        f"| Static Routes | 2 | {int(bool(attribute_class)) + int(bool(presence_class))} |",
        f"| BGP Properties | 1 | {int(bool(bgp))} |",
        "",
        f"semantic comparison of all pairs: {semantic_seconds:.2f}s "
        "(paper: 3s for core + border)",
    ]
    emit(results_dir, "table8_university", "\n".join(rows))

    assert outputted == PAPER_TABLE8A
    # Two classes of static differences (attribute + presence)...
    assert {d.attribute for d in attribute_class} == {"next-hop", "admin-distance"}
    assert len(presence_class) == 2
    # ...and one class of BGP property differences (send-community).
    assert {d.attribute for d in bgp} == {"send-community"}
    # §5.4: runtime is seconds, not minutes.
    assert semantic_seconds < 30.0
