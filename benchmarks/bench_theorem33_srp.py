"""Theorem 3.3 — local equivalence implies identical routing solutions.

Empirical validation over randomized networks on the SRP simulator:

* forward direction: every locally-equivalent pair (checked with
  Campion's own SemanticDiff per edge) yields identical stable routing
  solutions under the isomorphism;
* mutation direction: per-edge mutations are always flagged as local
  differences, and a majority of them change the routing solutions
  (those that don't are exactly the paper's 'latent' false positives,
  §5.3).
"""

import random

from conftest import emit

from repro.model import Action, ConcreteRoute, Prefix, RouteMap
from repro.srp import (
    BgpEdgeConfig,
    OspfEdgeConfig,
    check_local_equivalence,
    same_routing_solutions,
)

from repro.workloads.srp_random import random_network as _random_network
from repro.workloads.srp_random import renamed_copy as _renamed_copy

SEEDS = range(12)


def _run():
    forward_ok = 0
    mutations_flagged = 0
    mutations_diverged = 0
    total = 0
    for seed in SEEDS:
        network = _random_network(seed)
        copy, iso = _renamed_copy(network)
        assert check_local_equivalence(network, copy, iso) == []
        equal, _ = same_routing_solutions(network, copy, iso)
        if equal:
            forward_ok += 1

        # Mutate one random edge per network.
        rng = random.Random(seed + 1000)
        edge = rng.choice(network.topology.edges)
        mapped = (iso[edge[0]], iso[edge[1]])
        if rng.random() < 0.5:
            old = copy.bgp_edges[mapped]
            copy.bgp_edges[mapped] = BgpEdgeConfig(
                sender_asn=old.sender_asn,
                next_hop=old.next_hop,
                export_map=RouteMap("DENY-ALL", (), default_action=Action.DENY),
                import_map=old.import_map,
            )
        else:
            old_ospf = copy.ospf_edges[mapped]
            copy.ospf_edges[mapped] = OspfEdgeConfig(cost=old_ospf.cost + 7)
        total += 1
        violations = check_local_equivalence(network, copy, iso)
        if violations:
            mutations_flagged += 1
        equal_after, _ = same_routing_solutions(network, copy, iso)
        if not equal_after:
            mutations_diverged += 1
    return forward_ok, mutations_flagged, mutations_diverged, total


def test_theorem33_soundness(benchmark, results_dir):
    forward_ok, flagged, diverged, total = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    rows = [
        f"random networks: {total}",
        f"locally equivalent -> same routing solutions: {forward_ok}/{total}",
        f"mutated edge flagged by modular check:        {flagged}/{total}",
        f"mutated edge changed routing solutions:       {diverged}/{total}",
        "",
        "Flagged-but-not-diverged mutations are the paper's latent false",
        "positives (§5.3): differences shadowed by the rest of the network.",
    ]
    emit(results_dir, "theorem33_srp", "\n".join(rows))

    # Theorem 3.3's implication must hold in every trial.
    assert forward_ok == total
    # The modular check is complete for per-edge mutations.
    assert flagged == total
    # A substantial share of mutations actually change behavior.
    assert diverged >= total // 3
