"""Near-symmetry fleet compression — BENCH_near_symmetry.json.

The matrix phase of ``compare_fleet`` under all three ``compress``
modes on the *parameterized* Clos fleet: every device carries unique
loopbacks, interface subnets, and BGP neighbors, so no two devices are
byte-identical and exact fingerprint compression degenerates to one
singleton class per device (analyzing all N(N-1)/2 pairs, same as
``off``).  Near-symmetry abstracts the rewritable literals into
template holes, partitions by template fingerprint, and analyzes one
pair per joint-equality signature — on an R-role fleet that is
O(R^2) pairs regardless of N, with every other pair's outcome
replayed through the representative.  The exact-vs-near matrix gap is
the point of the phase, and the headline ``matrix_speedup``
(exact matrix seconds / near matrix seconds) carries the >=5x
assertion.

Three runs, all serial, cold, and memo-free (``use_memo=False`` keeps
the per-pair diff cost honest — with the memo on, exact mode already
replays most BDD work and the remaining gap narrows to the per-pair
walk).  All three serialized reports must be byte-identical — the
speedup is only meaningful if the answers are (the oracle's
``near-symmetry`` generator checks the same identity on shrunken
counterexamples).

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_NEARSYM_DEVICES`` (default 32),
``CAMPION_BENCH_NEARSYM_ROLES`` (default 3),
``CAMPION_BENCH_NEARSYM_RULES`` (rules per role ACL, default 24),
``CAMPION_BENCH_NEARSYM_UPLINKS`` (interfaces/neighbors per device,
default 2).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_near_symmetry.py``.
"""

import gc
import os
import time

from bench_artifacts import write_artifact
from repro import perf
from repro.core import compare_fleet, fleet_report_to_dict
from repro.workloads.datacenter import parameterized_clos_fleet

DEVICES = int(os.environ.get("CAMPION_BENCH_NEARSYM_DEVICES", "32"))
ROLES = int(os.environ.get("CAMPION_BENCH_NEARSYM_ROLES", "3"))
RULES = int(os.environ.get("CAMPION_BENCH_NEARSYM_RULES", "24"))
UPLINKS = int(os.environ.get("CAMPION_BENCH_NEARSYM_UPLINKS", "2"))
SEED = 33

#: Scale gate for the artifact's ``workload_scale`` stamp.  Unlike the
#: exact-symmetry bench, the >=5x bar holds at smoke scale too: the
#: exact-mode matrix grows with N^2 while near stays O(roles^2), so
#: even a 12-device smoke fleet clears it with margin.
FULL_SCALE = DEVICES >= 32 and RULES >= 24


def _matrix_seconds() -> float:
    timers = perf.REGISTRY.snapshot()["timers"]
    return timers.get("fleet.matrix", {}).get("total_s", 0.0)


def _run_all() -> dict:
    devices, _ = parameterized_clos_fleet(
        count=DEVICES,
        roles=ROLES,
        rule_count=RULES,
        seed=SEED,
        uplinks=UPLINKS,
    )
    result = {
        "devices": DEVICES,
        "roles": ROLES,
        "rules_per_role": RULES,
        "uplinks": UPLINKS,
    }
    reports = {}
    for compress in ("off", "exact", "near"):
        gc.collect()
        perf.reset()
        start = time.perf_counter()
        report = compare_fleet(
            devices, workers=1, use_memo=False, compress=compress
        )
        result[f"{compress}_seconds"] = time.perf_counter() - start
        result[f"{compress}_matrix_seconds"] = _matrix_seconds()
        reports[compress] = fleet_report_to_dict(report)
        if compress != "off":
            stats = report.symmetry
            result[f"{compress}_classes"] = stats.classes
            result[f"{compress}_analyzed_pairs"] = stats.analyzed_pairs
            if compress == "near":
                result["matrix_pairs"] = stats.total_pairs
                result["fallback_pairs"] = stats.fallback_pairs
    result["matrix_speedup"] = (
        result["exact_matrix_seconds"] / result["near_matrix_seconds"]
    )
    result["matrix_speedup_vs_off"] = (
        result["off_matrix_seconds"] / result["near_matrix_seconds"]
    )
    result["total_speedup"] = (
        result["exact_seconds"] / result["near_seconds"]
    )
    result["identical_reports"] = (
        reports["exact"] == reports["off"] and reports["near"] == reports["off"]
    )
    assert result["identical_reports"], "compressed report diverged"
    return result


def _write(payload: dict):
    return write_artifact(
        "BENCH_near_symmetry.json",
        payload,
        "full" if FULL_SCALE else "smoke",
    )


def _render(payload: dict) -> str:
    lines = [
        "Fleet matrix with near-symmetry template compression",
        "",
        f"Parameterized Clos fleet: {payload['devices']} devices,"
        f" {payload['roles']} roles, {payload['rules_per_role']} rules/role,"
        f" {payload['uplinks']} uplinks (unique loopbacks/subnets/peers)",
        f"  matrix pairs               {payload['matrix_pairs']}",
        f"  exact classes              {payload['exact_classes']}"
        f" (analyzed {payload['exact_analyzed_pairs']})",
        f"  template classes           {payload['near_classes']}"
        f" (analyzed {payload['near_analyzed_pairs']},"
        f" {payload['fallback_pairs']} fallback)",
        f"  off matrix                 {payload['off_matrix_seconds']:.2f}s",
        f"  exact matrix               {payload['exact_matrix_seconds']:.2f}s",
        f"  near matrix                {payload['near_matrix_seconds']:.2f}s",
        f"  matrix speedup (vs exact)  {payload['matrix_speedup']:.2f}x",
        f"  matrix speedup (vs off)    {payload['matrix_speedup_vs_off']:.2f}x",
        f"  total speedup (vs exact)   {payload['total_speedup']:.2f}x",
        f"  identical reports (all 3)  {payload['identical_reports']}",
    ]
    return "\n".join(lines)


def test_near_symmetry(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_near_symmetry", _render(payload))

    assert payload["identical_reports"]
    assert payload["fallback_pairs"] == 0
    assert payload["near_analyzed_pairs"] < payload["exact_analyzed_pairs"]
    speedup = payload["matrix_speedup"]
    assert speedup >= 5.0, (
        f"near-symmetry only {speedup:.2f}x over exact on the matrix"
    )


if __name__ == "__main__":
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
