"""Extension — exhaustive community localization (§4 future work).

The paper: "for other relevant parts of a route advertisement such as
community tags, Campion provides a single example.  It is possible to
extend HeaderLocalize to provide exhaustive information...".  This
bench runs that extension on the Figure 1 and university workloads and
contrasts the output with the single-example baseline: the Figure 1
community bug is characterized *completely* as "exactly one of
10:10/10:11" instead of a lone sample route.
"""

from conftest import emit

from repro.core import config_diff
from repro.model import Community
from repro.workloads.figure1 import figure1_devices
from repro.workloads.university import university_network


def _run():
    example_report = config_diff(*figure1_devices())
    exhaustive_report = config_diff(*figure1_devices(), exhaustive_communities=True)
    network = university_network()
    border_report = config_diff(
        network.border.cisco, network.border.juniper, exhaustive_communities=True
    )
    return example_report, exhaustive_report, border_report


def test_extension_exhaustive_community_localization(benchmark, results_dir):
    example_report, exhaustive_report, border_report = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    second_example = example_report.semantic[1].example.get("Community", "")
    second_exhaustive = exhaustive_report.semantic[1].extra_localizations[
        "communities"
    ]

    lines = [
        "Figure 1, Difference 2 (community any-vs-all bug):",
        f"  paper-mode output (single example): Community = {second_example}",
        "  extension output (exhaustive DNF):",
    ]
    lines.extend(f"    {line}" for line in second_exhaustive.render().splitlines())
    lines += ["", "University border pair (regex discrepancies):"]
    for difference in border_report.semantic:
        localization = difference.extra_localizations.get("communities")
        if localization is None:
            continue
        rendered = localization.render().replace("\n", " ")
        lines.append(f"  {difference.class1.step_name}: {rendered}")
    emit(results_dir, "ext_community_localize", "\n".join(lines))

    c1, c2 = Community.parse("10:10"), Community.parse("10:11")
    # The exhaustive characterization is exact: exactly one of the tags.
    for carried in [
        frozenset(),
        frozenset({c1}),
        frozenset({c2}),
        frozenset({c1, c2}),
    ]:
        assert second_exhaustive.matches(carried) == (len(carried) == 1)
    # The single-example mode only ever names one sample.
    assert second_example in ("10:10", "10:11")
    # Border regex differences also get complete community conditions.
    localized = [
        d
        for d in border_report.semantic
        if d.extra_localizations.get("communities") is not None
    ]
    assert localized
