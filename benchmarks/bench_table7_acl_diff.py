"""Table 7 — ACL debugging output for the gateway routers.

Regenerates the two-column ACL difference table for the Scenario 3
whitelist case: ICMP from 9.140.0.0/23 rejected by the Cisco blacklist
line but accepted by the Juniper whitelist term, with header
localization (source prefix) and text localization (the exact Cisco
line, the Juniper term).
"""

from conftest import emit

from repro.core import config_diff, render_semantic_difference
from repro.workloads.datacenter import scenario3_gateway_acls


def _run():
    pair = scenario3_gateway_acls().pairs[0]
    return config_diff(pair.primary, pair.backup)


def test_table7_acl_difference(benchmark, results_dir):
    report = benchmark(_run)

    whitelist = [
        d for d in report.semantic if "permit_whitelist" in d.class2.step_name
    ]
    assert len(whitelist) == 1
    difference = whitelist[0]

    rendered = render_semantic_difference(difference)
    emit(results_dir, "table7_acl_diff", rendered)

    # Header localization: the relevant source prefix.
    src_localization = difference.extra_localizations["srcIp"]
    assert [str(p) for p in src_localization.included] == ["9.140.0.0/23"]
    # Action row: REJECT on the Cisco side, ACCEPT on the Juniper side.
    assert difference.action_pair() == ("REJECT", "ACCEPT")
    # Text localization: the exact Cisco line and the Juniper term.
    assert "deny ipv4 9.140.0.0 0.0.1.255 any" in difference.class1.text()
    assert "permit_whitelist" in difference.class2.text()
    assert "ACL Name" in rendered
    assert "VM_FILTER_1" in rendered
