"""Table 2 — Campion's output for the Figure 1 route maps.

Regenerates both difference tables (header + text localization) and
asserts the paper's rows: Difference 1's included/excluded prefix
ranges, Difference 2's universe-minus-NETS shape with a community
example, and the REJECT vs SET-LOCAL-PREF-30/ACCEPT action pair.
"""

from conftest import emit

from repro.core import config_diff, render_semantic_difference
from repro.workloads.figure1 import figure1_devices


def _run():
    return config_diff(*figure1_devices())


def test_table2_route_map_differences(benchmark, results_dir):
    report = benchmark(_run)

    semantic = report.semantic
    assert len(semantic) == 2, "Campion finds exactly the two Table 2 differences"

    rendered = "\n\n".join(render_semantic_difference(d) for d in semantic)
    emit(results_dir, "table2_routemap_diff", rendered)

    # Difference 1 (Table 2a)
    first = semantic[0]
    assert [str(r) for r in first.localization.included] == [
        "10.9.0.0/16 : 16-32",
        "10.100.0.0/16 : 16-32",
    ]
    assert [str(r) for r in first.localization.excluded] == [
        "10.9.0.0/16 : 16-16",
        "10.100.0.0/16 : 16-16",
    ]
    assert first.action_pair() == ("REJECT", "SET LOCAL PREF 30\nACCEPT")
    assert "deny 10" in first.class1.text()
    assert "rule3" in first.class2.text()

    # Difference 2 (Table 2b)
    second = semantic[1]
    assert [str(r) for r in second.localization.included] == ["0.0.0.0/0 : 0-32"]
    assert [str(r) for r in second.localization.excluded] == [
        "10.9.0.0/16 : 16-32",
        "10.100.0.0/16 : 16-32",
    ]
    assert second.example.get("Community") in ("10:10", "10:11")
    assert "deny 20" in second.class1.text()
