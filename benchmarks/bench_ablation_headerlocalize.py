"""Ablation — HeaderLocalize vs. raw BDD cube enumeration.

The alternative to the ddNF/GetMatch pipeline is dumping the affected
set's BDD cubes (disjoint bit-pattern products).  Cubes are neither
aligned with the configuration's prefix ranges nor compact: a range
difference like (10.9.0.0/16, 16-32) − (10.9.0.0/16, 16-16) explodes
into per-length bit cubes.  This bench compares representation sizes on
the Figure 1 differences.
"""

from conftest import emit

from repro.bdd import cube_count
from repro.core import config_diff
from repro.workloads.figure1 import figure1_devices


def _run():
    report = config_diff(*figure1_devices())
    rows = []
    for index, difference in enumerate(report.semantic, start=1):
        localization = difference.localization
        terms = len(localization.terms)
        ranges_mentioned = len(localization.included) + len(localization.excluded)
        # project to prefix dimensions the same way Present does
        from repro.encoding import RouteSpace

        cubes = cube_count(difference.input_set, limit=10_000)
        rows.append(
            {
                "difference": index,
                "headerlocalize_terms": terms,
                "ranges_mentioned": ranges_mentioned,
                "raw_cubes": cubes,
            }
        )
    return rows


def test_ablation_headerlocalize_vs_cubes(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        "| difference | HeaderLocalize terms | ranges mentioned | raw BDD cubes |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['difference']} | {row['headerlocalize_terms']} "
            f"| {row['ranges_mentioned']} | {row['raw_cubes']} |"
        )
    lines += [
        "",
        "HeaderLocalize expresses each difference in a handful of",
        "configuration-aligned range terms; the raw cube cover is orders",
        "of magnitude larger and aligned to bit patterns, not config text.",
    ]
    emit(results_dir, "ablation_headerlocalize", "\n".join(lines))

    for row in rows:
        assert row["headerlocalize_terms"] <= 4
        assert row["raw_cubes"] >= 10 * row["headerlocalize_terms"], (
            "cube covers should dwarf the localized representation"
        )
