"""§5.1 localization efficiency — "all localization results were less
than five lines of configuration code", against configs of hundreds of
lines with 100+ lines of ACL/route-map definitions.

Measures, for every semantic difference Campion reports across the
data-center and university workloads, the number of configuration lines
in each side's text localization, and compares with the size of the
configurations searched.
"""

from conftest import emit

from repro.core import config_diff
from repro.workloads.datacenter import full_table6_workload
from repro.workloads.university import university_network


def _text_lines(difference):
    counts = []
    for cls in (difference.class1, difference.class2):
        text = cls.text()
        counts.append(len([line for line in text.splitlines() if line.strip()]))
    return counts


def _run():
    localization_sizes = []
    config_sizes = []
    pairs = []
    for scenario in full_table6_workload():
        pairs.extend((p.primary, p.backup) for p in scenario.pairs)
    network = university_network()
    pairs.extend((p.cisco, p.juniper) for p in network.pairs())
    for device1, device2 in pairs:
        config_sizes.append(device1.line_count())
        config_sizes.append(device2.line_count())
        report = config_diff(device1, device2)
        for difference in report.semantic:
            localization_sizes.extend(_text_lines(difference))
    return localization_sizes, config_sizes


def test_sec51_localization_efficiency(benchmark, results_dir):
    localization_sizes, config_sizes = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert localization_sizes, "workloads must produce semantic differences"
    largest = max(localization_sizes)
    lines = [
        f"semantic differences localized: {len(localization_sizes) // 2}",
        f"config sizes searched: {min(config_sizes)}-{max(config_sizes)} lines",
        f"largest text localization: {largest} lines",
        f"mean text localization: {sum(localization_sizes) / len(localization_sizes):.1f} lines",
        "",
        "paper: every localization under five lines; configs 300-1000+ lines.",
    ]
    emit(results_dir, "sec51_localization_efficiency", "\n".join(lines))

    # The paper's claim, with an allowance for JunOS brace style (a
    # rendered term spans its braces; the paper's Cisco-side examples
    # are single lines).  The operative claim is localization << config.
    assert largest <= 15
    non_trivial = [size for size in config_sizes if size > 50]
    assert non_trivial, "configs must be non-trivial for the claim to mean anything"
    assert largest < min(non_trivial) / 4
