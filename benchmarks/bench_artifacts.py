"""One writer for every ``BENCH_*.json`` benchmark artifact.

Benchmark scripts used to write two independent copies of their JSON
payload — one under ``benchmarks/results/`` and one at the repo root —
which inevitably drifted (a crash between the writes, or a script
growing one path but not the other, leaves the copies disagreeing).
:func:`write_artifact` emits the payload exactly once, under
``benchmarks/results/``, and points a relative symlink at it from the
repo root so tooling (and readers) still find the latest numbers
without digging into ``benchmarks/``.  On filesystems that refuse
symlinks it degrades to copying the just-written text, still from the
single serialization.
"""

import json
import os
import pathlib

__all__ = ["RESULTS_DIR", "REPO_ROOT", "write_artifact"]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def write_artifact(name: str, payload: dict) -> pathlib.Path:
    """Serialize ``payload`` to ``benchmarks/results/<name>`` and link it
    from the repo root.  Returns the results path (the real file)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / name
    path.write_text(text)
    root_link = REPO_ROOT / name
    if root_link.is_symlink() or root_link.exists():
        root_link.unlink()
    try:
        os.symlink(
            os.path.join("benchmarks", "results", name), root_link
        )
    except OSError:  # pragma: no cover - symlink-less filesystem
        root_link.write_text(text)
    return path
