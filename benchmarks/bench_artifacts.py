"""One writer for every ``BENCH_*.json`` benchmark artifact.

Benchmark scripts used to write two independent copies of their JSON
payload — one under ``benchmarks/results/`` and one at the repo root —
which inevitably drifted (a crash between the writes, or a script
growing one path but not the other, leaves the copies disagreeing).
:func:`write_artifact` emits the payload exactly once, under
``benchmarks/results/``, and points a relative symlink at it from the
repo root so tooling (and readers) still find the latest numbers
without digging into ``benchmarks/``.  On filesystems that refuse
symlinks it degrades to copying the just-written text, still from the
single serialization.

The root link is refreshed *idempotently*: a correct existing symlink
is left untouched, and anything else — a stale regular-file copy from
a symlink-less run, a symlink pointing elsewhere, a broken symlink —
is replaced atomically (create under a temporary name, ``os.replace``
over), so re-running a benchmark never crashes on the leftovers of a
previous run and never leaves a stale copy shadowing fresh numbers.
"""

import json
import os
import pathlib

__all__ = ["RESULTS_DIR", "REPO_ROOT", "write_artifact"]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def _refresh_root_link(root_link: pathlib.Path, target: str, text: str) -> None:
    """Point ``root_link`` at ``target``, atomically and idempotently.

    Prefers a relative symlink; degrades to writing ``text`` as a plain
    copy where symlinks are unsupported.  Either way the final rename is
    ``os.replace``, so a crash mid-refresh leaves the old link intact
    rather than no link at all.
    """
    try:
        if os.readlink(root_link) == target:
            return  # already current — nothing to refresh
    except OSError:
        pass  # missing, a regular file, or unreadable: replace it
    scratch = root_link.with_name(root_link.name + ".tmp")
    try:
        scratch.unlink()
    except OSError:
        pass
    try:
        os.symlink(target, scratch)
    except OSError:  # pragma: no cover - symlink-less filesystem
        scratch.write_text(text)
    os.replace(scratch, root_link)


def write_artifact(
    name: str, payload: dict, workload_scale: str
) -> pathlib.Path:
    """Serialize ``payload`` to ``benchmarks/results/<name>`` and link it
    from the repo root.  Returns the results path (the real file).

    ``workload_scale`` must be ``"smoke"`` (the tiny CI workload) or
    ``"full"`` (the paper-scale workload) and is stamped into the
    payload, so a committed baseline and a README citation always say
    which regime produced their numbers — a full-scale speedup quoted
    against a smoke baseline is the exact confusion this field exists
    to prevent.
    """
    if workload_scale not in ("smoke", "full"):
        raise ValueError(
            f"workload_scale must be 'smoke' or 'full', got {workload_scale!r}"
        )
    payload = dict(payload)
    payload["workload_scale"] = workload_scale
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / name
    path.write_text(text)
    _refresh_root_link(
        REPO_ROOT / name,
        os.path.join("benchmarks", "results", name),
        text,
    )
    return path
