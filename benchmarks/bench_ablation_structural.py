"""Ablation — StructuralDiff vs. a semantic encoding for static routes.

§3.3's claim: for stylized components, the structural check is *as
precise as* a semantic one (same verdicts) while being much cheaper and
trivially localizable.  This bench runs both checks over many seeded
static-route tables — equal, next-hop-mutated, and presence-mutated —
and asserts verdict agreement plus the cost gap.
"""

import random
import time

from conftest import emit

from repro.baseline import monolithic_static_route_check
from repro.core import diff_static_routes
from repro.model import DeviceConfig, Prefix, StaticRoute

CASES = 60


def _random_table(rng, size=20):
    routes = []
    used = set()
    while len(routes) < size:
        network = (10 << 24) | (rng.randrange(250) << 16) | (rng.randrange(250) << 8)
        if network in used:
            continue
        used.add(network)
        routes.append(
            StaticRoute(
                prefix=Prefix(network, 24),
                next_hop=(10 << 24) | rng.randrange(1 << 16),
                admin_distance=1,
            )
        )
    return routes


def _mutate(rng, routes):
    routes = list(routes)
    index = rng.randrange(len(routes))
    kind = rng.choice(["next_hop", "drop"])
    if kind == "next_hop":
        routes[index] = StaticRoute(
            prefix=routes[index].prefix,
            next_hop=(routes[index].next_hop or 0) + 1,
            admin_distance=routes[index].admin_distance,
        )
    else:
        routes.pop(index)
    return routes


def _run():
    structural_seconds = semantic_seconds = 0.0
    agreements = disagreements = 0
    for seed in range(CASES):
        rng = random.Random(seed)
        base = _random_table(rng)
        other = _mutate(rng, base) if seed % 2 else list(base)
        device1 = DeviceConfig(hostname="a", static_routes=base)
        device2 = DeviceConfig(hostname="b", static_routes=other)

        start = time.perf_counter()
        structural = bool(diff_static_routes(device1, device2))
        structural_seconds += time.perf_counter() - start

        start = time.perf_counter()
        semantic = monolithic_static_route_check(device1, device2) is not None
        semantic_seconds += time.perf_counter() - start

        if structural == semantic:
            agreements += 1
        else:
            disagreements += 1
    return agreements, disagreements, structural_seconds, semantic_seconds


def test_ablation_structural_vs_semantic_static(benchmark, results_dir):
    agreements, disagreements, structural_seconds, semantic_seconds = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )

    lines = [
        f"cases: {CASES} (half equal, half mutated)",
        f"verdict agreement: {agreements}/{CASES}",
        f"StructuralDiff total time: {structural_seconds * 1000:.1f} ms",
        f"semantic (BDD) check total time: {semantic_seconds * 1000:.1f} ms",
        f"speedup: {semantic_seconds / max(structural_seconds, 1e-9):.1f}x",
    ]
    emit(results_dir, "ablation_structural", "\n".join(lines))

    # §3.3: no precision loss...
    assert disagreements == 0
    # ...at a fraction of the cost.
    assert structural_seconds < semantic_seconds
