"""Extension — n-way fleet comparison with medoid outlier detection.

Scenario 3 generalized: a mixed-vendor gateway fleet intended to
enforce one policy, with seeded deviations.  Asserts exact outlier
recovery (no false positives, no misses) across seeds and reports the
comparison cost as the fleet grows.
"""

import time

from conftest import emit

from repro.core import compare_fleet
from repro.workloads.datacenter import gateway_fleet

SEEDS = range(5)
SIZES = (4, 8, 12)


def _run():
    recovery = []
    for seed in SEEDS:
        devices, expected = gateway_fleet(count=6, outliers=2, seed=seed)
        report = compare_fleet(devices)
        recovery.append(
            {
                "seed": seed,
                "expected": expected,
                "found": report.outliers,
                "reference_clean": report.reference not in expected,
            }
        )
    scaling = []
    for size in SIZES:
        devices, _ = gateway_fleet(count=size, outliers=2, rule_count=40, seed=1)
        start = time.perf_counter()
        compare_fleet(devices)
        scaling.append((size, time.perf_counter() - start))
    return recovery, scaling


def test_extension_fleet_outliers(benchmark, results_dir):
    recovery, scaling = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["| seed | seeded outliers | detected | medoid clean |", "|---|---|---|---|"]
    for row in recovery:
        lines.append(
            f"| {row['seed']} | {row['expected']} | {row['found']} "
            f"| {row['reference_clean']} |"
        )
    lines += ["", "| fleet size | full matrix comparison (s) |", "|---|---|"]
    for size, seconds in scaling:
        lines.append(f"| {size} | {seconds:.2f} |")
    emit(results_dir, "ext_fleet_outliers", "\n".join(lines))

    for row in recovery:
        assert row["found"] == row["expected"], row
        assert row["reference_clean"], "the medoid must be a conforming device"
    # The matrix is quadratic but each comparison is fast; a 12-device
    # fleet should still complete in seconds.
    assert scaling[-1][1] < 30.0
