"""Fleet symmetry compression — BENCH_symmetry.json.

The matrix phase of ``compare_fleet`` with and without fingerprint
symmetry compression on a templated Clos fleet: a few role templates
stamped onto many hostnames, so the device-fingerprint partition has
one equivalence class per (role, vendor) regardless of fleet size.
Uncompressed, the matrix phase runs all N(N-1)/2 pairs (each paying at
least MatchPolicies + memo lookups even when the diff memo replays the
BDD work); compressed, it runs only the K(K-1)/2 representative pairs
and expands the rest — the wall-clock gap is the point of the phase.

Two regimes, four runs, all serial and cold:

* ``use_memo=False`` (the plain recompute-every-pair baseline):
  compression is the only dedup mechanism standing, so the matrix
  shrinks from N(N-1)/2 full diffs to K(K-1)/2 — this is the regime
  the headline ``matrix_speedup`` (and its >=5x full-scale assertion)
  measures.
* defaults (in-process ``DiffMemo`` on): the memo already replays
  repeated component diffs as arithmetic, so compression's remaining
  win — ``matrix_speedup_memoized`` — is skipping the residual
  per-pair walk (MatchPolicies, fingerprint lookups, memo probes)
  entirely.  Expect a small-integer factor, not an order of
  magnitude.

All four serialized reports must be identical — the speedup is only
meaningful if the answers are (the oracle's ``symmetry`` generator
checks the same identity on shrunken counterexamples).

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_SYMMETRY_DEVICES`` (default 32),
``CAMPION_BENCH_SYMMETRY_ROLES`` (default 3),
``CAMPION_BENCH_SYMMETRY_RULES`` (rules per role, default 24),
``CAMPION_BENCH_SYMMETRY_VENDORS`` (1 = all-Cisco fabric, the default
here, matching the single-vendor fleets the paper measures; 2 =
vendors alternating per clone, which doubles the class count).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_symmetry.py``.
"""

import gc
import os
import time

from bench_artifacts import write_artifact
from repro import perf
from repro.core import compare_fleet, fleet_report_to_dict
from repro.workloads.datacenter import templated_clos_fleet

DEVICES = int(os.environ.get("CAMPION_BENCH_SYMMETRY_DEVICES", "32"))
ROLES = int(os.environ.get("CAMPION_BENCH_SYMMETRY_ROLES", "3"))
RULES = int(os.environ.get("CAMPION_BENCH_SYMMETRY_RULES", "24"))
VENDORS = int(os.environ.get("CAMPION_BENCH_SYMMETRY_VENDORS", "1"))
SEED = 21

#: The ≥5x bar only applies at full scale (the ISSUE's acceptance
#: criterion names the 32-device templated fleet); smoke runs with tiny
#: workloads spend their time in fixed overheads.
FULL_SCALE = DEVICES >= 32 and RULES >= 24


def _matrix_seconds() -> float:
    timers = perf.REGISTRY.snapshot()["timers"]
    return timers.get("fleet.matrix", {}).get("total_s", 0.0)


def _run_all() -> dict:
    devices, _ = templated_clos_fleet(
        count=DEVICES, roles=ROLES, rule_count=RULES, seed=SEED, vendors=VENDORS
    )
    result = {
        "devices": DEVICES,
        "roles": ROLES,
        "rules_per_role": RULES,
        "vendors": VENDORS,
    }
    reports = {}
    for use_memo in (False, True):
        regime = "memoized" if use_memo else "recompute"
        for compress in (False, True):
            label = f"{regime}_{'compressed' if compress else 'uncompressed'}"
            gc.collect()
            perf.reset()
            start = time.perf_counter()
            report = compare_fleet(
                devices, workers=1, use_memo=use_memo, compress=compress
            )
            result[f"{label}_seconds"] = time.perf_counter() - start
            result[f"{label}_matrix_seconds"] = _matrix_seconds()
            reports[label] = fleet_report_to_dict(report)
            if compress:
                result["classes"] = report.symmetry.classes
                result["analyzed_pairs"] = report.symmetry.analyzed_pairs
                result["matrix_pairs"] = report.symmetry.total_pairs
    result["matrix_speedup"] = (
        result["recompute_uncompressed_matrix_seconds"]
        / result["recompute_compressed_matrix_seconds"]
    )
    result["matrix_speedup_memoized"] = (
        result["memoized_uncompressed_matrix_seconds"]
        / result["memoized_compressed_matrix_seconds"]
    )
    result["total_speedup"] = (
        result["recompute_uncompressed_seconds"]
        / result["recompute_compressed_seconds"]
    )
    baseline = reports["recompute_uncompressed"]
    result["identical_reports"] = all(
        reports[label] == baseline for label in reports
    )
    assert result["identical_reports"], "compressed report diverged"
    return result


def _write(payload: dict):
    return write_artifact(
        "BENCH_symmetry.json",
        payload,
        "full" if FULL_SCALE else "smoke",
    )


def _render(payload: dict) -> str:
    lines = [
        "Fleet matrix with fingerprint symmetry compression",
        "",
        f"Templated Clos fleet: {payload['devices']} devices,"
        f" {payload['roles']} roles, {payload['rules_per_role']} rules/role"
        f" -> {payload['classes']} fingerprint classes",
        f"  matrix pairs               {payload['matrix_pairs']}"
        f" (analyzed {payload['analyzed_pairs']})",
        "  recompute-every-pair baseline (use_memo=False):",
        f"    uncompressed matrix      {payload['recompute_uncompressed_matrix_seconds']:.2f}s",
        f"    compressed matrix        {payload['recompute_compressed_matrix_seconds']:.2f}s",
        f"    matrix speedup           {payload['matrix_speedup']:.2f}x",
        f"    total speedup            {payload['total_speedup']:.2f}x",
        "  memoized defaults (in-process DiffMemo):",
        f"    uncompressed matrix      {payload['memoized_uncompressed_matrix_seconds']:.2f}s",
        f"    compressed matrix        {payload['memoized_compressed_matrix_seconds']:.2f}s",
        f"    matrix speedup           {payload['matrix_speedup_memoized']:.2f}x",
        f"  identical reports (all 4)  {payload['identical_reports']}",
    ]
    return "\n".join(lines)


def test_symmetry(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_symmetry", _render(payload))

    assert payload["identical_reports"]
    assert payload["analyzed_pairs"] < payload["matrix_pairs"]
    if FULL_SCALE:
        speedup = payload["matrix_speedup"]
        assert speedup >= 5.0, f"compression only {speedup:.2f}x on the matrix"


if __name__ == "__main__":
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
