"""Atomic-predicate bitset backend vs the pairwise BDD loop — BENCH_atoms.json.

The acceptance workload for the ``atoms`` set-algebra backend
(:mod:`repro.core.setalg`): the 10,000-rule near-equivalent ACL pair
(``workloads/acl_gen.py``, 10 injected differences) is diffed once per
backend.  Each run gets a fresh manager and freshly-built equivalence
classes — the backends share no cached state — but only the
``semantic_diff_classes`` call is timed, because class construction is
identical on both sides and the backends exist to attack the pairwise
comparison, not the encoding.

Equivalence is asserted, not assumed: both backends must emit the same
differing class-index pairs with input sets of the same satcount
(hash-consing makes equal sets the same node, but the managers differ
between runs, so satcount over one fixed variable layout is the
manager-independent check).

Workload size honours ``CAMPION_BENCH_ATOMS_RULES`` (default 10000) so
the CI smoke job can run a tiny version; the ≥5x speedup bar only
applies at full scale.

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_atoms.py``.
"""

import gc
import os
import time

from bench_artifacts import write_artifact
from repro import perf
from repro.bdd import BddManager
from repro.core.results import ComponentKind
from repro.core.semantic_diff import semantic_diff_classes
from repro.core.setalg import BACKEND_NAMES, resolve_backend
from repro.encoding import PacketSpace, acl_equivalence_classes
from repro.workloads.acl_gen import generate_acl_pair

RULES = int(os.environ.get("CAMPION_BENCH_ATOMS_RULES", "10000"))
DIFFERENCES = 10
SEED = 7


def _signature(differences) -> list:
    """Manager-independent identity of a difference list."""
    return [
        (
            difference.class1.index,
            difference.class2.index,
            difference.input_set.satcount(),
        )
        for difference in differences
    ]


def _pairing_bench() -> dict:
    pair = generate_acl_pair(RULES, differences=DIFFERENCES, seed=SEED)
    result = {"rules": RULES, "injected_differences": DIFFERENCES}
    signatures = {}
    for name in BACKEND_NAMES:
        gc.collect()
        space = PacketSpace(manager=BddManager())
        classes1 = acl_equivalence_classes(space, pair.cisco_acl)
        classes2 = acl_equivalence_classes(space, pair.juniper_acl)
        counters_before = dict(perf.REGISTRY.counters)
        start = time.perf_counter()
        differences = semantic_diff_classes(
            ComponentKind.ACL, classes1, classes2, backend=name
        )
        elapsed = time.perf_counter() - start
        deltas = {
            key: value - counters_before.get(key, 0)
            for key, value in perf.REGISTRY.counters.items()
            if key.startswith(("setalg.", "semantic_diff."))
            and value != counters_before.get(key, 0)
        }
        signatures[name] = _signature(differences)
        result[name] = {
            "seconds": elapsed,
            "classes": len(classes1) + len(classes2),
            "differences": len(differences),
            "perf_deltas": deltas,
            "manager_stats": space.manager.stats(),
        }
        del space, classes1, classes2, differences
        gc.collect()
    result["speedup"] = result["bdd"]["seconds"] / result["atoms"]["seconds"]
    result["equivalent"] = signatures["bdd"] == signatures["atoms"]
    assert result["equivalent"], "atoms backend diverged from bdd backend"
    return result


def _run_all() -> dict:
    perf.reset()
    payload = {"pairing": _pairing_bench(), "perf": perf.snapshot()}
    return payload


def _render(payload: dict) -> str:
    pairing = payload["pairing"]
    atoms = pairing["atoms"]["perf_deltas"]
    lines = [
        "Atomic-predicate bitset backend vs the pairwise BDD loop",
        "",
        f"ACL SemanticDiff, {pairing['rules']} rules,"
        f" {pairing['injected_differences']} injected diffs"
        f" ({pairing['bdd']['classes']} equivalence classes):",
        f"  bdd backend    {pairing['bdd']['seconds']:.2f}s"
        f"  ({pairing['bdd']['perf_deltas'].get('semantic_diff.pairs_compared', 0)}"
        " pairs compared)",
        f"  atoms backend  {pairing['atoms']['seconds']:.2f}s"
        f"  ({atoms.get('setalg.atoms', 0)} atoms,"
        f" {atoms.get('setalg.atom_probes', 0)} probes,"
        f" {atoms.get('setalg.bitset_ops', 0)} bitset ops)",
        f"  speedup        {pairing['speedup']:.2f}x"
        f"  (identical results: {pairing['equivalent']})",
    ]
    return "\n".join(lines)


def test_atoms_backend(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    write_artifact(
        "BENCH_atoms.json", payload, "full" if RULES >= 5000 else "smoke"
    )
    emit(results_dir, "BENCH_atoms", _render(payload))

    pairing = payload["pairing"]
    assert pairing["equivalent"]
    assert (
        pairing["bdd"]["differences"] == pairing["atoms"]["differences"]
    ), "backends disagree on the number of differences"
    # The speedup bar only applies at full scale; smoke runs with tiny
    # workloads spend their time outside the pairwise comparison.  The
    # committed full-scale artifact clears 5x; the in-test bar leaves
    # headroom for noisy shared CI runners.
    if RULES >= 5000:
        assert pairing["speedup"] >= 3.5, (
            f"atoms backend only {pairing['speedup']:.2f}x"
        )


if __name__ == "__main__":
    payload = _run_all()
    path = write_artifact(
        "BENCH_atoms.json", payload, "full" if RULES >= 5000 else "smoke"
    )
    print(_render(payload))
    print(f"\nwrote {path}")
