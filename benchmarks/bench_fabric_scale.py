"""Scale — auditing a full Clos fabric of backup pairs.

The paper's network A has "hundreds of routers"; Campion audits every
backup pair in seconds each.  This bench sweeps the fabric size and
measures total wall time, per-pair maxima, and detection integrity (all
seeded bugs found, clean pairs silent) — demonstrating the audit scales
linearly in pairs because each comparison is independent and modular.
"""

import time

from conftest import emit

from repro.core import config_diff
from repro.workloads.datacenter import scenario1_redundant_pairs

SIZES = (10, 25, 50)


def _run():
    rows = []
    for size in SIZES:
        scenario = scenario1_redundant_pairs(pair_count=size, seed=4)
        start = time.perf_counter()
        slowest = 0.0
        missed = 0
        noisy = 0
        for pair in scenario.pairs:
            pair_start = time.perf_counter()
            report = config_diff(pair.primary, pair.backup)
            slowest = max(slowest, time.perf_counter() - pair_start)
            if pair.seeded_bugs and report.is_equivalent():
                missed += 1
            if not pair.seeded_bugs and not report.is_equivalent():
                noisy += 1
        total = time.perf_counter() - start
        rows.append(
            {
                "pairs": size,
                "total_s": total,
                "per_pair_ms": 1000 * total / size,
                "slowest_ms": 1000 * slowest,
                "missed": missed,
                "noisy": noisy,
            }
        )
    return rows


def test_fabric_scale_audit(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        "| backup pairs | total (s) | mean per pair (ms) | slowest pair (ms) | bugs missed | clean flagged |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['pairs']} | {row['total_s']:.2f} | {row['per_pair_ms']:.0f} "
            f"| {row['slowest_ms']:.0f} | {row['missed']} | {row['noisy']} |"
        )
    lines += ["", "paper: each pair under 5 s; fabric-wide audits routine."]
    emit(results_dir, "fabric_scale", "\n".join(lines))

    for row in rows:
        assert row["missed"] == 0
        assert row["noisy"] == 0
        assert row["slowest_ms"] < 5000  # the paper's per-pair bound
    # Linear scaling: mean per-pair cost roughly flat across sizes.
    per_pair = [row["per_pair_ms"] for row in rows]
    assert max(per_pair) < 4 * min(per_pair)
