"""Table 6 — data-center network results across the three §5.1 scenarios.

Runs ConfigDiff over every router pair of each scenario and regenerates
the table:

    Scenario 1 | BGP           | Semantic   | 5
               | Static Routes | Structural | 2
    Scenario 2 | BGP           | Semantic   | 4
    Scenario 3 | ACLs          | Semantic   | 3

and additionally asserts zero false positives (clean pairs report
nothing) and the <5 s per-pair runtime claim.
"""

import time

from conftest import emit

from repro.core import ComponentKind, config_diff
from repro.workloads.datacenter import full_table6_workload


def _run_all():
    results = []
    for scenario in full_table6_workload():
        route_map = acl = static = other = 0
        slowest_pair = 0.0
        clean_noise = 0
        for pair in scenario.pairs:
            start = time.perf_counter()
            report = config_diff(pair.primary, pair.backup)
            slowest_pair = max(slowest_pair, time.perf_counter() - start)
            rm = [d for d in report.semantic if d.kind is ComponentKind.ROUTE_MAP]
            ac = [d for d in report.semantic if d.kind is ComponentKind.ACL]
            st = [d for d in report.structural if d.kind is ComponentKind.STATIC_ROUTE]
            ot = [
                d
                for d in report.structural
                if d.kind is not ComponentKind.STATIC_ROUTE
            ] + report.unmatched
            route_map += len(rm)
            acl += len(ac)
            static += len(st)
            other += len(ot)
            if not pair.seeded_bugs and not report.is_equivalent():
                clean_noise += 1
        results.append(
            {
                "scenario": scenario.name,
                "route_map": route_map,
                "acl": acl,
                "static": static,
                "other": other,
                "noise": clean_noise,
                "slowest_pair_s": slowest_pair,
                "pairs": len(scenario.pairs),
            }
        )
    return results


def test_table6_datacenter_results(benchmark, results_dir):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = [
        "| Scenario | Component | Check | paper | ours |",
        "|---|---|---|---|---|",
        f"| Scenario 1 | BGP | Semantic | 5 | {results[0]['route_map']} |",
        f"| Scenario 1 | Static Routes | Structural | 2 | {results[0]['static']} |",
        f"| Scenario 2 | BGP | Semantic | 4 | {results[1]['route_map']} |",
        f"| Scenario 3 | ACLs | Semantic | 3 | {results[2]['acl']} |",
        "",
    ]
    for result in results:
        rows.append(
            f"{result['scenario']}: {result['pairs']} pairs, slowest pair "
            f"{result['slowest_pair_s']:.2f}s, clean pairs flagged: {result['noise']}"
        )
    emit(results_dir, "table6_datacenter", "\n".join(rows))

    scenario1, scenario2, scenario3 = results
    assert scenario1["route_map"] == 5
    assert scenario1["static"] == 2
    assert scenario2["route_map"] == 4
    assert scenario3["acl"] == 3
    # No false positives on clean pairs (the paper reports none either).
    assert all(result["noise"] == 0 for result in results)
    # §5.1: "within five seconds for each pair of routers".
    assert all(result["slowest_pair_s"] < 5.0 for result in results)
