"""Atoms-backed, fleet-memoized HeaderLocalize — BENCH_localize.json.

The *reports* phase of ``compare_fleet`` (collect mode: every
difference localized) on the templated Clos fleet, three ways:

* ``bdd`` backend, memo off — the historical full-report path: every
  report re-runs SemanticDiff and BDD-backed HeaderLocalize.
* ``atoms`` backend, fresh shared memo (cold) — bitset localization,
  the pair-scoped LocalizeSession, the process-wide ddNF DAG cache,
  and localization-bearing memo entries being written: each distinct
  localization is computed exactly once and every clone pair replays
  it with span filenames rewritten.
* the same shared memo again (warm) — the steady-state fleet run: all
  localized entries replay, zero SemanticDiff/HeaderLocalize work.

The headline ``collect_speedup`` (bdd reports seconds / warm reports
seconds) carries the >=5x assertion; ``cold_speedup`` shows the first
run already wins.  All serialized fleet reports must be byte-identical
across backends and memo modes — the speedup is only meaningful if the
answers are (the oracle's ``localize`` generator checks the same
term-for-term identity on shrunken counterexamples).

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_LOCALIZE_DEVICES`` (default 24),
``CAMPION_BENCH_LOCALIZE_ROLES`` (default 3),
``CAMPION_BENCH_LOCALIZE_RULES`` (rules per role, default 32),
``CAMPION_BENCH_LOCALIZE_UPLINKS`` (default 2).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_localize.py``.
"""

import gc
import json
import os

from bench_artifacts import write_artifact
from repro import perf
from repro.core import (
    DiffMemo,
    compare_fleet,
    dag_cache_clear,
    fleet_report_to_dict,
)
from repro.workloads.datacenter import templated_clos_fleet

DEVICES = int(os.environ.get("CAMPION_BENCH_LOCALIZE_DEVICES", "24"))
ROLES = int(os.environ.get("CAMPION_BENCH_LOCALIZE_ROLES", "3"))
RULES = int(os.environ.get("CAMPION_BENCH_LOCALIZE_RULES", "32"))
UPLINKS = int(os.environ.get("CAMPION_BENCH_LOCALIZE_UPLINKS", "2"))
SEED = 7

#: Scale gate for the artifact's ``workload_scale`` stamp.  The >=5x
#: bar holds at smoke scale too: the warm run's reports phase does no
#: set-algebra work at all, so its advantage grows with rule count but
#: clears the bar even on a 12-device, 12-rule fleet.
FULL_SCALE = DEVICES >= 24 and RULES >= 32


def _reports_seconds() -> float:
    timers = perf.REGISTRY.snapshot()["timers"]
    return timers.get("fleet.reports", {}).get("total_s", 0.0)


def _run(devices, set_backend: str, memo):
    gc.collect()
    perf.reset()
    report = compare_fleet(
        devices,
        workers=1,
        use_memo=False if memo is None else True,
        memo=memo,
        set_backend=set_backend,
        compress="exact",
    )
    counters = perf.REGISTRY.snapshot()["counters"]
    return fleet_report_to_dict(report), _reports_seconds(), counters


def _run_all() -> dict:
    devices, _ = templated_clos_fleet(
        count=DEVICES,
        roles=ROLES,
        rule_count=RULES,
        seed=SEED,
        uplinks=UPLINKS,
    )
    result = {
        "devices": DEVICES,
        "roles": ROLES,
        "rules_per_role": RULES,
        "uplinks": UPLINKS,
    }

    dag_cache_clear()
    bdd_report, bdd_seconds, _ = _run(devices, "bdd", None)
    dag_cache_clear()
    atoms_report, atoms_seconds, _ = _run(devices, "atoms", None)

    memo = DiffMemo()
    dag_cache_clear()
    cold_report, cold_seconds, cold_counters = _run(devices, "atoms", memo)
    # Same shared memo, DAG cache left warm: the steady-state fleet run.
    warm_report, warm_seconds, warm_counters = _run(devices, "atoms", memo)

    result["bdd_reports_seconds"] = bdd_seconds
    result["atoms_reports_seconds"] = atoms_seconds
    result["cold_reports_seconds"] = cold_seconds
    result["warm_reports_seconds"] = warm_seconds
    result["collect_speedup"] = bdd_seconds / warm_seconds
    result["cold_speedup"] = bdd_seconds / cold_seconds
    result["cold_localization_replays"] = cold_counters.get(
        "memo.localization_replays", 0
    )
    result["warm_localization_replays"] = warm_counters.get(
        "memo.localization_replays", 0
    )
    # DAG cache hits show up in the cold run (the warm run replays
    # every localization and never reaches HeaderLocalize at all).
    result["cold_dag_cache_hits"] = cold_counters.get(
        "header_localize.dag_cache_hits", 0
    )
    result["warm_memo_stores"] = warm_counters.get("memo.stores", 0)
    reference = json.dumps(bdd_report, sort_keys=True)
    result["identical_reports"] = all(
        json.dumps(other, sort_keys=True) == reference
        for other in (atoms_report, cold_report, warm_report)
    )
    assert result["identical_reports"], "localization report diverged"
    return result


def _write(payload: dict):
    return write_artifact(
        "BENCH_localize.json",
        payload,
        "full" if FULL_SCALE else "smoke",
    )


def _render(payload: dict) -> str:
    lines = [
        "Full-report fleet runs: atoms localization + memo replay vs BDD recompute",
        "",
        f"Templated Clos fleet: {payload['devices']} devices,"
        f" {payload['roles']} roles, {payload['rules_per_role']} rules/role,"
        f" {payload['uplinks']} uplinks",
        f"  bdd reports (no memo)      {payload['bdd_reports_seconds']:.3f}s",
        f"  atoms reports (no memo)    {payload['atoms_reports_seconds']:.3f}s",
        f"  atoms reports (memo cold)  {payload['cold_reports_seconds']:.3f}s",
        f"  atoms reports (memo warm)  {payload['warm_reports_seconds']:.3f}s",
        f"  collect speedup (warm)     {payload['collect_speedup']:.2f}x",
        f"  collect speedup (cold)     {payload['cold_speedup']:.2f}x",
        f"  warm replays               {payload['warm_localization_replays']}",
        f"  cold DAG cache hits        {payload['cold_dag_cache_hits']}",
        f"  identical reports (all 4)  {payload['identical_reports']}",
    ]
    return "\n".join(lines)


def test_localize(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_localize", _render(payload))

    assert payload["identical_reports"]
    assert payload["warm_localization_replays"] > 0
    assert payload["warm_memo_stores"] == 0, "warm run should store nothing"
    speedup = payload["collect_speedup"]
    assert speedup >= 5.0, (
        f"warm memoized localization only {speedup:.2f}x over BDD recompute"
    )


if __name__ == "__main__":
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
