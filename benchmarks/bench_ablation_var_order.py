"""Ablation — BDD variable ordering for the packet space.

PacketSpace puts address fields first so prefix predicates constrain a
contiguous top block of the order.  The ablated layout interleaves
destination-address bits with port bits, which is known to blow up
interval×prefix products.  Measured on ACL permit-set construction.
"""

import random
import time

from conftest import emit

from repro.bdd import BddManager, BitVector
from repro.encoding.packet import PacketSpace
from repro.model.acl import Acl
from repro.workloads.acl_gen import random_rules

RULES = 400


class _InterleavedPacketSpace(PacketSpace):
    """Packet space with dstIp bits interleaved with port bits."""

    def __init__(self):
        manager = BddManager()
        # Interleave 32 dstIp bits with 16+16 port bits: d p d p ...
        dst_bits = []
        src_port_bits = []
        dst_port_bits = []
        for index in range(32):
            dst_bits.append(manager.new_var())
            if index < 16:
                src_port_bits.append(manager.new_var())
                dst_port_bits.append(manager.new_var())
        self.manager = manager
        self.dst_ip = BitVector(manager, "dstIp", dst_bits)
        self.src_ip = BitVector.allocate(manager, "srcIp", 32)
        self.protocol = BitVector.allocate(manager, "protocol", 8)
        self.src_port = BitVector(manager, "srcPort", src_port_bits)
        self.dst_port = BitVector(manager, "dstPort", dst_port_bits)
        self.icmp_type = BitVector.allocate(manager, "icmpType", 8)
        self.fields = (
            self.dst_ip,
            self.src_ip,
            self.protocol,
            self.src_port,
            self.dst_port,
            self.icmp_type,
        )


def _build(space_factory):
    rng = random.Random(31)
    acl = Acl(name="A", lines=tuple(random_rules(RULES, rng)))
    space = space_factory()
    start = time.perf_counter()
    permit = space.acl_permit_pred(acl)
    seconds = time.perf_counter() - start
    return seconds, space.manager.node_count, space.manager.dag_size(permit)


def _run():
    grouped = _build(PacketSpace)
    interleaved = _build(_InterleavedPacketSpace)
    return grouped, interleaved


def test_ablation_variable_ordering(benchmark, results_dir):
    (grouped, interleaved) = benchmark.pedantic(_run, rounds=1, iterations=1)
    grouped_seconds, grouped_nodes, grouped_dag = grouped
    inter_seconds, inter_nodes, inter_dag = interleaved

    lines = [
        f"ACL permit-set construction, {RULES} rules",
        "",
        "| ordering | build time (s) | manager nodes | permit-set DAG |",
        "|---|---|---|---|",
        f"| fields grouped (default) | {grouped_seconds:.3f} | {grouped_nodes} | {grouped_dag} |",
        f"| dstIp/ports interleaved | {inter_seconds:.3f} | {inter_nodes} | {inter_dag} |",
        "",
        f"node blowup: {inter_nodes / max(grouped_nodes, 1):.1f}x",
    ]
    emit(results_dir, "ablation_var_order", "\n".join(lines))

    # Grouped ordering must allocate strictly fewer nodes overall (the
    # construction-cost blowup is the design-relevant effect; final DAG
    # sizes can go either way after reduction).
    assert grouped_nodes < inter_nodes
