"""Ablation — BDD variable ordering for the packet space.

PacketSpace puts the protocol field on top, then contiguous address
blocks (the default order seeded from this benchmark's findings).  Two
ablations:

* the historical address-first layout (dstIp/srcIp above protocol) —
  worse on the SemanticDiff hot path because rules for different
  protocols cannot share address substructure;
* an interleaved layout mixing destination-address bits with port
  bits, which is known to blow up interval×prefix products.

Two workloads, matching the two effects:

* monolithic permit-set construction over random rules — where the
  interleaved blowup shows up;
* pairwise :func:`diff_acls` over a gateway fleet's structured ACLs —
  the workload the tool actually runs, where protocol-first wins
  (address-first is within noise of protocol-first on random rules, so
  the realistic diff workload is the deciding measurement).
"""

import random
import time

from conftest import emit

from repro.bdd import BddManager, BitVector
from repro.core.semantic_diff import diff_acls
from repro.encoding.packet import PacketSpace
from repro.model.acl import Acl
from repro.workloads.acl_gen import random_rules
from repro.workloads.datacenter import gateway_fleet

RULES = 400
FLEET_DEVICES = 6
FLEET_RULES = 24


class _AddressFirstPacketSpace(PacketSpace):
    """The historical default layout: addresses above the protocol."""

    def __init__(self):
        manager = BddManager()
        self.manager = manager
        self.dst_ip = BitVector.allocate(manager, "dstIp", 32)
        self.src_ip = BitVector.allocate(manager, "srcIp", 32)
        self.protocol = BitVector.allocate(manager, "protocol", 8)
        self.src_port = BitVector.allocate(manager, "srcPort", 16)
        self.dst_port = BitVector.allocate(manager, "dstPort", 16)
        self.icmp_type = BitVector.allocate(manager, "icmpType", 8)
        self.fields = (
            self.dst_ip,
            self.src_ip,
            self.protocol,
            self.src_port,
            self.dst_port,
            self.icmp_type,
        )


class _InterleavedPacketSpace(PacketSpace):
    """Packet space with dstIp bits interleaved with port bits."""

    def __init__(self):
        manager = BddManager()
        # Interleave 32 dstIp bits with 16+16 port bits: d p d p ...
        dst_bits = []
        src_port_bits = []
        dst_port_bits = []
        for index in range(32):
            dst_bits.append(manager.new_var())
            if index < 16:
                src_port_bits.append(manager.new_var())
                dst_port_bits.append(manager.new_var())
        self.manager = manager
        self.dst_ip = BitVector(manager, "dstIp", dst_bits)
        self.src_ip = BitVector.allocate(manager, "srcIp", 32)
        self.protocol = BitVector.allocate(manager, "protocol", 8)
        self.src_port = BitVector(manager, "srcPort", src_port_bits)
        self.dst_port = BitVector(manager, "dstPort", dst_port_bits)
        self.icmp_type = BitVector.allocate(manager, "icmpType", 8)
        self.fields = (
            self.dst_ip,
            self.src_ip,
            self.protocol,
            self.src_port,
            self.dst_port,
            self.icmp_type,
        )


def _build(space_factory):
    rng = random.Random(31)
    acl = Acl(name="A", lines=tuple(random_rules(RULES, rng)))
    space = space_factory()
    start = time.perf_counter()
    permit = space.acl_permit_pred(acl)
    seconds = time.perf_counter() - start
    return seconds, space.manager.node_count, space.manager.dag_size(permit)


def _diff_fleet(space_factory):
    """Total nodes + wall time for all-pairs diff_acls on a gateway fleet."""
    devices, _ = gateway_fleet(
        count=FLEET_DEVICES, outliers=FLEET_DEVICES - 1, rule_count=FLEET_RULES, seed=3
    )
    acls = [acl for device in devices for acl in device.acls.values()]
    total_nodes = 0
    start = time.perf_counter()
    for i in range(len(acls)):
        for j in range(i + 1, len(acls)):
            space = space_factory()
            diff_acls(acls[i], acls[j], space=space)
            total_nodes += space.manager.node_count
    seconds = time.perf_counter() - start
    return seconds, total_nodes


def _run():
    grouped = _build(PacketSpace)
    address_first = _build(_AddressFirstPacketSpace)
    interleaved = _build(_InterleavedPacketSpace)
    diff_grouped = _diff_fleet(PacketSpace)
    diff_addr = _diff_fleet(_AddressFirstPacketSpace)
    return grouped, address_first, interleaved, diff_grouped, diff_addr


def test_ablation_variable_ordering(benchmark, results_dir):
    (grouped, address_first, interleaved, diff_grouped, diff_addr) = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )
    grouped_seconds, grouped_nodes, grouped_dag = grouped
    addr_seconds, addr_nodes, addr_dag = address_first
    inter_seconds, inter_nodes, inter_dag = interleaved
    diff_grouped_seconds, diff_grouped_nodes = diff_grouped
    diff_addr_seconds, diff_addr_nodes = diff_addr

    lines = [
        f"ACL permit-set construction, {RULES} random rules",
        "",
        "| ordering | build time (s) | manager nodes | permit-set DAG |",
        "|---|---|---|---|",
        f"| protocol first, fields grouped (default) | {grouped_seconds:.3f} | {grouped_nodes} | {grouped_dag} |",
        f"| addresses first (old default) | {addr_seconds:.3f} | {addr_nodes} | {addr_dag} |",
        f"| dstIp/ports interleaved | {inter_seconds:.3f} | {inter_nodes} | {inter_dag} |",
        "",
        f"node blowup vs interleaved: {inter_nodes / max(grouped_nodes, 1):.1f}x",
        "",
        f"Pairwise diff_acls, {FLEET_DEVICES}-device gateway fleet, "
        f"{FLEET_RULES} rules each (the SemanticDiff hot path)",
        "",
        "| ordering | wall time (s) | total manager nodes |",
        "|---|---|---|",
        f"| protocol first (default) | {diff_grouped_seconds:.3f} | {diff_grouped_nodes} |",
        f"| addresses first (old default) | {diff_addr_seconds:.3f} | {diff_addr_nodes} |",
        "",
        f"diff-workload node ratio addr-first/default: "
        f"{diff_addr_nodes / max(diff_grouped_nodes, 1):.3f}",
    ]
    emit(results_dir, "ablation_var_order", "\n".join(lines))

    # Grouped orderings must beat the interleaved layout outright (the
    # construction-cost blowup is the design-relevant effect; final DAG
    # sizes can go either way after reduction).
    assert grouped_nodes < inter_nodes
    # On the realistic diff workload the protocol-first default must
    # allocate no more nodes than the address-first layout it replaced —
    # this is the "keep the seeded order" regression.  (On random rules
    # the two are within a few percent of each other, either way.)
    assert diff_grouped_nodes <= diff_addr_nodes
