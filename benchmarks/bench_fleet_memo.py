"""Fingerprint memoization and the persistent cache — BENCH_fleet_memo.json.

Two measurements behind one JSON artifact:

1. **Fleet comparison, memoized vs plain recompute.**  The 12-device
   templated gateway workload through ``compare_fleet`` twice: once
   with ``use_memo=False`` (every pair recomputes every component — the
   PR-1 baseline) and once with the default fingerprint memoization.
   The serialized reports must be identical; the interesting number is
   the speedup, which grows with fleet size because a templated fleet
   has O(1) unique component contents but O(n²) pairs.

2. **CLI warm vs cold cache.**  ``campion fleet --json`` is invoked
   in-process twice against a fresh ``--cache-dir``: the cold run
   parses every config and computes every diff, the warm run replays
   both from disk.  Stdout must be byte-identical (the ``--json`` view
   is deliberately timing-free) and the warm run is expected to finish
   in a small fraction of the cold wall time.

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_MEMO_FLEET`` (devices, default 12),
``CAMPION_BENCH_MEMO_RULES`` (rules per gateway, default 40).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_fleet_memo.py``.  With
``--write-configs DIR`` it instead materializes the fleet's config
files into DIR (for the CI cache-smoke job) and exits.
"""

import contextlib
import gc
import io
import os
import pathlib
import sys
import tempfile
import time

from bench_artifacts import write_artifact
from repro import perf
from repro.cli import main as campion_main
from repro.core import compare_fleet, fleet_report_to_dict
from repro.workloads.datacenter import gateway_fleet

FLEET_SIZE = int(os.environ.get("CAMPION_BENCH_MEMO_FLEET", "12"))
FLEET_RULES = int(os.environ.get("CAMPION_BENCH_MEMO_RULES", "40"))
OUTLIERS = 2
SEED = 11

#: The speedup/warm-fraction bars only apply at full scale; smoke runs
#: with tiny workloads spend their time in fixed overheads.
FULL_SCALE = FLEET_SIZE >= 12 and FLEET_RULES >= 40


def _memo_microbench() -> dict:
    devices, expected_outliers = gateway_fleet(
        count=FLEET_SIZE, outliers=OUTLIERS, rule_count=FLEET_RULES, seed=SEED
    )
    result = {
        "devices": FLEET_SIZE,
        "rules_per_device": FLEET_RULES,
        "outliers_injected": OUTLIERS,
    }
    gc.collect()
    start = time.perf_counter()
    baseline = compare_fleet(devices, workers=1, use_memo=False)
    result["baseline_seconds"] = time.perf_counter() - start
    gc.collect()
    start = time.perf_counter()
    memoized = compare_fleet(devices, workers=1)
    result["memoized_seconds"] = time.perf_counter() - start
    result["speedup"] = result["baseline_seconds"] / result["memoized_seconds"]
    result["outliers"] = memoized.outliers
    result["identical_reports"] = fleet_report_to_dict(
        baseline
    ) == fleet_report_to_dict(memoized)
    assert result["identical_reports"], "memoized fleet report diverged"
    assert set(memoized.outliers) == set(expected_outliers)
    return result


def _run_cli(argv, cwd_configs) -> tuple:
    stdout, stderr = io.StringIO(), io.StringIO()
    start = time.perf_counter()
    with contextlib.redirect_stdout(stdout), contextlib.redirect_stderr(stderr):
        code = campion_main(argv)
    elapsed = time.perf_counter() - start
    return code, stdout.getvalue(), stderr.getvalue(), elapsed


def write_fleet_configs(directory: pathlib.Path, count=None, rules=None,
                        outliers=None, seed=SEED) -> list:
    """Materialize the benchmark fleet as config files; returns paths."""
    devices, _ = gateway_fleet(
        count=count or FLEET_SIZE,
        outliers=OUTLIERS if outliers is None else outliers,
        rule_count=rules or FLEET_RULES,
        seed=seed,
    )
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for device in devices:
        path = directory / f"{device.hostname}.cfg"
        path.write_text("\n".join(device.raw_lines) + "\n")
        paths.append(str(path))
    return paths


def _cache_microbench() -> dict:
    with tempfile.TemporaryDirectory(prefix="campion-bench-") as workdir:
        workdir = pathlib.Path(workdir)
        paths = write_fleet_configs(workdir / "configs")
        cache_dir = str(workdir / "cache")
        argv = ["--cache-dir", cache_dir, "fleet", "--json"] + paths
        cold_code, cold_out, cold_err, cold_s = _run_cli(argv, workdir)
        # Warm wall times are tens of milliseconds; take the best of a
        # few repeats so scheduler noise doesn't swamp the measurement.
        warm_s = float("inf")
        for _ in range(3):
            warm_code, warm_out, warm_err, elapsed = _run_cli(argv, workdir)
            assert cold_code == warm_code, (cold_code, warm_code)
            assert cold_out == warm_out, "warm fleet --json diverged from cold"
            warm_s = min(warm_s, elapsed)
    assert "hits=0" in cold_err.splitlines()[-1], cold_err
    result = {
        "devices": FLEET_SIZE,
        "rules_per_device": FLEET_RULES,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_fraction": warm_s / cold_s,
        "stdout_identical": cold_out == warm_out,
        "cold_cache_line": cold_err.strip().splitlines()[-1],
        "warm_cache_line": warm_err.strip().splitlines()[-1],
    }
    return result


def _run_all() -> dict:
    perf.reset()
    payload = {
        "fleet_memoization": _memo_microbench(),
        "cli_cache": _cache_microbench(),
        "perf": perf.snapshot(),
    }
    return payload


def _write(payload: dict) -> pathlib.Path:
    return write_artifact(
        "BENCH_fleet_memo.json",
        payload,
        "full" if FULL_SCALE else "smoke",
    )


def _render(payload: dict) -> str:
    memo = payload["fleet_memoization"]
    cache = payload["cli_cache"]
    lines = [
        "Fingerprint memoization and the persistent artifact cache",
        "",
        f"Fleet of {memo['devices']} gateways ({memo['rules_per_device']} rules each):",
        f"  recompute every pair  {memo['baseline_seconds']:.2f}s",
        f"  fingerprint memo      {memo['memoized_seconds']:.2f}s"
        f"  ({memo['speedup']:.2f}x, identical reports: {memo['identical_reports']})",
        "",
        "campion fleet --json, fresh --cache-dir:",
        f"  cold cache  {cache['cold_seconds']:.2f}s   ({cache['cold_cache_line']})",
        f"  warm cache  {cache['warm_seconds']:.2f}s   ({cache['warm_cache_line']})",
        f"  warm/cold   {cache['warm_fraction']:.2f}"
        f"  (stdout identical: {cache['stdout_identical']})",
    ]
    return "\n".join(lines)


def test_fleet_memo(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_fleet_memo", _render(payload))

    assert payload["fleet_memoization"]["identical_reports"]
    assert payload["cli_cache"]["stdout_identical"]
    if FULL_SCALE:
        speedup = payload["fleet_memoization"]["speedup"]
        assert speedup >= 3.0, f"memoization only {speedup:.2f}x"
        fraction = payload["cli_cache"]["warm_fraction"]
        assert fraction < 0.25, f"warm cache run at {fraction:.2f} of cold"


if __name__ == "__main__":
    if "--write-configs" in sys.argv:
        flags = dict(
            zip(sys.argv[1::2], sys.argv[2::2])
        )  # --write-configs DIR [--devices N] [--rules R] [--outliers K]
        paths = write_fleet_configs(
            pathlib.Path(flags["--write-configs"]),
            count=int(flags.get("--devices", FLEET_SIZE)),
            rules=int(flags.get("--rules", FLEET_RULES)),
            outliers=(
                int(flags["--outliers"]) if "--outliers" in flags else None
            ),
        )
        print("\n".join(paths))
        sys.exit(0)
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
