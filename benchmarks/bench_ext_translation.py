"""Extension — model-based translation with Campion verification.

Measures the §5.1 Scenario 2 workflow automated end to end: for a batch
of ToR configs, translate Cisco→JunOS via the renderers and verify each
with ConfigDiff.  Asserts (a) every clean translation verifies, (b) the
known-inexpressible construct (send-community=false) is both warned
about and caught, and (c) same-dialect round trips are always
equivalent.
"""

import time

from conftest import emit

from repro.parsers import parse_cisco, parse_juniper
from repro.render import translate
from repro.workloads.datacenter import _cisco_tor, _juniper_tor
from repro.workloads.university import _CISCO_CORE

BATCH = 10


def _run():
    verified = 0
    start = time.perf_counter()
    for index in range(BATCH):
        device = parse_cisco(_cisco_tor(index, 2), f"tor{index}.cfg")
        result = translate(device, "juniper")
        if result.verified:
            verified += 1
    batch_seconds = time.perf_counter() - start

    round_trips = 0
    for index in range(BATCH):
        cisco_device = parse_cisco(_cisco_tor(index, 2), f"c{index}.cfg")
        juniper_device = parse_juniper(_juniper_tor(index, 2), f"j{index}.cfg")
        if translate(cisco_device, "cisco").verified:
            round_trips += 1
        if translate(juniper_device, "juniper").verified:
            round_trips += 1

    core = parse_cisco(_CISCO_CORE, "core.cfg")
    inexpressible = translate(core, "juniper")
    return verified, batch_seconds, round_trips, inexpressible


def test_extension_translate_and_verify(benchmark, results_dir):
    verified, batch_seconds, round_trips, inexpressible = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    lines = [
        f"Cisco->JunOS translations verified: {verified}/{BATCH} "
        f"({batch_seconds:.1f}s total incl. verification)",
        f"same-dialect round trips equivalent: {round_trips}/{2 * BATCH}",
        "",
        "inexpressible-construct case (send-community=false):",
        f"  warnings: {len(inexpressible.warnings)}",
        f"  verified: {inexpressible.verified}",
        f"  residual diffs: {inexpressible.report.total_differences()}",
    ]
    emit(results_dir, "ext_translation", "\n".join(lines))

    assert verified == BATCH
    assert round_trips == 2 * BATCH
    assert not inexpressible.verified
    assert inexpressible.warnings
    residues = {d.attribute for d in inexpressible.report.structural}
    assert residues == {"send-community"}
