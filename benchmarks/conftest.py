"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
times the underlying computation with pytest-benchmark, writes the
regenerated table to ``benchmarks/results/<name>.txt``, and asserts the
qualitative claims (who wins, which counts, which rows) so a regression
in the reproduction fails loudly.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a regenerated table and echo it for -s runs."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
