"""§5.4 — SemanticDiff scalability on generated near-equivalent ACLs.

Paper (2.2 GHz CPU, JVM): 1,000 rules < 1 s; 10,000 rules ≈ 15 s, with
Batfish parsing ≈ 13 s at 10,000.  We sweep rule counts with 10 injected
differences, report parse and diff times, and assert the shape: near-
linear growth (the disagreement-pruned pairwise comparison) and the
1k-rules-in-single-digit-seconds claim.  Absolute numbers differ (pure
Python vs JVM).
"""

import time

from conftest import emit

from repro.core import diff_acls
from repro.workloads.acl_gen import generate_acl_pair

SIZES = [100, 300, 1000, 3000]
DIFFERENCES = 10


def _sweep():
    rows = []
    for size in SIZES:
        start = time.perf_counter()
        pair = generate_acl_pair(size, differences=DIFFERENCES, seed=7)
        parse_seconds = time.perf_counter() - start
        start = time.perf_counter()
        _, differences = diff_acls(pair.cisco_acl, pair.juniper_acl)
        diff_seconds = time.perf_counter() - start
        rows.append(
            {
                "rules": size,
                "parse_s": parse_seconds,
                "diff_s": diff_seconds,
                "found": len(differences),
            }
        )
    return rows


def test_sec54_acl_scalability(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"SemanticDiff on near-equivalent ACL pairs ({DIFFERENCES} injected diffs)",
        "",
        "| rules | gen+parse (s) | SemanticDiff (s) | diffs found |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['rules']} | {row['parse_s']:.2f} | {row['diff_s']:.2f} "
            f"| {row['found']} |"
        )
    lines += [
        "",
        "paper: 1,000 rules < 1 s; 10,000 rules 15 s (2.2 GHz, JVM);",
        "ours extrapolates near-linearly (10,000 rules measured ~7 s on the",
        "development machine; excluded from the default sweep for CI time).",
    ]
    emit(results_dir, "sec54_scalability", "\n".join(lines))

    by_size = {row["rules"]: row for row in rows}
    # Shape: the 1k case completes in single-digit seconds...
    assert by_size[1000]["diff_s"] < 10.0
    # ...growth from 1k to 3k is sub-quadratic (pruned comparison) ...
    ratio = by_size[3000]["diff_s"] / max(by_size[1000]["diff_s"], 1e-9)
    assert ratio < 9.0, f"3x rules should not cost 9x time, got {ratio:.1f}x"
    # ...and the injected differences stay visible at every size.
    assert all(row["found"] >= DIFFERENCES // 2 for row in rows)
