"""Ablation — path equivalence classes vs. an output-only partition.

SemanticDiff partitions by *path* (which clause fires), not merely by
final action.  An output-partition variant (one class per distinct
action: the monolithic baseline's granularity) detects the same
aggregate disagreement region but cannot attribute it to clauses — it
reports fewer, coarser differences with no text localization.  This
bench quantifies the difference on the university workload.
"""

from conftest import emit

from repro.core import diff_route_maps
from repro.encoding import RouteSpace, route_map_equivalence_classes
from repro.workloads.university import university_network


def _output_partition_differences(space, map1, map2):
    """The ablated variant: group classes by action before comparing."""
    groups = {}
    for index, route_map in enumerate((map1, map2)):
        merged = {}
        for cls in route_map_equivalence_classes(space, route_map):
            key = cls.action.describe()
            merged[key] = merged.get(key, space.manager.false) | cls.predicate
        groups[index] = merged
    differences = 0
    for action1, pred1 in groups[0].items():
        for action2, pred2 in groups[1].items():
            if action1 != action2 and pred1.intersects(pred2):
                differences += 1
    return differences


def _run():
    rows = []
    network = university_network()
    for pair in network.pairs():
        for label, (cisco_name, juniper_name) in {
            **pair.export_maps,
            **pair.import_maps,
        }.items():
            map1 = pair.cisco.route_maps[cisco_name]
            map2 = pair.juniper.route_maps[juniper_name]
            space, path_differences = diff_route_maps(map1, map2)
            coarse = _output_partition_differences(space, map1, map2)
            localized = sum(
                1 for d in path_differences if not d.class1.source.is_empty()
            )
            rows.append(
                {
                    "label": label,
                    "path": len(path_differences),
                    "output_only": coarse,
                    "with_text": localized,
                }
            )
    return rows


def test_ablation_path_vs_output_partitioning(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        "| route map | path-partition diffs | output-only diffs | path diffs with config text |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['label']} | {row['path']} | {row['output_only']} | {row['with_text']} |"
        )
    emit(results_dir, "ablation_partitioning", "\n".join(lines))

    total_path = sum(row["path"] for row in rows)
    total_output = sum(row["output_only"] for row in rows)
    total_localized = sum(row["with_text"] for row in rows)
    # Path partitioning distinguishes at least as many differences...
    assert total_path >= total_output
    # ...strictly more on this workload (Export 5 splits across terms)...
    assert total_path > total_output
    # ...and every path difference carries configuration text.
    assert total_localized == total_path
