"""Table 5 — the Minesweeper-style baseline on the §2.2 static routes.

One concrete packet (dstIp 10.1.1.2), a forwards/does-not-forward
verdict, and no prefix, distance, or configuration text — the contrast
with Table 4 the paper draws.
"""

from conftest import emit

from repro.baseline import monolithic_static_route_check
from repro.model import Prefix
from repro.workloads.figure1 import section2_static_devices


def _run():
    return monolithic_static_route_check(*section2_static_devices())


def test_table5_minesweeper_static_counterexample(benchmark, results_dir):
    counterexample = benchmark(_run)
    assert counterexample is not None

    rendered = counterexample.render()
    emit(results_dir, "table5_minesweeper_static", rendered)

    # The witness must fall inside the Cisco-only /31.
    assert Prefix.parse("10.1.1.2/31").contains_address(counterexample.dst_ip)
    assert counterexample.forwards1 and not counterexample.forwards2
    assert "cisco_router forwards (static)" in rendered
    assert "juniper_router does not forward" in rendered
    # No localization: no prefix, distance, or config text rows.
    assert "Prefix" not in rendered
    assert "Distance" not in rendered
    assert "ip route" not in rendered
