"""Figure 2 — partitioning the advertisement space by route-map paths.

Regenerates the three equivalence classes of the Figure 1(a) Cisco
route map — NETS / ¬NETS∧COMM / ¬NETS∧¬COMM — with their actions, and
verifies the partition laws (pairwise disjoint, union = universe).
"""

from conftest import emit

from repro.encoding import RouteSpace, route_map_equivalence_classes
from repro.workloads.figure1 import figure1_devices


def _run():
    cisco, juniper = figure1_devices()
    map1 = cisco.route_maps["POL"]
    space = RouteSpace([map1, juniper.route_maps["POL"]])
    return space, map1, route_map_equivalence_classes(space, map1)


def test_figure2_equivalence_classes(benchmark, results_dir):
    space, map1, classes = benchmark(_run)

    assert len(classes) == 3

    rows = ["| class | region | action |", "|---|---|---|"]
    for index, cls in enumerate(classes, start=1):
        region = ["NETS", "¬NETS ∧ COMM", "¬NETS ∧ ¬COMM"][index - 1]
        rows.append(
            f"| {index} ({cls.step_name}) | {region} | "
            f"{cls.action.describe().replace(chr(10), ' / ')} |"
        )
    emit(results_dir, "figure2_equivalence_classes", "\n".join(rows))

    # The symbolic regions are exactly Figure 2's.
    nets = space.prefix_list_pred(map1.clauses[0].matches[0].prefix_list)
    comm = space.community_list_pred(map1.clauses[1].matches[0].community_list)
    assert classes[0].predicate == nets & space.universe
    assert classes[1].predicate == ~nets & comm & space.universe
    assert classes[2].predicate == ~nets & ~comm & space.universe

    # Partition laws.
    union = space.manager.false
    for index, cls in enumerate(classes):
        for other in classes[index + 1 :]:
            assert not cls.predicate.intersects(other.predicate)
        union = union | cls.predicate
    assert union == space.universe

    # Actions: reject / reject / set-local-pref-30 accept.
    assert classes[0].action.describe() == "REJECT"
    assert classes[1].action.describe() == "REJECT"
    assert classes[2].action.describe() == "SET LOCAL PREF 30\nACCEPT"
