"""Figure 3 — the ddNF DAG and the GetMatch traversal.

Rebuilds the paper's worked example: seven nested prefix ranges, the
affected set S = (B − D) ∪ (C − (F − G)), and the minimal flattened
representation {B − D, C − F, G}.
"""

from conftest import emit

from repro.core import (
    FlatTerm,
    build_dag,
    flatten_terms,
    get_match,
    header_localize,
    prefix_range_algebra,
)
from repro.encoding import RouteSpace
from repro.model import PrefixRange

A = PrefixRange.parse("10.0.0.0/8 : 8-32")
B = PrefixRange.parse("10.0.0.0/9 : 9-32")
C = PrefixRange.parse("10.128.0.0/9 : 9-32")
D = PrefixRange.parse("10.0.0.0/9 : 16-24")
E = PrefixRange.parse("10.64.0.0/10 : 25-32")
F = PrefixRange.parse("10.128.0.0/10 : 10-28")
G = PrefixRange.parse("10.128.0.0/12 : 12-20")
RANGES = [A, B, C, D, E, F, G]


def _run():
    space = RouteSpace([])
    to_pred = space.range_pred
    affected = (to_pred(B) - to_pred(D)) | (to_pred(C) - (to_pred(F) - to_pred(G)))
    localization = header_localize(
        affected, RANGES, prefix_range_algebra(), to_pred
    )
    return space, affected, localization


def test_figure3_getmatch(benchmark, results_dir):
    space, affected, localization = benchmark(_run)

    rows = [
        "DAG over {A..G} ∪ {U}, S = (B − D) ∪ (C − (F − G))",
        "",
        f"GetMatch + flatten: {localization.render()}",
        f"DAG nodes: {localization.stats.dag_nodes}, "
        f"containment checks: {localization.stats.containment_checks}, "
        f"recursive calls: {localization.stats.recursive_calls}",
    ]
    emit(results_dir, "figure3_getmatch", "\n".join(rows))

    # The paper's final representation: {B − D, C − F, G}.
    assert set(localization.terms) == {
        FlatTerm(B, (D,)),
        FlatTerm(C, (F,)),
        FlatTerm(G),
    }

    # And it denotes exactly S.
    rebuilt = space.manager.false
    for term in localization.terms:
        piece = space.range_pred(term.range)
        for minus in term.minus:
            piece = piece - space.range_pred(minus)
        rebuilt = rebuilt | piece
    assert rebuilt == affected
