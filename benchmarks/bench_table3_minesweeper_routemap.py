"""Table 3 — the Minesweeper-style baseline on the Figure 1 route maps.

The monolithic check returns a single concrete counterexample with no
localization; the bench regenerates the table and asserts its shape:
one route, one packet, one 'X forwards / Y does not' verdict — and
nothing about the second underlying difference or the affected sets.
"""

from conftest import emit

from repro.baseline import monolithic_route_map_check
from repro.model import Prefix
from repro.workloads.figure1 import figure1_devices


def _run():
    cisco, juniper = figure1_devices()
    return monolithic_route_map_check(
        cisco.route_maps["POL"],
        juniper.route_maps["POL"],
        router1="cisco_router",
        router2="juniper_router",
    )


def test_table3_minesweeper_single_counterexample(benchmark, results_dir):
    counterexample = benchmark(_run)
    assert counterexample is not None

    rendered = counterexample.render()
    emit(results_dir, "table3_minesweeper_routemap", rendered)

    # Table 3's shape: a single sub-prefix of a NETS network that the
    # Juniper map forwards and the Cisco map does not.
    prefix = counterexample.route.prefix
    assert 16 < prefix.length <= 32
    in_nets = Prefix.parse("10.9.0.0/16").contains_prefix(prefix) or Prefix.parse(
        "10.100.0.0/16"
    ).contains_prefix(prefix)
    assert in_nets
    assert "juniper_router forwards (BGP)" in rendered
    assert "cisco_router does not forward" in rendered
    # The monolithic interface provides no localization rows.
    assert "Included Prefixes" not in rendered
    assert "Text" not in rendered
