"""Analysis-service round-trip latency — BENCH_service.json.

Pushes the templated gateway fleet through a live ``ServiceThread``
(the same supervised job engine behind ``campion serve``) twice over
one persistent cache directory:

* the **cold** push parses every config and computes every diff;
* the **warm** push replays parses and diffs from the content-addressed
  cache, so its wall time is dominated by the HTTP+queue round-trip.

The tracked ratio is ``warm_push.speedup`` (cold over warm, measured
in the same process), which is what makes the committed baseline
meaningful on CI runners with different absolute speeds.  Correctness
rides along: the cold report must be byte-identical to an in-process
``compare_fleet`` over the same devices, and the warm push must serve
every device parse from the cache with zero memo misses.

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_SERVICE_FLEET`` (devices, default 8) and
``CAMPION_BENCH_SERVICE_RULES`` (rules per gateway, default 16).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_service.py``.
"""

import gc
import json
import os
import pathlib
import tempfile
import time
import urllib.request

from bench_artifacts import write_artifact
from repro import perf
from repro.core import compare_fleet, fleet_report_to_dict
from repro.service.app import ServiceConfig, ServiceThread
from repro.workloads.datacenter import gateway_fleet

FLEET_SIZE = int(os.environ.get("CAMPION_BENCH_SERVICE_FLEET", "8"))
FLEET_RULES = int(os.environ.get("CAMPION_BENCH_SERVICE_RULES", "16"))
OUTLIERS = 2
SEED = 11

#: Speedup bars only apply at full scale; smoke runs spend their time
#: in fixed overheads (HTTP round-trip, journal fsyncs).
FULL_SCALE = FLEET_SIZE >= 8 and FLEET_RULES >= 16


def _http_json(url, body=None, timeout=60.0):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST" if data is not None else "GET",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _push_and_wait(url, configs):
    """One fleet push, submit to terminal state; returns (doc, seconds)."""
    gc.collect()
    start = time.perf_counter()
    body = _http_json(f"{url}/v1/fleet", {"configs": configs, "workers": 1})
    job_id = body["job"]["id"]
    while True:
        doc = _http_json(f"{url}/v1/jobs/{job_id}")
        if doc["job"]["state"] in ("done", "failed", "dead-letter"):
            elapsed = time.perf_counter() - start
            assert doc["job"]["state"] == "done", doc["job"]
            return doc, elapsed
        time.sleep(0.01)


def _run_all() -> dict:
    perf.reset()
    devices, expected_outliers = gateway_fleet(
        count=FLEET_SIZE, outliers=OUTLIERS, rule_count=FLEET_RULES, seed=SEED
    )
    configs = [
        {
            "name": f"{device.hostname}.cfg",
            "text": "\n".join(device.raw_lines) + "\n",
        }
        for device in devices
    ]
    expected = fleet_report_to_dict(compare_fleet(devices, workers=1))

    with tempfile.TemporaryDirectory(prefix="campion-bench-svc-") as workdir:
        workdir = pathlib.Path(workdir)
        config = ServiceConfig(
            port=0,
            journal_path=workdir / "journal.jsonl",
            cache_dir=str(workdir / "cache"),
            workers=1,
            job_concurrency=1,
        )
        with ServiceThread(config) as thread:
            cold_doc, cold_s = _push_and_wait(thread.url, configs)
            # Warm wall times are tens of milliseconds; take the best of
            # a few repeats so scheduler noise doesn't swamp the ratio.
            warm_s = float("inf")
            for _ in range(3):
                warm_doc, elapsed = _push_and_wait(thread.url, configs)
                warm_s = min(warm_s, elapsed)

    cold_report = json.dumps(cold_doc["result"]["report"], sort_keys=True)
    identical = cold_report == json.dumps(expected, sort_keys=True)
    assert identical, "service report diverged from in-process compare_fleet"
    warm_cache = warm_doc["result"]["cache"]
    assert warm_cache["device_hits"] == len(configs), warm_cache
    assert warm_cache["memo_misses"] == 0, warm_cache
    assert set(cold_doc["result"]["report"]["outliers"]) == set(
        expected_outliers
    )

    return {
        "service_fleet": {
            "devices": FLEET_SIZE,
            "rules_per_device": FLEET_RULES,
            "outliers_injected": OUTLIERS,
            "identical_to_in_process": identical,
            "outliers": cold_doc["result"]["report"]["outliers"],
        },
        "warm_push": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s,
            "warm_device_hits": warm_cache["device_hits"],
            "warm_memo_misses": warm_cache["memo_misses"],
        },
        "perf": perf.snapshot(),
    }


def _write(payload: dict) -> pathlib.Path:
    return write_artifact(
        "BENCH_service.json",
        payload,
        "full" if FULL_SCALE else "smoke",
    )


def _render(payload: dict) -> str:
    fleet = payload["service_fleet"]
    warm = payload["warm_push"]
    return "\n".join(
        [
            "Always-on analysis service: fleet push round-trip",
            "",
            f"Fleet of {fleet['devices']} gateways"
            f" ({fleet['rules_per_device']} rules each) over HTTP:",
            f"  cold push  {warm['cold_seconds']:.2f}s",
            f"  warm push  {warm['warm_seconds']:.2f}s"
            f"  ({warm['speedup']:.2f}x,"
            f" device hits {warm['warm_device_hits']},"
            f" memo misses {warm['warm_memo_misses']})",
            f"  report identical to in-process compare_fleet:"
            f" {fleet['identical_to_in_process']}",
        ]
    )


def test_service(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_service", _render(payload))

    assert payload["service_fleet"]["identical_to_in_process"]
    assert payload["warm_push"]["warm_memo_misses"] == 0
    if FULL_SCALE:
        speedup = payload["warm_push"]["speedup"]
        assert speedup >= 2.0, f"warm push only {speedup:.2f}x"


if __name__ == "__main__":
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
