"""Kernel fast paths and parallel fleet comparison — BENCH_kernels.json.

Two microbenchmarks behind one JSON artifact:

1. **ACL SemanticDiff, fast kernels vs generic ite.**  The same parsed
   near-equivalent ACL pair is diffed twice, each time in a fresh
   manager: once with ``fast_kernels=False`` (every connective routed
   through the generic ite core — the historical engine) and once with
   the specialized kernels.  References from one mode are dropped and
   the heap collected before timing the other, so neither run pays GC
   scans over the other's caches.

2. **Fleet comparison, serial vs workers.**  The 16-device datacenter
   gateway workload through ``compare_fleet`` with ``workers=1`` and
   ``workers=N``, asserting the reports serialize identically.  The
   speedup scales with *physical cores* (the matrix fan-out is
   CPU-bound); ``cpu_count`` is recorded so single-core CI numbers read
   honestly.

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_RULES`` (ACL rules, default 10000),
``CAMPION_BENCH_FLEET`` (devices, default 16),
``CAMPION_BENCH_FLEET_RULES`` (rules per gateway, default 40) and
``CAMPION_BENCH_WORKERS`` (default 4).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_kernel_fastpaths.py``.
"""

import gc
import os
import pathlib
import time

from bench_artifacts import write_artifact
from repro import perf
from repro.bdd import BddManager
from repro.core import compare_fleet, diff_acls, report_to_json
from repro.encoding import PacketSpace
from repro.workloads.acl_gen import generate_acl_pair
from repro.workloads.datacenter import gateway_fleet

RULES = int(os.environ.get("CAMPION_BENCH_RULES", "10000"))
FLEET_SIZE = int(os.environ.get("CAMPION_BENCH_FLEET", "16"))
FLEET_RULES = int(os.environ.get("CAMPION_BENCH_FLEET_RULES", "40"))
WORKERS = int(os.environ.get("CAMPION_BENCH_WORKERS", "4"))
DIFFERENCES = 10


def _acl_microbench() -> dict:
    pair = generate_acl_pair(RULES, differences=DIFFERENCES, seed=7)
    result = {"rules": RULES, "injected_differences": DIFFERENCES}
    for label, fast in (("generic_ite", False), ("fast_kernels", True)):
        gc.collect()
        space = PacketSpace(manager=BddManager(fast_kernels=fast))
        start = time.perf_counter()
        differences = diff_acls(pair.cisco_acl, pair.juniper_acl, space=space)[1]
        elapsed = time.perf_counter() - start
        result[label] = {
            "seconds": elapsed,
            "differences": len(differences),
            "manager_stats": space.manager.stats(),
        }
        # Drop every handle into this mode's manager before the next
        # mode is timed; otherwise its caches inflate the other run's
        # garbage-collection pauses.
        del space, differences
        gc.collect()
    result["speedup"] = (
        result["generic_ite"]["seconds"] / result["fast_kernels"]["seconds"]
    )
    return result


def _fleet_microbench() -> dict:
    devices, expected_outliers = gateway_fleet(
        count=FLEET_SIZE, outliers=3, rule_count=FLEET_RULES, seed=3
    )
    result = {
        "devices": FLEET_SIZE,
        "rules_per_device": FLEET_RULES,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
    }
    gc.collect()
    start = time.perf_counter()
    serial = compare_fleet(devices, workers=1)
    result["serial_seconds"] = time.perf_counter() - start
    gc.collect()
    start = time.perf_counter()
    parallel = compare_fleet(devices, workers=WORKERS)
    result["parallel_seconds"] = time.perf_counter() - start
    result["speedup"] = result["serial_seconds"] / result["parallel_seconds"]
    result["outliers"] = parallel.outliers
    serial_json = {h: report_to_json(r) for h, r in serial.reports.items()}
    parallel_json = {h: report_to_json(r) for h, r in parallel.reports.items()}
    result["byte_identical"] = (
        serial_json == parallel_json
        and serial.matrix == parallel.matrix
        and serial.reference == parallel.reference
    )
    assert result["byte_identical"], "parallel fleet report diverged from serial"
    assert set(parallel.outliers) == set(expected_outliers)
    return result


def _run_all() -> dict:
    perf.reset()
    payload = {
        "acl_semantic_diff": _acl_microbench(),
        "fleet_comparison": _fleet_microbench(),
        "perf": perf.snapshot(),
    }
    return payload


def _write(payload: dict) -> pathlib.Path:
    return write_artifact(
        "BENCH_kernels.json",
        payload,
        "full" if RULES >= 5000 else "smoke",
    )


def _render(payload: dict) -> str:
    acl = payload["acl_semantic_diff"]
    fleet = payload["fleet_comparison"]
    lines = [
        "BDD kernel fast paths and parallel fleet comparison",
        "",
        f"ACL SemanticDiff, {acl['rules']} rules, {acl['injected_differences']} injected diffs:",
        f"  generic ite   {acl['generic_ite']['seconds']:.2f}s",
        f"  fast kernels  {acl['fast_kernels']['seconds']:.2f}s"
        f"  ({acl['speedup']:.2f}x)",
        "",
        f"Fleet of {fleet['devices']} gateways ({fleet['rules_per_device']} rules each),"
        f" {fleet['cpu_count']} CPU(s):",
        f"  serial        {fleet['serial_seconds']:.2f}s",
        f"  workers={fleet['workers']}     {fleet['parallel_seconds']:.2f}s"
        f"  ({fleet['speedup']:.2f}x, byte-identical: {fleet['byte_identical']})",
    ]
    return "\n".join(lines)


def test_kernel_fastpaths(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_kernels", _render(payload))

    acl = payload["acl_semantic_diff"]
    assert (
        acl["generic_ite"]["differences"] == acl["fast_kernels"]["differences"]
    ), "kernel modes disagree on the number of differences"
    # The speedup bar only applies at full scale; smoke runs with tiny
    # workloads spend their time outside the kernels.
    if RULES >= 5000:
        assert acl["speedup"] >= 1.3, f"fast kernels only {acl['speedup']:.2f}x"
    assert payload["fleet_comparison"]["byte_identical"]


if __name__ == "__main__":
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
