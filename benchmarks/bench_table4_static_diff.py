"""Table 4 — Campion's StructuralDiff on the §2.2 static routes.

Regenerates the two-column table: the Cisco-only 10.1.1.2/31 route with
its next hop, administrative distance, and exact configuration line,
against 'None' on the Juniper side.
"""

from conftest import emit

from repro.core import ComponentKind, config_diff, render_structural_difference
from repro.workloads.figure1 import section2_static_devices


def _run():
    return config_diff(*section2_static_devices())


def test_table4_static_route_structural_diff(benchmark, results_dir):
    report = benchmark(_run)
    static = [d for d in report.structural if d.kind is ComponentKind.STATIC_ROUTE]
    assert len(static) == 1

    difference = static[0]
    rendered = render_structural_difference(difference)
    emit(results_dir, "table4_static_diff", rendered)

    assert difference.attribute == "presence"
    assert "10.1.1.2/31" in difference.component
    assert "10.2.2.2" in (difference.value1 or "")
    assert difference.value2 is None
    assert "ip route 10.1.1.2 255.255.255.254 10.2.2.2" in difference.source1.render()
    # Rendered table shows None for the absent side (Table 4's right column).
    assert "None" in rendered
