"""Fleet-scale shared-atom universe — BENCH_fleet_atoms.json.

The cold-path fleet matrix under the three set-algebra backends.  The
workload is adversarial for memoization on purpose: every gateway is an
outlier (``outliers = count - 1``), so all ACL fingerprints are
distinct and the per-pair backends genuinely pay the encode+refine cost
for each of the O(N²) pairings — fingerprint dedup cannot flatter the
baseline.  The ``fleet-atoms`` backend folds all N ACLs into one shared
atom universe up front (O(N) BDD work), seeds the diff memo with
bitwise-computed counts, and the matrix replays them with zero BDD
applies.

Every run uses a fresh in-process memo (no persistent cache), so all
three timings are cold.  Serialized reports must be identical across
all backends — the speedup is only meaningful if the answers are.

Workload sizes honour environment knobs so the CI smoke job can run a
tiny version: ``CAMPION_BENCH_FLEET_ATOMS_DEVICES`` (default 16),
``CAMPION_BENCH_FLEET_ATOMS_RULES`` (rules per gateway, default 24).

Runs under pytest-benchmark or standalone:
``PYTHONPATH=src python benchmarks/bench_fleet_atoms.py``.
"""

import gc
import os
import time

from bench_artifacts import write_artifact
from repro import perf
from repro.core import compare_fleet, fleet_report_to_dict
from repro.workloads.datacenter import gateway_fleet

DEVICES = int(os.environ.get("CAMPION_BENCH_FLEET_ATOMS_DEVICES", "16"))
RULES = int(os.environ.get("CAMPION_BENCH_FLEET_ATOMS_RULES", "24"))
SEED = 13

#: The ≥5x bar only applies at full scale (the ISSUE's acceptance
#: criterion names a ≥12-device fleet); smoke runs with tiny workloads
#: spend their time in fixed overheads.
FULL_SCALE = DEVICES >= 12 and RULES >= 24

BACKENDS = ("atoms", "bdd", "fleet-atoms")


def _run_all() -> dict:
    devices, _ = gateway_fleet(
        count=DEVICES, outliers=DEVICES - 1, rule_count=RULES, seed=SEED
    )
    result = {
        "devices": DEVICES,
        "rules_per_device": RULES,
        "distinct_fingerprints": len(
            {d.fingerprints.acls[name] for d in devices for name in d.acls}
        ),
    }
    perf.reset()
    reports = {}
    for name in BACKENDS:
        gc.collect()
        start = time.perf_counter()
        report = compare_fleet(devices, workers=1, set_backend=name)
        result[f"{name}_seconds"] = time.perf_counter() - start
        reports[name] = fleet_report_to_dict(report)
        if name == "fleet-atoms":
            result["fallback_notes"] = list(report.notes)
    result["speedup_vs_atoms"] = (
        result["atoms_seconds"] / result["fleet-atoms_seconds"]
    )
    result["speedup_vs_bdd"] = (
        result["bdd_seconds"] / result["fleet-atoms_seconds"]
    )
    result["identical_reports"] = (
        reports["fleet-atoms"] == reports["atoms"]
        and reports["fleet-atoms"] == reports["bdd"]
    )
    assert result["identical_reports"], "fleet-atoms report diverged"
    counters = perf.REGISTRY.counters
    result["universe_atoms"] = counters.get("fleet_atoms.atoms", 0)
    result["pairs_seeded"] = counters.get("memo.seeds", 0)
    result["budget_fallbacks"] = counters.get("fleet_atoms.budget_fallbacks", 0)
    return result


def _write(payload: dict):
    return write_artifact(
        "BENCH_fleet_atoms.json",
        payload,
        "full" if FULL_SCALE else "smoke",
    )


def _render(payload: dict) -> str:
    lines = [
        "Fleet matrix, cold path, all-distinct ACL fingerprints",
        "",
        f"Fleet of {payload['devices']} gateways, {payload['rules_per_device']}"
        f" rules each, {payload['distinct_fingerprints']} distinct ACLs:",
        f"  atoms (per-pair)   {payload['atoms_seconds']:.2f}s",
        f"  bdd (per-pair)     {payload['bdd_seconds']:.2f}s",
        f"  fleet-atoms        {payload['fleet-atoms_seconds']:.2f}s",
        f"  speedup vs atoms   {payload['speedup_vs_atoms']:.2f}x",
        f"  speedup vs bdd     {payload['speedup_vs_bdd']:.2f}x",
        f"  identical reports  {payload['identical_reports']}",
        f"  universe atoms     {payload['universe_atoms']}"
        f"  (seeded {payload['pairs_seeded']} pair entries,"
        f" {payload['budget_fallbacks']} budget fallbacks)",
    ]
    return "\n".join(lines)


def test_fleet_atoms(benchmark, results_dir):
    from conftest import emit

    payload = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _write(payload)
    emit(results_dir, "BENCH_fleet_atoms", _render(payload))

    assert payload["identical_reports"]
    assert payload["budget_fallbacks"] == 0
    if FULL_SCALE:
        speedup = payload["speedup_vs_atoms"]
        assert speedup >= 5.0, f"fleet-atoms only {speedup:.2f}x vs atoms"


if __name__ == "__main__":
    payload = _run_all()
    path = _write(payload)
    print(_render(payload))
    print(f"\nwrote {path}")
