"""Legacy setup shim: lets `pip install -e .` work without the `wheel`
package (this environment is offline, setuptools 65 + no wheel)."""

from setuptools import setup

setup()
