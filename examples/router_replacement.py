#!/usr/bin/env python3
"""Pre-replacement validation — §5.1 Scenario 2.

Router replacement swaps a device from one vendor for another, with the
configuration manually translated — "one of the riskiest update
operations".  This example gates a batch of proposed Cisco→Juniper
replacements: each translated config is checked against the original
before deployment, and any difference (wrong local preference, wrong
community — including the route-reflector case that would have caused a
severe outage) blocks the replacement with a localized explanation.

Run:  python examples/router_replacement.py
"""

from repro.core import config_diff, render_semantic_difference
from repro.workloads.datacenter import scenario2_router_replacement


def main() -> int:
    scenario = scenario2_router_replacement(replacement_count=30, seed=1)
    print(f"Validating {len(scenario.pairs)} proposed replacements...\n")

    approved = []
    blocked = []
    for pair in scenario.pairs:
        report = config_diff(pair.primary, pair.backup)
        if report.is_equivalent():
            approved.append(pair.name)
        else:
            blocked.append((pair, report))

    print(f"approved: {len(approved)}; blocked: {len(blocked)}\n")
    for pair, report in blocked:
        print(f"BLOCKED {pair.name}: {report.total_differences()} difference(s)")
        for difference in report.semantic:
            print(render_semantic_difference(difference))
            print()

    if any("reflector" in pair.name for pair, _ in blocked):
        print(
            "NOTE: a route-reflector replacement was blocked — deploying it\n"
            "would have changed iBGP route selection fabric-wide (the severe\n"
            "outage scenario of §5.1)."
        )
    return 0 if not blocked else 1


if __name__ == "__main__":
    raise SystemExit(main())
