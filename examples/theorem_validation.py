#!/usr/bin/env python3
"""Theorem 3.3 live — why Campion never models BGP or OSPF.

Builds a random network on the SRP simulator, makes an isomorphic copy,
and shows the theorem in action: Campion's per-edge modular checks pass
and the two networks compute identical routing solutions.  Then a single
export policy is corrupted: the modular check flags exactly that edge,
and solving the networks confirms the routing solutions diverge.

Run:  python examples/theorem_validation.py
"""

from repro.model import Action, RouteMap
from repro.srp import (
    BgpEdgeConfig,
    check_local_equivalence,
    same_routing_solutions,
    solve_network,
)
from repro.workloads.srp_random import random_network, renamed_copy


def main() -> int:
    network = random_network(seed=4, size=6)
    copy, iso = renamed_copy(network)
    print(
        f"network: {len(network.topology.nodes)} routers, "
        f"{len(network.topology.edges)} directed edges, BGP + OSPF"
    )

    violations = check_local_equivalence(network, copy, iso)
    print(f"\nmodular per-edge checks: {len(violations)} violation(s)")
    equal, explanation = same_routing_solutions(network, copy, iso)
    print(f"routing solutions identical: {equal} ({explanation})")

    solution = solve_network(network)
    node = network.topology.nodes[-1]
    print(f"\nstable routes at {node}:")
    for route in solution.routes_at(node):
        print(
            f"  {route.prefix} via {route.protocol} "
            f"(lp={route.local_pref}, as-path={list(route.as_path)}, metric={route.med})"
        )

    # Corrupt edges one at a time, as a bad config push would.  Some
    # corruptions are *latent* (shadowed by topology — the spurious
    # differences of §5.3); others change routing fabric-wide.  The
    # modular check flags every one of them either way.
    latent = 0
    for edge in network.topology.edges:
        mutated, _ = renamed_copy(network)
        mapped = (iso[edge[0]], iso[edge[1]])
        old = mutated.bgp_edges[mapped]
        mutated.bgp_edges[mapped] = BgpEdgeConfig(
            sender_asn=old.sender_asn,
            next_hop=old.next_hop,
            export_map=RouteMap("DENY-ALL", (), default_action=Action.DENY),
            import_map=old.import_map,
        )
        violations = check_local_equivalence(network, mutated, iso)
        flagged = any(v.edge == edge for v in violations)
        equal, _ = same_routing_solutions(network, mutated, iso)
        verdict = "LATENT (shadowed)" if equal else "BEHAVIORAL (solutions diverge)"
        if equal:
            latent += 1
        print(f"  corrupt export on {edge}: flagged={flagged}, {verdict}")
        if not equal and latent:
            break  # one of each is enough for the demo
    print(
        "\nEvery corruption was flagged by the modular check; latent ones are"
        "\nthe paper's §5.3 spurious differences — real risks awaiting a"
        "\nconfig change elsewhere to activate them."
    )

    print(
        "\nTheorem 3.3: local (per-edge) equivalence of the configured"
        "\ntransfer functions is sufficient for identical routing solutions"
        "\n— so checking components modularly needs no protocol model."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
