#!/usr/bin/env python3
"""Gateway ACL equivalence — §5.1 Scenario 3 / Table 7.

All gateway routers should enforce identical access-control policy, but
large nested rule sets drift.  This example compares a Cisco gateway
ACL with its Juniper counterpart two ways:

* Campion's SemanticDiff — every difference, localized to the affected
  header space (source/destination prefixes, one example for the other
  fields) and the exact rule/term text;
* the Minesweeper-style monolithic check — a single concrete packet,
  for contrast (the §2 comparison).

Run:  python examples/acl_gateway_check.py
"""

from repro.baseline import monolithic_acl_check
from repro.core import config_diff, render_semantic_difference
from repro.workloads.datacenter import scenario3_gateway_acls


def main() -> int:
    pair = scenario3_gateway_acls().pairs[0]
    print(f"Comparing ACLs of {pair.primary.hostname} and {pair.backup.hostname}\n")

    print("== Campion (all differences, localized) ==\n")
    report = config_diff(pair.primary, pair.backup)
    for index, difference in enumerate(report.semantic, start=1):
        print(f"Difference {index}:")
        print(render_semantic_difference(difference))
        print()

    print("== Minesweeper-style baseline (one counterexample) ==\n")
    acl_name = next(iter(pair.primary.acls))
    counterexample = monolithic_acl_check(
        pair.primary.acls[acl_name],
        pair.backup.acls[acl_name],
        pair.primary.hostname,
        pair.backup.hostname,
    )
    if counterexample is None:
        print("no difference found")
    else:
        print(counterexample.render())
        print(
            "\n(one packet, no indication of the other "
            f"{len(report.semantic) - 1} differences, no affected sets, no text)"
        )
    return 0 if report.is_equivalent() else 1


if __name__ == "__main__":
    raise SystemExit(main())
