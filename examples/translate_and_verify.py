#!/usr/bin/env python3
"""Assisted router replacement — translate, then verify with Campion.

§5.1 Scenario 2's pain is *manual* translation: "operators must
manually rewrite the old configurations to the new format; many
critical errors have occurred as a result."  With the model-based
renderers, the rewrite is mechanical and the same Campion check that
audits manual translations certifies the automatic one — or pinpoints
exactly what the target dialect cannot express.

Run:  python examples/translate_and_verify.py
"""

from repro.core import render_report
from repro.parsers import parse_cisco
from repro.render import translate
from repro.workloads.datacenter import _cisco_tor
from repro.workloads.university import _CISCO_CORE


def main() -> int:
    print("case 1: a ToR switch, Cisco -> Juniper")
    tor = parse_cisco(_cisco_tor(7, 2), "tor7-cisco.cfg")
    result = translate(tor, "juniper")
    print(f"  renderer warnings: {result.warnings or 'none'}")
    print(f"  Campion verification: {'EQUIVALENT' if result.verified else 'DIFFERS'}")
    print("  first lines of the generated JunOS config:")
    for line in result.text.splitlines()[:12]:
        print(f"    {line}")

    print("\ncase 2: the university core router, Cisco -> Juniper")
    core = parse_cisco(_CISCO_CORE, "core-cisco.cfg")
    result = translate(core, "juniper")
    print(f"  renderer warnings:")
    for warning in result.warnings:
        print(f"    - {warning}")
    print(f"  Campion verification: {'EQUIVALENT' if result.verified else 'DIFFERS'}")
    if not result.verified:
        print("  residual differences (all pre-announced by the warnings):")
        print(render_report(result.report))

    print(
        "\nThe translation pipeline refuses to be silently wrong: anything"
        "\nJunOS cannot express is warned about at render time and shows up"
        "\nin the verification report."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
