#!/usr/bin/env python3
"""Backup-router audit — §5.1 Scenario 1.

Data centers deploy redundant router pairs from different vendors; the
pairs are intended to be behaviorally equivalent but drift apart as
operators add policy.  This example audits a rack of Cisco/Juniper ToR
pairs (synthesized with the paper's bug classes seeded: missing BGP
prefix-list fragments, wrong static next hops) and prints a per-pair
verdict plus full localization for each buggy pair.

Run:  python examples/backup_router_audit.py
"""

from repro.core import ComponentKind, config_diff, render_report
from repro.workloads.datacenter import scenario1_redundant_pairs


def main() -> int:
    scenario = scenario1_redundant_pairs(pair_count=10, seed=0)
    print(f"Auditing {len(scenario.pairs)} redundant ToR pairs...\n")

    buggy = 0
    for pair in scenario.pairs:
        report = config_diff(pair.primary, pair.backup)
        if report.is_equivalent():
            print(f"  {pair.name}: OK (behaviorally equivalent)")
            continue
        buggy += 1
        route_maps = len(report.by_kind(ComponentKind.ROUTE_MAP))
        statics = len(report.by_kind(ComponentKind.STATIC_ROUTE))
        print(
            f"  {pair.name}: {report.total_differences()} difference(s) "
            f"({route_maps} BGP policy, {statics} static route)"
        )

    print(f"\n{buggy} of {len(scenario.pairs)} pairs differ. Detailed reports:\n")
    for pair in scenario.pairs:
        report = config_diff(pair.primary, pair.backup)
        if report.is_equivalent():
            continue
        print(f"--- {pair.name} " + "-" * 50)
        print(render_report(report))
        print()
    return 0 if buggy == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
