#!/usr/bin/env python3
"""The route-reflector replacement outage, end to end — §5.1 Scenario 2.

The paper's highest-stakes finding: a proposed replacement of an iBGP
route reflector carried a wrong local preference, and "if this bug were
not detected, the proposed replacement would have caused a severe
outage."  This example makes that counterfactual executable:

1. build the fabric on the SRP simulator — two border routers
   advertising the same prefix (primary at local-pref 120, backup at
   100), a route reflector applying the preference, and client ToRs
   that only learn what the reflector selects;
2. solve the correct fabric: every client exits via the primary border;
3. swap in the *mistranslated* reflector (local-pref 110 on primary —
   the Scenario 2 bug class) where the backup session still sets 115:
   route selection flips fabric-wide, clients exit via the backup path;
4. show that Campion flags exactly this difference from the two
   configurations alone — no simulation required (Theorem 3.3).

Run:  python examples/route_reflector_outage.py
"""

from repro.core import config_diff, render_semantic_difference
from repro.model import (
    Action,
    ConcreteRoute,
    Prefix,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from repro.parsers import parse_cisco, parse_juniper
from repro.srp import BgpEdgeConfig, SrpNetwork, Topology, solve_network

SERVICE_PREFIX = Prefix.parse("203.0.113.0/24")


def _reflector_policy(primary_pref: int, backup_pref: int):
    """Per-session import policies the reflector applies."""
    primary = RouteMap(
        "FROM-PRIMARY",
        (RouteMapClause("c", Action.PERMIT, (), (SetLocalPref(primary_pref),)),),
        default_action=Action.DENY,
    )
    backup = RouteMap(
        "FROM-BACKUP",
        (RouteMapClause("c", Action.PERMIT, (), (SetLocalPref(backup_pref),)),),
        default_action=Action.DENY,
    )
    return primary, backup


def _build_fabric(primary_pref: int, backup_pref: int) -> SrpNetwork:
    """Hub-and-spoke iBGP: borders -> reflector -> client ToRs."""
    topology = Topology(nodes=["border-primary", "border-backup", "reflector", "tor1", "tor2"])
    for border in ("border-primary", "border-backup"):
        topology.edges.append((border, "reflector"))
    for tor in ("tor1", "tor2"):
        topology.edges.append(("reflector", tor))

    network = SrpNetwork(topology=topology)
    primary_policy, backup_policy = _reflector_policy(primary_pref, backup_pref)
    network.bgp_edges[("border-primary", "reflector")] = BgpEdgeConfig(
        sender_asn=65000, ebgp=False, import_map=primary_policy, next_hop=1
    )
    network.bgp_edges[("border-backup", "reflector")] = BgpEdgeConfig(
        sender_asn=65000, ebgp=False, import_map=backup_policy, next_hop=2
    )
    for tor in ("tor1", "tor2"):
        network.bgp_edges[("reflector", tor)] = BgpEdgeConfig(
            sender_asn=65000, ebgp=False
        )
    for border, hop in (("border-primary", 1), ("border-backup", 2)):
        network.originate(
            border, ConcreteRoute(prefix=SERVICE_PREFIX, next_hop=hop)
        )
    return network


_CISCO_REFLECTOR = """\
hostname reflector
!
route-map FROM-PRIMARY permit 10
 set local-preference 120
route-map FROM-BACKUP permit 10
 set local-preference 115
!
router bgp 65000
 bgp router-id 10.255.255.1
 neighbor 10.0.0.1 remote-as 65000
 neighbor 10.0.0.1 route-map FROM-PRIMARY in
 neighbor 10.0.0.1 route-reflector-client
 neighbor 10.0.0.2 remote-as 65000
 neighbor 10.0.0.2 route-map FROM-BACKUP in
 neighbor 10.0.0.2 route-reflector-client
!
"""

_JUNIPER_REFLECTOR_BUGGY = """\
system {
    host-name reflector-new;
}
routing-options {
    autonomous-system 65000;
    router-id 10.255.255.1;
}
policy-options {
    policy-statement FROM-PRIMARY {
        term t1 {
            then {
                local-preference 110;
                accept;
            }
        }
    }
    policy-statement FROM-BACKUP {
        term t1 {
            then {
                local-preference 115;
                accept;
            }
        }
    }
}
protocols {
    bgp {
        group CLIENTS {
            type internal;
            cluster 10.255.255.1;
            neighbor 10.0.0.1 {
                import FROM-PRIMARY;
            }
            neighbor 10.0.0.2 {
                import FROM-BACKUP;
            }
        }
    }
}
"""


def main() -> int:
    print("correct fabric (reflector prefers primary at lp 120 over backup 115):")
    correct = solve_network(_build_fabric(primary_pref=120, backup_pref=115))
    for tor in ("tor1", "tor2"):
        route = correct.routes_at(tor)[0]
        exit_hop = "primary" if route.next_hop == 1 else "backup"
        print(f"  {tor}: {route.prefix} via {exit_hop} border (lp {route.local_pref})")

    print("\nmistranslated fabric (lp 110 on primary — the Scenario 2 bug):")
    buggy = solve_network(_build_fabric(primary_pref=110, backup_pref=115))
    flipped = 0
    for tor in ("tor1", "tor2"):
        route = buggy.routes_at(tor)[0]
        exit_hop = "primary" if route.next_hop == 1 else "backup"
        flipped += exit_hop == "backup"
        print(f"  {tor}: {route.prefix} via {exit_hop} border (lp {route.local_pref})")
    print(f"\n  -> {flipped} of 2 clients silently moved to the backup path:")
    print("     fabric-wide egress change from one translated number.")

    print("\nCampion on the two reflector configs (no simulation needed):")
    old = parse_cisco(_CISCO_REFLECTOR, "reflector-old.cfg")
    new = parse_juniper(_JUNIPER_REFLECTOR_BUGGY, "reflector-new.cfg")
    report = config_diff(old, new)
    for difference in report.semantic:
        print(render_semantic_difference(difference))
    caught = any(
        "110" in " ".join(d.action_pair()) for d in report.semantic
    )
    print(f"\nwrong local preference caught before deployment: {caught}")
    return 0 if caught else 1


if __name__ == "__main__":
    raise SystemExit(main())
