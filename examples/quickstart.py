#!/usr/bin/env python3
"""Quickstart — the paper's Figure 1/Table 2 example, end to end.

Parses the Cisco and Juniper route-map configurations from Figure 1,
runs Campion's ConfigDiff, and prints the localized differences: the
prefix-list length bug and the community any-vs-all bug, each with
Included/Excluded prefix ranges and the responsible config lines.

Run:  python examples/quickstart.py
"""

from repro.core import config_diff, render_report
from repro.parsers import parse_cisco, parse_juniper
from repro.workloads.figure1 import CISCO_FIGURE1, JUNIPER_FIGURE1


def main() -> int:
    print("== Cisco configuration (Figure 1a) ==")
    print(CISCO_FIGURE1)
    print("== Juniper configuration (Figure 1b) ==")
    print(JUNIPER_FIGURE1)

    cisco = parse_cisco(CISCO_FIGURE1, "cisco_router.cfg")
    juniper = parse_juniper(JUNIPER_FIGURE1, "juniper_router.cfg")

    report = config_diff(cisco, juniper)
    print(render_report(report))

    print()
    print(
        f"Campion found {len(report.semantic)} semantic and "
        f"{len(report.structural)} structural difference(s)."
    )
    return 0 if report.is_equivalent() else 1


if __name__ == "__main__":
    raise SystemExit(main())
