#!/usr/bin/env python3
"""Fleet outlier detection — the n-way extension of Scenario 3.

"All of network A's gateway routers should have identical
access-control policies" (§5.1).  Campion compares pairs; this example
lifts it to a whole fleet: the pairwise difference matrix elects a
medoid reference, every other gateway is compared against it, and the
deviating devices get full Campion localization.

Run:  python examples/gateway_fleet_outliers.py
"""

from repro.core import compare_fleet, render_semantic_difference
from repro.workloads.datacenter import gateway_fleet


def main() -> int:
    devices, expected = gateway_fleet(count=8, outliers=2, rule_count=50, seed=11)
    print(
        f"fleet: {', '.join(d.hostname for d in devices)} "
        f"(mixed {sum(1 for d in devices if d.vendor == 'cisco')} Cisco / "
        f"{sum(1 for d in devices if d.vendor == 'juniper')} Juniper)\n"
    )

    report = compare_fleet(devices)
    print(report.render_summary())

    for hostname in report.outliers:
        print(f"\n=== {hostname} deviates from {report.reference} ===")
        for difference in report.reports[hostname].semantic:
            print(render_semantic_difference(difference))

    print(f"\nseeded deviations: {expected}; detected: {report.outliers}")
    return 0 if not report.outliers else 1


if __name__ == "__main__":
    raise SystemExit(main())
