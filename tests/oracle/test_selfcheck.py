"""Tests for the selfcheck driver: determinism, pass on the pinned seed,
shrinking, and the CLI subcommand's exit-code contract."""

import dataclasses
import random

import pytest

from repro.cli import main
from repro.model import AclAction, AclLine, IpWildcard, Prefix
from repro.oracle import run_selfcheck
from repro.oracle.driver import (
    _random_route_map,
    _render_route_map,
    _shrink_acl_pair,
    _shrink_route_map_pair,
)
from repro.model.acl import Acl


class TestRunSelfcheck:
    def test_pinned_seed_passes(self):
        result = run_selfcheck(seed=0, pairs=9)
        assert result.passed, result.render()
        assert result.samples > 0
        assert result.witnesses > 0
        assert result.localizations > 0

    def test_deterministic(self):
        first = run_selfcheck(seed=3, pairs=6)
        second = run_selfcheck(seed=3, pairs=6)
        assert first.passed and second.passed
        assert (first.differences, first.samples, first.witnesses) == (
            second.differences,
            second.samples,
            second.witnesses,
        )

    def test_progress_callback(self):
        seen = []
        run_selfcheck(seed=0, pairs=3, on_progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_render_mentions_verdict(self):
        result = run_selfcheck(seed=0, pairs=3)
        assert "PASSED" in result.render()


class TestRandomRouteMaps:
    def test_deterministic_by_rng(self):
        assert _random_route_map(random.Random(9), "RM") == _random_route_map(
            random.Random(9), "RM"
        )

    def test_renderable(self):
        route_map = _random_route_map(random.Random(4), "RM")
        rendered = "\n".join(_render_route_map(route_map))
        assert "route-map RM" in rendered


class TestShrinking:
    def _acl(self, count):
        lines = tuple(
            AclLine(
                action=AclAction.PERMIT,
                dst=IpWildcard.from_prefix(Prefix.parse(f"10.{i}.0.0/16")),
            )
            for i in range(count)
        )
        return Acl("F", lines=lines, default_action=AclAction.DENY)

    def test_shrinks_to_failing_core(self):
        acl1, acl2 = self._acl(8), self._acl(8)
        marker = acl1.lines[3]

        def fails(a1, a2):
            return marker in a1.lines

        shrunk1, shrunk2 = _shrink_acl_pair(acl1, acl2, fails)
        assert shrunk1.lines == (marker,)
        assert shrunk2.lines == ()

    def test_route_map_shrink_drops_irrelevant_clauses(self):
        map1 = _random_route_map(random.Random(11), "RM1")
        map2 = _random_route_map(random.Random(12), "RM2")
        if not map1.clauses:
            map1 = dataclasses.replace(
                map1, clauses=_random_route_map(random.Random(13), "X").clauses
            )
        marker = map1.clauses[0].name

        def fails(m1, m2):
            return any(clause.name == marker for clause in m1.clauses)

        shrunk1, shrunk2 = _shrink_route_map_pair(map1, map2, fails)
        assert [clause.name for clause in shrunk1.clauses] == [marker]
        assert shrunk2.clauses == ()


class TestCliSelfcheck:
    def test_exit_zero_on_pass(self, capsys):
        exit_code = main(["selfcheck", "--seed", "0", "--pairs", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "selfcheck PASSED" in captured.out

    def test_progress_flag(self, capsys):
        exit_code = main(
            ["selfcheck", "--seed", "0", "--pairs", "3", "--progress"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "selfcheck 3/3 pairs" in captured.err
