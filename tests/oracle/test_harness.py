"""Tests for the differential harness: clean pairs pass every check, and
seeded tampering with any pipeline stage is detected (the harness itself
must be a sensitive instrument, or a green selfcheck means nothing)."""

import random

import pytest

import repro.oracle.harness as harness_module
from repro.core.header_localize import Localization
from repro.core.semantic_diff import canonical_action_key
from repro.model import (
    Acl,
    AclAction,
    AclLine,
    Action,
    IpWildcard,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from repro.oracle import OracleFailure, check_acl_pair, check_route_map_pair
from repro.workloads.acl_gen import generate_acl_pair
from repro.workloads.figure1 import figure1_devices


def _acl(*lines, default=AclAction.DENY, name="F"):
    return Acl(name, lines=tuple(lines), default_action=default)


def _permit_line(prefix_text):
    return AclLine(
        action=AclAction.PERMIT,
        dst=IpWildcard.from_prefix(Prefix.parse(prefix_text)),
    )


def _route_map(name, clauses, default=Action.DENY):
    return RouteMap(name, clauses=tuple(clauses), default_action=default)


def _prefix_clause(name, action, prefix_range_text, sets=()):
    prefix_list = PrefixList(
        f"PL-{name}",
        (
            PrefixListEntry(
                action=Action.PERMIT, range=PrefixRange.parse(prefix_range_text)
            ),
        ),
    )
    return RouteMapClause(
        name=name,
        action=action,
        matches=(MatchPrefixList(prefix_list),),
        sets=tuple(sets),
    )


class TestCleanPairsPass:
    def test_identical_acls_have_no_differences(self):
        acl = _acl(_permit_line("10.0.0.0/8"))
        stats = check_acl_pair(acl, acl, random.Random(0))
        assert stats.differences == 0
        assert stats.samples > 0

    def test_differing_acls_pass_all_checks(self):
        acl1 = _acl(_permit_line("10.0.0.0/8"))
        acl2 = _acl(_permit_line("10.0.0.0/9"))
        stats = check_acl_pair(acl1, acl2, random.Random(0))
        assert stats.differences > 0
        assert stats.witnesses == stats.differences

    def test_generated_pair_passes(self):
        pair = generate_acl_pair(rule_count=10, differences=3, seed=5)
        stats = check_acl_pair(
            pair.cisco_acl, pair.juniper_acl, random.Random(5), sample_budget=48
        )
        assert stats.samples > 0

    def test_figure1_maps_pass(self):
        cisco, juniper = figure1_devices()
        stats = check_route_map_pair(
            cisco.route_maps["POL"], juniper.route_maps["POL"], random.Random(0)
        )
        assert stats.differences == 2
        assert stats.localizations > 0

    def test_route_map_pair_with_behavioral_witnesses(self):
        map1 = _route_map(
            "RM1",
            [_prefix_clause("c10", Action.PERMIT, "10.0.0.0/8 : 8-24")],
        )
        map2 = _route_map(
            "RM2",
            [
                _prefix_clause(
                    "c10",
                    Action.PERMIT,
                    "10.0.0.0/8 : 8-24",
                    sets=(SetLocalPref(150),),
                )
            ],
        )
        stats = check_route_map_pair(
            map1, map2, random.Random(0), behavioral=True
        )
        assert stats.differences == 1
        assert stats.witnesses == 1


class TestTamperDetection:
    """Sabotage one pipeline stage; the harness must notice."""

    def _acl_pair(self):
        return (
            _acl(_permit_line("10.0.0.0/8")),
            _acl(_permit_line("10.0.0.0/9")),
        )

    def test_dropped_difference_fails_union_check(self, monkeypatch):
        real = harness_module.semantic_diff_classes

        def tampered(kind, classes1, classes2, *args, **kwargs):
            return real(kind, classes1, classes2, *args, **kwargs)[:-1]

        monkeypatch.setattr(harness_module, "semantic_diff_classes", tampered)
        with pytest.raises(OracleFailure) as excinfo:
            check_acl_pair(*self._acl_pair(), random.Random(0))
        assert excinfo.value.check in (
            "acl-union-vs-naive",
            "acl-union-vs-monolithic",
        )

    def test_widened_difference_fails_union_check(self, monkeypatch):
        real = harness_module.semantic_diff_classes

        def tampered(kind, classes1, classes2, *args, **kwargs):
            differences = real(kind, classes1, classes2, *args, **kwargs)
            if differences:
                # Widen one input set beyond the true disagreement region.
                widened = differences[0]
                object.__setattr__(
                    widened,
                    "input_set",
                    widened.input_set | classes1[0].predicate,
                )
            return differences

        monkeypatch.setattr(harness_module, "semantic_diff_classes", tampered)
        with pytest.raises(OracleFailure):
            check_acl_pair(*self._acl_pair(), random.Random(0))

    def test_wrong_action_key_fails_naive_check(self, monkeypatch):
        # Keying the naive recomputation by identity instead of the
        # canonical key must disagree with SemanticDiff on describe()-equal
        # but __eq__-unequal actions; here we tamper the other direction:
        # make the naive side think everything agrees.
        monkeypatch.setattr(
            harness_module, "canonical_action_key", lambda action: "constant"
        )
        with pytest.raises(OracleFailure) as excinfo:
            check_acl_pair(*self._acl_pair(), random.Random(0))
        assert excinfo.value.check == "acl-union-vs-naive"

    def test_redundant_localization_term_fails_minimality(self, monkeypatch):
        real = harness_module.header_localize

        def tampered(affected, ranges, algebra, to_pred):
            localization = real(affected, ranges, algebra, to_pred)
            if not localization.terms:
                return localization
            # A duplicated term is covered by the union of the rest, so
            # the output is no longer minimal (while still exact).
            return Localization(
                terms=localization.terms + (localization.terms[0],),
                stats=localization.stats,
            )

        monkeypatch.setattr(harness_module, "header_localize", tampered)
        with pytest.raises(OracleFailure) as excinfo:
            check_acl_pair(*self._acl_pair(), random.Random(0))
        assert excinfo.value.check in ("localize-minimal", "localize-exact")

    def test_truncated_localization_fails_exactness(self, monkeypatch):
        real = harness_module.header_localize

        def tampered(affected, ranges, algebra, to_pred):
            localization = real(affected, ranges, algebra, to_pred)
            return Localization(
                terms=localization.terms[:-1], stats=localization.stats
            )

        monkeypatch.setattr(harness_module, "header_localize", tampered)
        with pytest.raises(OracleFailure) as excinfo:
            check_acl_pair(*self._acl_pair(), random.Random(0))
        assert excinfo.value.check == "localize-exact"


class TestNaiveDisagreement:
    def test_matches_semantic_diff_on_figure1(self):
        from repro.core import diff_route_maps
        from repro.encoding import route_map_equivalence_classes
        from repro.encoding.route import RouteSpace

        cisco, juniper = figure1_devices()
        map1, map2 = cisco.route_maps["POL"], juniper.route_maps["POL"]
        space, differences = diff_route_maps(map1, map2)
        union = space.manager.disjoin(d.input_set for d in differences)
        naive = harness_module.naive_disagreement(
            route_map_equivalence_classes(space, map1),
            route_map_equivalence_classes(space, map2),
        )
        assert union == naive
