"""Tests for the brute-force evaluator: dispositions mirror the encoder's
path partition, and sample enumeration hits the boundary corners."""

import random

import pytest

from repro.encoding import RouteSpace, route_map_equivalence_classes
from repro.core.semantic_diff import canonical_action_key
from repro.model import (
    Acl,
    AclAction,
    AclLine,
    Action,
    AsPathList,
    AsPathListEntry,
    Community,
    IpWildcard,
    MatchAsPath,
    MatchPrefixList,
    MatchTag,
    PortRange,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from repro.oracle import (
    PacketSample,
    RouteSample,
    acl_disposition,
    enumerate_packet_samples,
    enumerate_route_samples,
    route_disposition,
    supports_concrete_oracle,
)


def _prefix_list(*texts, action=Action.PERMIT):
    return PrefixList(
        "PL",
        tuple(
            PrefixListEntry(action=action, range=PrefixRange.parse(text))
            for text in texts
        ),
    )


@pytest.fixture()
def sample_map():
    return RouteMap(
        "RM",
        clauses=(
            RouteMapClause(
                name="c10",
                action=Action.PERMIT,
                matches=(MatchPrefixList(_prefix_list("10.0.0.0/8 : 8-24")),),
                sets=(SetLocalPref(150),),
            ),
            RouteMapClause(
                name="c20",
                action=Action.DENY,
                matches=(MatchTag(10),),
            ),
        ),
        default_action=Action.DENY,
    )


class TestRouteDisposition:
    def test_first_match_decides(self, sample_map):
        inside = RouteSample(prefix=Prefix.parse("10.1.0.0/16"))
        disposition = route_disposition(sample_map, inside)
        assert disposition.action is Action.PERMIT
        assert disposition.describe() == "SET LOCAL PREF 150\nACCEPT"

    def test_fallthrough_uses_default(self, sample_map):
        outside = RouteSample(prefix=Prefix.parse("192.168.0.0/16"))
        assert route_disposition(sample_map, outside).action is Action.DENY

    def test_tag_match(self, sample_map):
        tagged = RouteSample(prefix=Prefix.parse("192.168.0.0/16"), tag=10)
        disposition = route_disposition(sample_map, tagged)
        assert disposition.action is Action.DENY

    def test_matches_encoder_partition_on_samples(self, sample_map):
        """The concrete disposition of every sample equals the action of
        the unique BDD equivalence class containing its encoding."""
        space = RouteSpace([sample_map])
        classes = route_map_equivalence_classes(space, sample_map)
        rng = random.Random(7)
        for sample in enumerate_route_samples(space, [sample_map], rng, 40):
            point = space.encode_concrete(
                sample.prefix, sample.communities, sample.tag, sample.protocol
            )
            containing = [
                cls for cls in classes if point.intersects(cls.predicate)
            ]
            assert len(containing) == 1
            assert canonical_action_key(
                containing[0].action
            ) == canonical_action_key(route_disposition(sample_map, sample))


class TestAclDisposition:
    def test_matches_model_evaluation(self):
        acl = Acl(
            "F",
            lines=(
                AclLine(
                    action=AclAction.PERMIT,
                    protocol=6,
                    dst_ports=(PortRange(80, 90),),
                ),
            ),
            default_action=AclAction.DENY,
        )
        hit = PacketSample(src_ip=1, dst_ip=2, protocol=6, dst_port=85)
        miss = PacketSample(src_ip=1, dst_ip=2, protocol=6, dst_port=91)
        assert acl_disposition(acl, hit) is AclAction.PERMIT
        assert acl_disposition(acl, miss) is AclAction.DENY


class TestSampleEnumeration:
    def test_packet_samples_hit_port_corners(self):
        acl = Acl(
            "F",
            lines=(
                AclLine(
                    action=AclAction.PERMIT,
                    protocol=6,
                    dst_ports=(PortRange(80, 90),),
                ),
            ),
        )
        samples = enumerate_packet_samples([acl], random.Random(0), 200)
        ports = {sample.dst_port for sample in samples}
        # Boundary and off-by-one values must all be reachable.
        assert {79, 80, 90, 91} <= ports

    def test_packet_samples_deterministic(self):
        acl = Acl("F", lines=(AclLine(action=AclAction.PERMIT),))
        first = enumerate_packet_samples([acl], random.Random(3), 50)
        second = enumerate_packet_samples([acl], random.Random(3), 50)
        assert first == second

    def test_route_samples_cover_range_boundaries(self, sample_map):
        space = RouteSpace([sample_map])
        samples = enumerate_route_samples(
            space, [sample_map], random.Random(0), 300
        )
        lengths = {
            sample.prefix.length
            for sample in samples
            if Prefix.parse("10.0.0.0/8").contains_prefix(sample.prefix)
        }
        # The range is 8-24: both ends and the off-by-one must appear.
        assert {8, 24, 25} <= lengths

    def test_route_samples_use_universe_communities(self):
        route_map = RouteMap(
            "RM",
            clauses=(
                RouteMapClause(
                    name="c",
                    action=Action.PERMIT,
                    matches=(),
                    sets=(),
                ),
            ),
        )
        space = RouteSpace([route_map])
        samples = enumerate_route_samples(
            space, [route_map], random.Random(0), 30
        )
        for sample in samples:
            assert all(c in set(space.communities) for c in sample.communities)


class TestSupportsConcreteOracle:
    def test_as_path_match_excluded(self):
        as_map = RouteMap(
            "RM",
            clauses=(
                RouteMapClause(
                    name="c",
                    action=Action.PERMIT,
                    matches=(
                        MatchAsPath(
                            AsPathList(
                                "AP", (AsPathListEntry(Action.PERMIT, "_65000_"),)
                            )
                        ),
                    ),
                ),
            ),
        )
        assert not supports_concrete_oracle(as_map)

    def test_plain_map_included(self, sample_map):
        assert supports_concrete_oracle(sample_map)
