"""Tests for dialect detection and file loading."""

import pytest

from repro.model import ConfigError
from repro.parsers import detect_dialect, load_config, parse_config
from repro.workloads.figure1 import CISCO_FIGURE1, JUNIPER_FIGURE1


class TestDetect:
    def test_detects_cisco(self):
        assert detect_dialect(CISCO_FIGURE1) == "cisco"

    def test_detects_juniper(self):
        assert detect_dialect(JUNIPER_FIGURE1) == "juniper"

    def test_short_cisco_snippet(self):
        assert detect_dialect("ip route 10.0.0.0 255.0.0.0 1.1.1.1\n") == "cisco"

    def test_braces_imply_juniper(self):
        assert detect_dialect("foo {\n bar;\n}\n") == "juniper"

    def test_undetectable_raises(self):
        with pytest.raises(ConfigError):
            detect_dialect("just some words\n")


class TestParseConfig:
    def test_auto_dispatch(self):
        device = parse_config(CISCO_FIGURE1)
        assert device.vendor == "cisco"
        device = parse_config(JUNIPER_FIGURE1)
        assert device.vendor == "juniper"

    def test_explicit_dialect(self):
        device = parse_config(CISCO_FIGURE1, dialect="cisco")
        assert device.vendor == "cisco"

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("x", dialect="vyos")


class TestLoadConfig:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "router.cfg"
        path.write_text(CISCO_FIGURE1)
        device = load_config(path)
        assert device.hostname == "cisco_router"
        assert device.filename == str(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_config(tmp_path / "absent.cfg")


class TestAristaAlias:
    def test_arista_parses_via_ios_grammar(self):
        device = parse_config(CISCO_FIGURE1, dialect="arista")
        assert device.vendor == "arista"
        assert "POL" in device.route_maps

    def test_arista_pair_comparable_with_juniper(self):
        from repro.core import config_diff

        arista = parse_config(CISCO_FIGURE1, "a.cfg", dialect="arista")
        juniper = parse_config(JUNIPER_FIGURE1, "j.cfg", dialect="juniper")
        report = config_diff(arista, juniper)
        assert len(report.semantic) == 2  # the Table 2 differences
