"""Tests for the Cisco IOS parser."""

import pytest

from repro.model import AclAction, Action, Community, Prefix, PrefixRange, ip_to_int
from repro.parsers import parse_cisco


class TestHostnameAndInterfaces:
    def test_hostname(self):
        device = parse_cisco("hostname r1\n")
        assert device.hostname == "r1"
        assert device.vendor == "cisco"

    def test_interface_address_and_subnet(self):
        device = parse_cisco(
            "interface GigabitEthernet0/0\n"
            " ip address 10.0.0.5 255.255.255.0\n"
            "!\n"
        )
        interface = device.interfaces["GigabitEthernet0/0"]
        assert interface.address.network == ip_to_int("10.0.0.5")  # host kept
        assert str(interface.subnet()) == "10.0.0.0/24"  # subnet masked

    def test_interface_options(self):
        device = parse_cisco(
            "interface Ethernet1\n"
            " description uplink to spine\n"
            " ip address 10.0.0.1 255.255.255.252\n"
            " ip access-group FILTER in\n"
            " ip access-group EGRESS out\n"
            " shutdown\n"
            "!\n"
        )
        interface = device.interfaces["Ethernet1"]
        assert interface.description == "uplink to spine"
        assert interface.acl_in == "FILTER"
        assert interface.acl_out == "EGRESS"
        assert interface.shutdown

    def test_interface_source_span(self):
        device = parse_cisco(
            "hostname r1\n!\ninterface E1\n ip address 10.0.0.1 255.255.255.0\n!\n"
        )
        span = device.interfaces["E1"].source
        assert span.start_line == 3
        assert "interface E1" in span.render()


class TestStaticRoutes:
    def test_basic_route(self):
        device = parse_cisco("ip route 10.1.1.2 255.255.255.254 10.2.2.2\n")
        route = device.static_routes[0]
        assert str(route.prefix) == "10.1.1.2/31"
        assert route.next_hop == ip_to_int("10.2.2.2")
        assert route.admin_distance == 1
        assert route.tag is None

    def test_distance_and_tag(self):
        device = parse_cisco("ip route 10.0.0.0 255.0.0.0 1.2.3.4 200 tag 77\n")
        route = device.static_routes[0]
        assert route.admin_distance == 200
        assert route.tag == 77

    def test_null0_normalizes_to_discard(self):
        device = parse_cisco("ip route 10.0.0.0 255.0.0.0 Null0\n")
        route = device.static_routes[0]
        assert route.next_hop is None
        assert route.interface == "discard"

    def test_source_span_is_the_line(self):
        device = parse_cisco("hostname x\nip route 10.0.0.0 255.0.0.0 1.1.1.1\n")
        assert device.static_routes[0].source.start_line == 2


class TestPrefixLists:
    def test_le_gives_range(self):
        device = parse_cisco("ip prefix-list NETS permit 10.9.0.0/16 le 32\n")
        entry = device.prefix_lists["NETS"].entries[0]
        assert entry.range == PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 32)

    def test_exact_without_modifiers(self):
        device = parse_cisco("ip prefix-list NETS permit 10.9.0.0/16\n")
        entry = device.prefix_lists["NETS"].entries[0]
        assert entry.range == PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 16)

    def test_ge_alone_extends_to_32(self):
        device = parse_cisco("ip prefix-list NETS permit 10.0.0.0/8 ge 24\n")
        entry = device.prefix_lists["NETS"].entries[0]
        assert (entry.range.low, entry.range.high) == (24, 32)

    def test_ge_and_le(self):
        device = parse_cisco("ip prefix-list NETS permit 10.0.0.0/8 ge 16 le 24\n")
        entry = device.prefix_lists["NETS"].entries[0]
        assert (entry.range.low, entry.range.high) == (16, 24)

    def test_seq_ignored(self):
        device = parse_cisco("ip prefix-list NETS seq 5 permit 10.0.0.0/8\n")
        assert len(device.prefix_lists["NETS"].entries) == 1

    def test_deny_entries(self):
        device = parse_cisco(
            "ip prefix-list L deny 10.0.0.0/8 le 32\n"
            "ip prefix-list L permit 0.0.0.0/0 le 32\n"
        )
        entries = device.prefix_lists["L"].entries
        assert entries[0].action is Action.DENY
        assert entries[1].action is Action.PERMIT

    def test_entries_keep_definition_order(self):
        device = parse_cisco(
            "ip prefix-list L permit 10.0.0.0/8\nip prefix-list L permit 11.0.0.0/8\n"
        )
        networks = [e.range.prefix for e in device.prefix_lists["L"].entries]
        assert networks == [Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")]


class TestCommunityLists:
    def test_standard_entries_disjoin(self):
        device = parse_cisco(
            "ip community-list standard COMM permit 10:10\n"
            "ip community-list standard COMM permit 10:11\n"
        )
        entries = device.community_lists["COMM"].entries
        assert len(entries) == 2
        assert entries[0].communities == frozenset({Community.parse("10:10")})

    def test_standard_multi_community_conjoins(self):
        device = parse_cisco("ip community-list standard C permit 1:1 2:2\n")
        entry = device.community_lists["C"].entries[0]
        assert entry.communities == frozenset(
            {Community.parse("1:1"), Community.parse("2:2")}
        )

    def test_expanded_is_regex(self):
        device = parse_cisco("ip community-list expanded C permit _52:1[0-9]_\n")
        entry = device.community_lists["C"].entries[0]
        assert entry.regex == "_52:1[0-9]_"

    def test_numbered_form(self):
        device = parse_cisco("ip community-list 10 permit 1:1\n")
        assert "10" in device.community_lists


class TestAsPathLists:
    def test_entry(self):
        device = parse_cisco("ip as-path access-list 10 permit _100_\n")
        entry = device.as_path_lists["10"].entries[0]
        assert entry.action is Action.PERMIT
        assert entry.regex == "_100_"


class TestAcls:
    def test_numbered_acl(self):
        device = parse_cisco("access-list 100 permit tcp any host 1.2.3.4 eq 80\n")
        acl = device.acls["100"]
        line = acl.lines[0]
        assert line.action is AclAction.PERMIT
        assert line.protocol == 6
        assert line.dst.matches(ip_to_int("1.2.3.4"))
        assert not line.dst.matches(ip_to_int("1.2.3.5"))
        assert line.dst_ports[0].low == 80

    def test_named_extended_acl(self):
        device = parse_cisco(
            "ip access-list extended F\n"
            " permit udp 10.0.0.0 0.0.255.255 any eq domain\n"
            " deny ip any any\n"
            "!\n"
        )
        acl = device.acls["F"]
        assert len(acl.lines) == 2
        assert acl.lines[0].protocol == 17
        assert acl.lines[0].dst_ports[0].low == 53
        assert acl.lines[1].action is AclAction.DENY

    def test_sequence_numbers_and_ipv4_keyword(self):
        device = parse_cisco(
            "ip access-list extended F\n"
            " 2299 deny ipv4 9.140.0.0 0.0.1.255 any\n"
            "!\n"
        )
        line = device.acls["F"].lines[0]
        assert line.action is AclAction.DENY
        assert line.protocol is None
        assert line.src.matches(ip_to_int("9.140.1.255"))
        assert not line.src.matches(ip_to_int("9.140.2.0"))

    def test_port_operators(self):
        device = parse_cisco(
            "ip access-list extended F\n"
            " permit tcp any any range 1000 2000\n"
            " permit tcp any any gt 1023\n"
            " permit tcp any any lt 512\n"
            " permit tcp any any neq 80\n"
            "!\n"
        )
        lines = device.acls["F"].lines
        assert (lines[0].dst_ports[0].low, lines[0].dst_ports[0].high) == (1000, 2000)
        assert lines[1].dst_ports[0].low == 1024
        assert lines[2].dst_ports[0].high == 511
        assert len(lines[3].dst_ports) == 2  # below and above 80

    def test_icmp_type(self):
        device = parse_cisco(
            "ip access-list extended F\n permit icmp any any echo\n!\n"
        )
        assert device.acls["F"].lines[0].icmp_type == 8

    def test_remark_skipped(self):
        device = parse_cisco(
            "ip access-list extended F\n remark comment\n permit ip any any\n!\n"
        )
        assert len(device.acls["F"].lines) == 1


class TestRouteMaps:
    def test_clauses_sorted_by_sequence(self):
        device = parse_cisco(
            "route-map P permit 20\n"
            "route-map P deny 10\n"
        )
        clauses = device.route_maps["P"].clauses
        assert clauses[0].action is Action.DENY
        assert clauses[1].action is Action.PERMIT

    def test_default_action_is_deny(self):
        device = parse_cisco("route-map P permit 10\n")
        assert device.route_maps["P"].default_action is Action.DENY

    def test_match_prefix_list_both_syntaxes(self):
        text = (
            "ip prefix-list NETS permit 10.0.0.0/8\n"
            "route-map A deny 10\n"
            " match ip address NETS\n"
            "route-map B deny 10\n"
            " match ip address prefix-list NETS\n"
        )
        device = parse_cisco(text)
        for name in ("A", "B"):
            match = device.route_maps[name].clauses[0].matches[0]
            assert match.prefix_list.name == "NETS"
            assert len(match.prefix_list.entries) == 1

    def test_match_resolution_is_late(self):
        """Lists defined after the route map still resolve."""
        text = (
            "route-map P deny 10\n"
            " match ip address NETS\n"
            "ip prefix-list NETS permit 10.0.0.0/8\n"
        )
        device = parse_cisco(text)
        match = device.route_maps["P"].clauses[0].matches[0]
        assert len(match.prefix_list.entries) == 1

    def test_set_actions(self):
        text = (
            "route-map P permit 10\n"
            " set local-preference 30\n"
            " set metric 77\n"
            " set community 1:1 2:2 additive\n"
            " set ip next-hop 1.2.3.4\n"
            " set as-path prepend 100 100\n"
            " set tag 9\n"
        )
        device = parse_cisco(text)
        sets = device.route_maps["P"].clauses[0].sets
        kinds = {type(s).__name__ for s in sets}
        assert kinds == {
            "SetLocalPref",
            "SetMed",
            "SetCommunities",
            "SetNextHop",
            "SetAsPathPrepend",
            "SetTag",
        }
        community_set = next(s for s in sets if type(s).__name__ == "SetCommunities")
        assert community_set.additive

    def test_match_community_and_as_path_and_tag(self):
        text = (
            "ip community-list standard C permit 1:1\n"
            "ip as-path access-list 7 permit _100_\n"
            "route-map P permit 10\n"
            " match community C\n"
            " match as-path 7\n"
            " match tag 5\n"
        )
        device = parse_cisco(text)
        matches = device.route_maps["P"].clauses[0].matches
        assert len(matches) == 3


class TestBgp:
    CONFIG = (
        "router bgp 65000\n"
        " bgp router-id 1.1.1.1\n"
        " bgp default local-preference 150\n"
        " neighbor 10.0.0.1 remote-as 65001\n"
        " neighbor 10.0.0.1 description spine one\n"
        " neighbor 10.0.0.1 route-map IN in\n"
        " neighbor 10.0.0.1 route-map OUT out\n"
        " neighbor 10.0.0.1 send-community\n"
        " neighbor 10.0.0.2 remote-as 65000\n"
        " neighbor 10.0.0.2 route-reflector-client\n"
        " neighbor 10.0.0.2 next-hop-self\n"
        " neighbor 10.0.0.2 update-source Loopback0\n"
        " redistribute static route-map REDIST metric 5\n"
        " distance bgp 21 201 201\n"
        "!\n"
    )

    def test_process(self):
        device = parse_cisco(self.CONFIG)
        assert device.bgp.asn == 65000
        assert device.bgp.router_id == ip_to_int("1.1.1.1")
        assert device.bgp.default_local_pref == 150

    def test_neighbors(self):
        device = parse_cisco(self.CONFIG)
        neighbors = device.bgp.neighbor_map()
        first = neighbors[ip_to_int("10.0.0.1")]
        assert first.remote_as == 65001
        assert first.description == "spine one"
        assert first.import_policy == "IN"
        assert first.export_policy == "OUT"
        assert first.send_community
        second = neighbors[ip_to_int("10.0.0.2")]
        assert second.route_reflector_client
        assert second.next_hop_self
        assert second.update_source == "Loopback0"
        assert not second.send_community

    def test_redistribution(self):
        device = parse_cisco(self.CONFIG)
        redistribution = device.bgp.redistributions[0]
        assert redistribution.from_protocol == "static"
        assert redistribution.route_map == "REDIST"
        assert redistribution.metric == 5

    def test_distance(self):
        device = parse_cisco(self.CONFIG)
        assert device.admin_distances["ebgp"] == 21
        assert device.admin_distances["ibgp"] == 201


class TestOspf:
    CONFIG = (
        "interface Ethernet1\n"
        " ip address 10.0.1.1 255.255.255.0\n"
        " ip ospf cost 42\n"
        " ip ospf hello-interval 5\n"
        "!\n"
        "interface Ethernet2\n"
        " ip address 10.0.2.1 255.255.255.0\n"
        "!\n"
        "interface Ethernet3\n"
        " ip address 172.16.0.1 255.255.255.0\n"
        "!\n"
        "router ospf 1\n"
        " router-id 9.9.9.9\n"
        " network 10.0.1.0 0.0.0.255 area 0\n"
        " network 10.0.2.0 0.0.0.255 area 1\n"
        " passive-interface Ethernet2\n"
        " redistribute static subnets route-map R metric 10 metric-type 1\n"
        " auto-cost reference-bandwidth 100000\n"
        " distance 115\n"
        "!\n"
    )

    def test_interface_membership_by_network_statement(self):
        device = parse_cisco(self.CONFIG)
        interfaces = device.ospf.interface_map()
        assert set(interfaces) == {"Ethernet1", "Ethernet2"}
        assert interfaces["Ethernet1"].area == 0
        assert interfaces["Ethernet2"].area == 1

    def test_interface_attributes(self):
        device = parse_cisco(self.CONFIG)
        first = device.ospf.interface_map()["Ethernet1"]
        assert first.cost == 42
        assert first.hello_interval == 5
        second = device.ospf.interface_map()["Ethernet2"]
        assert second.passive

    def test_process_attributes(self):
        device = parse_cisco(self.CONFIG)
        assert device.ospf.router_id == ip_to_int("9.9.9.9")
        assert device.ospf.reference_bandwidth == 100_000 * 1_000_000
        assert device.admin_distances["ospf"] == 115

    def test_redistribution(self):
        device = parse_cisco(self.CONFIG)
        redistribution = device.ospf.redistributions[0]
        assert redistribution.from_protocol == "static"
        assert redistribution.route_map == "R"
        assert redistribution.metric == 10
        assert redistribution.metric_type == 1


class TestRobustness:
    def test_unsupported_lines_warn_not_fail(self):
        device = parse_cisco("banner motd hello\nntp server 1.2.3.4\n")
        assert device.hostname == "cisco-router"

    def test_raw_lines_preserved(self):
        text = "hostname r1\nip route 10.0.0.0 255.0.0.0 1.1.1.1\n"
        device = parse_cisco(text)
        assert device.raw_lines == ("hostname r1", "ip route 10.0.0.0 255.0.0.0 1.1.1.1")

    def test_malformed_line_skipped(self):
        device = parse_cisco("ip route 10.0.0.0\nhostname ok\n")
        assert device.hostname == "ok"
        assert not device.static_routes


class TestAddressFamilyIdiom:
    """Modern IOS wraps neighbor activation in address-family blocks;
    the flat-v4 subset must parse through it."""

    CONFIG = (
        "router bgp 65000\n"
        " neighbor 10.0.0.1 remote-as 65001\n"
        " address-family ipv4\n"
        "  neighbor 10.0.0.1 activate\n"
        "  neighbor 10.0.0.1 route-map OUT out\n"
        " exit-address-family\n"
        "!\n"
        "route-map OUT permit 10\n"
    )

    def test_neighbor_options_inside_address_family(self):
        device = parse_cisco(self.CONFIG)
        neighbor = device.bgp.neighbor_map()[ip_to_int("10.0.0.1")]
        assert neighbor.remote_as == 65001
        assert neighbor.export_policy == "OUT"
