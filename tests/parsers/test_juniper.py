"""Tests for the Juniper JunOS parser (tree + interpretation)."""

import pytest

from repro.model import AclAction, Action, Community, Prefix, PrefixRange, ip_to_int
from repro.parsers import parse_juniper
from repro.parsers.common import ParseContext
from repro.parsers.juniper import parse_junos_tree


class TestTreeParser:
    def _tree(self, text):
        return parse_junos_tree(text, ParseContext("<t>"))

    def test_nested_blocks(self):
        tree = self._tree("a {\n  b {\n    c d;\n  }\n}\n")
        a = tree.children[0]
        assert a.words == ["a"]
        b = a.children[0]
        assert b.words == ["b"]
        assert b.children[0].words == ["c", "d"]

    def test_line_numbers(self):
        tree = self._tree("a {\n  b c;\n}\n")
        a = tree.children[0]
        assert a.start_line == 1
        assert a.end_line == 3
        assert a.children[0].start_line == 2

    def test_brackets_flatten(self):
        tree = self._tree("community C members [ 1:1 2:2 ];\n")
        statement = tree.children[0]
        assert statement.words == ["community", "C", "members", "1:1", "2:2"]

    def test_quoted_strings(self):
        tree = self._tree('as-path A ".* 100 .*";\n')
        assert tree.children[0].words == ["as-path", "A", ".* 100 .*"]

    def test_hash_comments_stripped(self):
        tree = self._tree("a b; # trailing comment\n# whole line\nc d;\n")
        assert [s.words for s in tree.children] == [["a", "b"], ["c", "d"]]

    def test_block_comments_stripped(self):
        tree = self._tree("a /* inline */ b;\n/* multi\nline */\nc d;\n")
        assert [s.words for s in tree.children] == [["a", "b"], ["c", "d"]]

    def test_child_lookup(self):
        tree = self._tree("x { family inet { address 1.2.3.4/24; } }\n")
        x = tree.children[0]
        family = x.child("family", "inet")
        assert family is not None
        assert family.child("address").words[1] == "1.2.3.4/24"
        assert x.child("nothing") is None


class TestSystemAndInterfaces:
    CONFIG = """\
system {
    host-name core1;
}
interfaces {
    xe-0/0/0 {
        description "uplink";
        unit 0 {
            family inet {
                address 10.0.0.2/24;
                filter {
                    input INBOUND;
                    output OUTBOUND;
                }
            }
        }
    }
    xe-0/0/1 {
        disable;
        unit 0 {
            family inet {
                address 10.0.1.2/24;
            }
        }
    }
}
"""

    def test_hostname(self):
        device = parse_juniper(self.CONFIG)
        assert device.hostname == "core1"
        assert device.vendor == "juniper"

    def test_interface_units(self):
        device = parse_juniper(self.CONFIG)
        interface = device.interfaces["xe-0/0/0.0"]
        assert interface.address.network == ip_to_int("10.0.0.2")
        assert str(interface.subnet()) == "10.0.0.0/24"
        assert interface.description == "uplink"
        assert interface.acl_in == "INBOUND"
        assert interface.acl_out == "OUTBOUND"

    def test_disable(self):
        device = parse_juniper(self.CONFIG)
        assert device.interfaces["xe-0/0/1.0"].shutdown


class TestStaticRoutes:
    CONFIG = """\
routing-options {
    static {
        route 10.1.1.2/31 {
            next-hop 10.2.2.2;
            preference 7;
            tag 55;
        }
        route 10.9.0.0/16 discard;
    }
    router-id 1.1.1.1;
    autonomous-system 65000;
}
"""

    def test_route_attributes(self):
        device = parse_juniper(self.CONFIG)
        route = device.static_routes[0]
        assert str(route.prefix) == "10.1.1.2/31"
        assert route.next_hop == ip_to_int("10.2.2.2")
        assert route.admin_distance == 7
        assert route.tag == 55

    def test_default_preference_is_5(self):
        device = parse_juniper(
            "routing-options { static { route 1.0.0.0/8 { next-hop 2.2.2.2; } } }\n"
        )
        assert device.static_routes[0].admin_distance == 5

    def test_discard_route(self):
        device = parse_juniper(self.CONFIG)
        route = device.static_routes[1]
        assert route.next_hop is None
        assert route.interface == "discard"


class TestPolicyOptions:
    def test_prefix_list_is_exact(self):
        device = parse_juniper(
            "policy-options { prefix-list NETS { 10.9.0.0/16; 10.100.0.0/16; } }\n"
        )
        entries = device.prefix_lists["NETS"].entries
        assert entries[0].range == PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 16)
        assert all(e.action is Action.PERMIT for e in entries)

    def test_community_members_conjoin(self):
        device = parse_juniper(
            "policy-options { community COMM members [ 10:10 10:11 ]; }\n"
        )
        entry = device.community_lists["COMM"].entries[0]
        assert entry.communities == frozenset(
            {Community.parse("10:10"), Community.parse("10:11")}
        )

    def test_community_regex_member(self):
        device = parse_juniper(
            'policy-options { community C members "^52:1[0-5]$"; }\n'
        )
        entry = device.community_lists["C"].entries[0]
        assert entry.regex == "^52:1[0-5]$"

    def test_as_path(self):
        device = parse_juniper('policy-options { as-path A ".* 100 .*"; }\n')
        assert device.as_path_lists["A"].entries[0].regex == ".* 100 .*"


class TestPolicyStatements:
    CONFIG = """\
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
    }
    community COMM members [ 10:10 ];
    policy-statement POL {
        term rule1 {
            from {
                prefix-list NETS;
            }
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
"""

    def test_terms_become_clauses(self):
        device = parse_juniper(self.CONFIG)
        route_map = device.route_maps["POL"]
        assert [c.name for c in route_map.clauses] == [
            "term rule1",
            "term rule2",
            "term rule3",
        ]
        assert route_map.clauses[0].action is Action.DENY
        assert route_map.clauses[2].action is Action.PERMIT

    def test_fall_through_is_accept(self):
        device = parse_juniper(self.CONFIG)
        assert device.route_maps["POL"].default_action is Action.PERMIT

    def test_inline_from(self):
        device = parse_juniper(self.CONFIG)
        rule2 = device.route_maps["POL"].clauses[1]
        assert len(rule2.matches) == 1
        assert rule2.matches[0].community_list.name == "COMM"

    def test_sets(self):
        device = parse_juniper(self.CONFIG)
        rule3 = device.route_maps["POL"].clauses[2]
        assert rule3.sets[0].value == 30

    def test_term_source_spans_whole_term(self):
        device = parse_juniper(self.CONFIG)
        rule3 = device.route_maps["POL"].clauses[2]
        rendered = rule3.source.render()
        assert "term rule3" in rendered and "local-preference 30" in rendered

    @pytest.mark.parametrize(
        "modifier,expected",
        [
            ("exact", (16, 16)),
            ("orlonger", (16, 32)),
            ("longer", (17, 32)),
            ("upto /24", (16, 24)),
            ("prefix-length-range /20-/24", (20, 24)),
        ],
    )
    def test_route_filter_modifiers(self, modifier, expected):
        config = (
            "policy-options { policy-statement P { term t { from { "
            f"route-filter 10.9.0.0/16 {modifier}; "
            "} then accept; } } }\n"
        )
        device = parse_juniper(config)
        match = device.route_maps["P"].clauses[0].matches[0]
        entry = match.prefix_list.entries[0]
        assert (entry.range.low, entry.range.high) == expected

    def test_multiple_prefix_conditions_disjoin(self):
        """JunOS ORs prefix-lists/route-filters within one from block."""
        config = """\
policy-options {
    prefix-list A { 10.0.0.0/8; }
    policy-statement P {
        term t {
            from {
                prefix-list A;
                route-filter 11.0.0.0/8 orlonger;
            }
            then accept;
        }
    }
}
"""
        device = parse_juniper(config)
        matches = device.route_maps["P"].clauses[0].matches
        assert len(matches) == 1
        merged = matches[0].prefix_list
        assert len(merged.entries) == 2
        assert merged.permits(Prefix.parse("10.0.0.0/8"))
        assert merged.permits(Prefix.parse("11.5.0.0/16"))

    def test_community_set_action(self):
        config = """\
policy-options {
    community TAG members 5:5;
    policy-statement P {
        term t {
            then {
                community add TAG;
                accept;
            }
        }
    }
}
"""
        device = parse_juniper(config)
        set_action = device.route_maps["P"].clauses[0].sets[0]
        assert set_action.communities == frozenset({Community.parse("5:5")})
        assert set_action.additive

    def test_term_without_action_is_permit(self):
        config = (
            "policy-options { policy-statement P { term t { "
            "then { local-preference 10; } } } }\n"
        )
        device = parse_juniper(config)
        assert device.route_maps["P"].clauses[0].action is Action.PERMIT


class TestBgp:
    CONFIG = """\
routing-options {
    autonomous-system 65000;
    router-id 1.1.1.1;
}
policy-options {
    policy-statement OUT { term t { then accept; } }
}
protocols {
    bgp {
        group EXTERNAL {
            type external;
            export OUT;
            neighbor 10.0.0.1 {
                peer-as 65001;
                description "spine";
            }
            neighbor 10.0.0.5 {
                peer-as 65002;
                import OUT;
            }
        }
        group CLIENTS {
            type internal;
            cluster 1.2.3.4;
            neighbor 10.0.1.1;
        }
    }
}
"""

    def test_process(self):
        device = parse_juniper(self.CONFIG)
        assert device.bgp.asn == 65000
        assert device.bgp.router_id == ip_to_int("1.1.1.1")

    def test_group_export_inherited(self):
        device = parse_juniper(self.CONFIG)
        neighbor = device.bgp.neighbor_map()[ip_to_int("10.0.0.1")]
        assert neighbor.export_policy == "OUT"
        assert neighbor.remote_as == 65001
        assert neighbor.description == "spine"

    def test_neighbor_import_overrides(self):
        device = parse_juniper(self.CONFIG)
        neighbor = device.bgp.neighbor_map()[ip_to_int("10.0.0.5")]
        assert neighbor.import_policy == "OUT"

    def test_cluster_marks_reflector_clients(self):
        device = parse_juniper(self.CONFIG)
        client = device.bgp.neighbor_map()[ip_to_int("10.0.1.1")]
        assert client.route_reflector_client
        assert client.remote_as == 65000  # iBGP defaults to own AS

    def test_send_community_default_true(self):
        device = parse_juniper(self.CONFIG)
        assert all(n.send_community for n in device.bgp.neighbors)


class TestOspf:
    CONFIG = """\
protocols {
    ospf {
        reference-bandwidth 100g;
        area 0.0.0.0 {
            interface xe-0/0/0.0 {
                metric 42;
                hello-interval 5;
            }
            interface xe-0/0/1.0 {
                passive;
            }
        }
        area 0.0.0.1 {
            interface xe-0/0/2.0;
        }
    }
}
"""

    def test_interfaces_and_areas(self):
        device = parse_juniper(self.CONFIG)
        interfaces = device.ospf.interface_map()
        assert interfaces["xe-0/0/0.0"].area == 0
        assert interfaces["xe-0/0/0.0"].cost == 42
        assert interfaces["xe-0/0/0.0"].hello_interval == 5
        assert interfaces["xe-0/0/1.0"].passive
        assert interfaces["xe-0/0/2.0"].area == 1

    def test_reference_bandwidth_units(self):
        device = parse_juniper(self.CONFIG)
        assert device.ospf.reference_bandwidth == 100_000_000_000


class TestFirewall:
    CONFIG = """\
firewall {
    family inet {
        filter GUARD {
            term allow_web {
                from {
                    source-address { 172.16.0.0/16; }
                    protocol tcp;
                    destination-port 443;
                }
                then accept;
            }
            term drop_rest {
                then discard;
            }
        }
    }
}
"""

    def test_filter_terms(self):
        device = parse_juniper(self.CONFIG)
        acl = device.acls["GUARD"]
        assert len(acl.lines) == 2
        first = acl.lines[0]
        assert first.action is AclAction.PERMIT
        assert first.protocol == 6
        assert first.dst_ports[0].low == 443
        assert first.src.matches(ip_to_int("172.16.9.9"))
        assert acl.lines[1].action is AclAction.DENY

    def test_default_discard(self):
        device = parse_juniper(self.CONFIG)
        assert device.acls["GUARD"].default_action is AclAction.DENY

    def test_port_ranges(self):
        config = (
            "firewall { family inet { filter F { term t { from { "
            "protocol udp; destination-port 5000-6000; } then accept; } } } }\n"
        )
        device = parse_juniper(config)
        port_range = device.acls["F"].lines[0].dst_ports[0]
        assert (port_range.low, port_range.high) == (5000, 6000)


class TestRobustness:
    def test_unsupported_stanzas_warn_not_fail(self):
        device = parse_juniper("snmp { community public; }\nchassis { }\n")
        assert device.hostname == "juniper-router"

    def test_raw_lines_preserved(self):
        text = "system {\n    host-name r1;\n}\n"
        device = parse_juniper(text)
        assert device.raw_lines[1] == "    host-name r1;"
