"""Property-based fuzzing of the render→parse round trip.

For randomly generated devices (route maps over random prefix/community
lists, static routes, BGP sessions), rendering to a dialect and parsing
back must be ConfigDiff-equivalent.  This cross-validates parser,
model, renderer, and the diff engine against each other: a bug in any
one of them shows up as a spurious difference.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import config_diff
from repro.model import (
    Action,
    BgpNeighbor,
    BgpProcess,
    Community,
    CommunityList,
    CommunityListEntry,
    DeviceConfig,
    MatchCommunities,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetCommunities,
    SetLocalPref,
    SetMed,
    StaticRoute,
)
from repro.parsers import parse_cisco, parse_juniper
from repro.render import render_cisco_device, render_juniper_device


def _random_device(seed: int, permit_only: bool) -> DeviceConfig:
    rng = random.Random(seed)
    device = DeviceConfig(hostname=f"fuzz{seed}")

    prefix_lists = []
    for index in range(rng.randint(1, 3)):
        entries = []
        for _ in range(rng.randint(1, 4)):
            length = rng.choice([8, 12, 16, 20, 24])
            network = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
            low = rng.choice([length, min(length + 4, 32)])
            high = rng.choice([low, 32])
            action = (
                Action.PERMIT
                if permit_only or rng.random() < 0.8
                else Action.DENY
            )
            entries.append(
                PrefixListEntry(action, PrefixRange(Prefix(network, length), low, high))
            )
        name = f"PL{index}"
        prefix_lists.append(PrefixList(name, tuple(entries)))
        device.prefix_lists[name] = prefix_lists[-1]

    communities = [Community(65000, v) for v in (10, 11, 20)]
    community_lists = []
    for index in range(rng.randint(0, 2)):
        entries = tuple(
            CommunityListEntry(
                Action.PERMIT,
                frozenset(rng.sample(communities, rng.randint(1, 2))),
            )
            for _ in range(rng.randint(1, 2))
        )
        name = f"CL{index}"
        community_lists.append(CommunityList(name, entries))
        device.community_lists[name] = community_lists[-1]

    clauses = []
    for index in range(rng.randint(1, 4)):
        matches = []
        if rng.random() < 0.8:
            matches.append(MatchPrefixList(rng.choice(prefix_lists)))
        if community_lists and rng.random() < 0.5:
            matches.append(MatchCommunities(rng.choice(community_lists)))
        action = Action.PERMIT if rng.random() < 0.6 else Action.DENY
        sets = []
        if action is Action.PERMIT:
            if rng.random() < 0.5:
                sets.append(SetLocalPref(rng.choice([50, 120, 200])))
            if rng.random() < 0.3:
                sets.append(SetMed(rng.randint(0, 50)))
            if rng.random() < 0.3:
                sets.append(
                    SetCommunities(
                        frozenset({rng.choice(communities)}),
                        additive=rng.random() < 0.5,
                    )
                )
        clauses.append(
            RouteMapClause(f"c{index}", action, tuple(matches), tuple(sets))
        )
    default = Action.PERMIT if rng.random() < 0.5 else Action.DENY
    device.route_maps["POLICY"] = RouteMap("POLICY", tuple(clauses), default_action=default)

    for _ in range(rng.randint(0, 3)):
        length = rng.choice([16, 24])
        network = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
        device.static_routes.append(
            StaticRoute(
                prefix=Prefix(network, length),
                next_hop=rng.getrandbits(32),
                admin_distance=rng.choice([1, 5, 200]),
                tag=rng.choice([None, 7]),
            )
        )

    device.bgp = BgpProcess(
        asn=65000,
        neighbors=(
            BgpNeighbor(
                peer_ip=rng.getrandbits(32),
                remote_as=65001,
                export_policy="POLICY",
                send_community=True,
            ),
        ),
    )
    return device


class TestCiscoRoundTripFuzz:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_device_round_trips(self, seed):
        device = _random_device(seed, permit_only=False)
        text, _ = render_cisco_device(device)
        reparsed = parse_cisco(text, "rt.cfg")
        report = config_diff(device, reparsed)
        assert report.is_equivalent(), (
            seed,
            [(d.class1.step_name, d.class2.step_name) for d in report.semantic],
            [(d.component, d.attribute, d.value1, d.value2) for d in report.structural],
        )


class TestJuniperRoundTripFuzz:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_device_round_trips(self, seed):
        device = _random_device(seed, permit_only=True)
        text, _ = render_juniper_device(device)
        reparsed = parse_juniper(text, "rt.cfg")
        report = config_diff(device, reparsed)
        assert report.is_equivalent(), (
            seed,
            [(d.class1.step_name, d.class2.step_name) for d in report.semantic],
            [(d.component, d.attribute, d.value1, d.value2) for d in report.structural],
        )


class TestCrossDialectFuzz:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_translation_preserves_semantics(self, seed):
        """cisco-rendered and juniper-rendered copies of one model must
        be equivalent to each other."""
        device = _random_device(seed, permit_only=True)
        cisco_text, _ = render_cisco_device(device)
        juniper_text, _ = render_juniper_device(device)
        cisco_parsed = parse_cisco(cisco_text, "c.cfg")
        juniper_parsed = parse_juniper(juniper_text, "j.cfg")
        report = config_diff(cisco_parsed, juniper_parsed)
        assert report.is_equivalent(), (
            seed,
            [(d.class1.step_name, d.class2.step_name) for d in report.semantic],
            [(d.component, d.attribute, d.value1, d.value2) for d in report.structural],
        )
