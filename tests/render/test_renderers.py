"""Round-trip and translation tests for the configuration renderers.

The central property: parse → render → parse is behaviorally equivalent
(ConfigDiff-clean) for same-dialect round trips, and cross-dialect
translations either verify or carry an expressibility warning for every
residual difference.
"""

import random

import pytest

from repro.core import config_diff
from repro.parsers import parse_cisco, parse_juniper
from repro.render import (
    RenderError,
    render_cisco_device,
    render_juniper_device,
    translate,
)
from repro.workloads.acl_gen import random_rules, render_cisco_acl
from repro.workloads.datacenter import _cisco_tor, _juniper_tor
from repro.workloads.figure1 import CISCO_FIGURE1, JUNIPER_FIGURE1
from repro.workloads.university import (
    _CISCO_BORDER,
    _CISCO_CORE,
    _JUNIPER_BORDER,
    _JUNIPER_CORE,
)

CISCO_SOURCES = {
    "figure1": CISCO_FIGURE1,
    "tor": _cisco_tor(4, 2),
    "core": _CISCO_CORE,
    "border": _CISCO_BORDER,
}
JUNIPER_SOURCES = {
    "figure1": JUNIPER_FIGURE1,
    "tor": _juniper_tor(4, 2),
    "core": _JUNIPER_CORE,
    "border": _JUNIPER_BORDER,
}


class TestCiscoRoundTrip:
    @pytest.mark.parametrize("name", sorted(CISCO_SOURCES))
    def test_round_trip_equivalent(self, name):
        device = parse_cisco(CISCO_SOURCES[name], f"{name}.cfg")
        text, warnings = render_cisco_device(device)
        reparsed = parse_cisco(text, f"{name}-rt.cfg")
        report = config_diff(device, reparsed)
        assert report.is_equivalent(), (
            [(d.class1.step_name, d.class2.step_name) for d in report.semantic],
            [(d.component, d.attribute, d.value1, d.value2) for d in report.structural],
        )

    def test_random_acls_round_trip(self):
        rules = random_rules(60, random.Random(5))
        device = parse_cisco(render_cisco_acl("GEN", rules), "gen.cfg")
        text, _ = render_cisco_device(device)
        reparsed = parse_cisco(text, "gen-rt.cfg")
        assert config_diff(device, reparsed).is_equivalent()


class TestJuniperRoundTrip:
    @pytest.mark.parametrize("name", sorted(JUNIPER_SOURCES))
    def test_round_trip_equivalent(self, name):
        device = parse_juniper(JUNIPER_SOURCES[name], f"{name}.cfg")
        text, warnings = render_juniper_device(device)
        reparsed = parse_juniper(text, f"{name}-rt.cfg")
        report = config_diff(device, reparsed)
        assert report.is_equivalent(), (
            [(d.class1.step_name, d.class2.step_name) for d in report.semantic],
            [(d.component, d.attribute, d.value1, d.value2) for d in report.structural],
        )


class TestCrossTranslation:
    @pytest.mark.parametrize("name", ["tor", "border"])
    def test_cisco_to_juniper_verified(self, name):
        device = parse_cisco(CISCO_SOURCES[name], f"{name}.cfg")
        result = translate(device, "juniper")
        assert result.verified, result.report and [
            (d.component, d.attribute) for d in result.report.structural
        ]

    @pytest.mark.parametrize("name", ["tor", "core", "border"])
    def test_juniper_to_cisco_verified(self, name):
        device = parse_juniper(JUNIPER_SOURCES[name], f"{name}.cfg")
        result = translate(device, "cisco")
        assert result.verified

    def test_inexpressible_construct_warned_and_caught(self):
        """send-community=false has no JunOS equivalent: the renderer
        warns and the verification report pinpoints the residue."""
        device = parse_cisco(_CISCO_CORE, "core.cfg")
        result = translate(device, "juniper")
        assert not result.verified
        assert any("send" in warning for warning in result.warnings)
        residues = {d.attribute for d in result.report.structural}
        assert residues == {"send-community"}

    def test_translation_of_buggy_config_stays_buggy(self):
        """Translation preserves semantics — including bugs.  The
        Figure 1 Cisco map translated to JunOS must still differ from
        the (independently buggy) original Juniper config."""
        cisco = parse_cisco(CISCO_FIGURE1, "c.cfg")
        juniper_original = parse_juniper(JUNIPER_FIGURE1, "j.cfg")
        result = translate(cisco, "juniper", verify=False)
        report = config_diff(result.translated, juniper_original)
        # Both Table 2 differences survive translation.  The community
        # bug may split across the expanded any-of terms, so compare at
        # the level of underlying classes: every reported difference
        # lands on the original's rule3/fall-through, and both the
        # prefix-bug and community-bug regions appear.
        assert len(report.semantic) >= 2
        assert {d.class2.step_name for d in report.semantic} == {"term rule3"}
        localized = [
            str(r) for d in report.semantic for r in d.localization.included
        ]
        assert "10.9.0.0/16 : 16-32" in localized  # prefix bug region
        assert "0.0.0.0/0 : 0-32" in localized  # community bug region

    def test_unknown_dialect_rejected(self):
        device = parse_cisco(CISCO_FIGURE1, "c.cfg")
        with pytest.raises(RenderError):
            translate(device, "arista")

    def test_verify_false_skips_report(self):
        device = parse_cisco(CISCO_SOURCES["tor"], "t.cfg")
        result = translate(device, "juniper", verify=False)
        assert result.report is None
        assert not result.verified


class TestRenderErrors:
    def test_deny_prefix_list_entries_rejected_for_junos(self):
        text = (
            "ip prefix-list L deny 10.0.0.0/8 le 32\n"
            "ip prefix-list L permit 0.0.0.0/0 le 32\n"
            "route-map P permit 10\n"
            " match ip address prefix-list L\n"
        )
        device = parse_cisco(text, "t.cfg")
        with pytest.raises(RenderError):
            render_juniper_device(device)

    def test_discontiguous_wildcard_rejected_for_junos(self):
        text = (
            "ip access-list extended F\n"
            " permit ip 10.0.3.0 0.255.0.0 any\n"
            "!\n"
        )
        device = parse_cisco(text, "t.cfg")
        with pytest.raises(RenderError):
            render_juniper_device(device)

    def test_permit_default_acl_rejected(self):
        from repro.model import Acl, AclAction, DeviceConfig

        device = DeviceConfig(hostname="r")
        device.acls["OPEN"] = Acl(name="OPEN", default_action=AclAction.PERMIT)
        with pytest.raises(RenderError):
            render_cisco_device(device)
        with pytest.raises(RenderError):
            render_juniper_device(device)


class TestSyntheticListMaterialization:
    def test_route_filter_lists_become_named_prefix_lists(self):
        """JunOS route-filters have no IOS name; rendering to IOS must
        materialize them as prefix lists."""
        device = parse_juniper(JUNIPER_SOURCES["tor"], "t.cfg")
        text, _ = render_cisco_device(device)
        assert "match ip address prefix-list" in text
        reparsed = parse_cisco(text, "rt.cfg")
        assert config_diff(device, reparsed).is_equivalent()


class TestMoreRenderErrors:
    def test_match_protocol_rejected_for_ios_route_maps(self):
        """IOS selects redistribution sources via ``redistribute``, not
        route-map matches, so a JunOS from-protocol condition cannot
        render."""
        from repro.model import (
            Action,
            DeviceConfig,
            MatchProtocol,
            RouteMap,
            RouteMapClause,
        )

        device = DeviceConfig(hostname="r")
        device.route_maps["P"] = RouteMap(
            "P",
            (RouteMapClause("c", Action.PERMIT, (MatchProtocol("static"),)),),
        )
        with pytest.raises(RenderError):
            render_cisco_device(device)

    def test_multiple_port_operators_rejected_for_ios(self):
        from repro.model import (
            Acl,
            AclAction,
            AclLine,
            DeviceConfig,
            PortRange,
        )

        device = DeviceConfig(hostname="r")
        device.acls["F"] = Acl(
            name="F",
            lines=(
                AclLine(
                    action=AclAction.PERMIT,
                    protocol=6,
                    dst_ports=(PortRange.single(80), PortRange.single(443)),
                ),
            ),
        )
        with pytest.raises(RenderError):
            render_cisco_device(device)

    def test_multi_range_ports_fine_for_junos(self):
        from repro.core import config_diff
        from repro.model import (
            Acl,
            AclAction,
            AclLine,
            DeviceConfig,
            PortRange,
        )

        device = DeviceConfig(hostname="r")
        device.acls["F"] = Acl(
            name="F",
            lines=(
                AclLine(
                    action=AclAction.PERMIT,
                    protocol=6,
                    dst_ports=(PortRange.single(80), PortRange(1000, 2000)),
                ),
            ),
        )
        text, _ = render_juniper_device(device)
        reparsed = parse_juniper(text, "rt.cfg")
        assert config_diff(device, reparsed).is_equivalent()
