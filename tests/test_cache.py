"""Tests for the persistent content-addressed artifact cache."""

import json

import pytest

from repro import cache as cache_module
from repro import perf
from repro.cache import (
    CACHE_DIR_ENV,
    ArtifactCache,
    default_cache_dir,
    resolve_cache_dir,
)
from repro.core import acl_key
from repro.parsers import parse_cisco
from repro.workloads.figure1 import CISCO_FIGURE1


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def _device(hostname="r1"):
    text = CISCO_FIGURE1.replace("hostname cisco_router", f"hostname {hostname}")
    return text, parse_cisco(text, f"{hostname}.cfg")


class TestResolveCacheDir:
    def test_explicit_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(str(tmp_path / "cli")) == tmp_path / "cli"

    def test_environment_beats_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_default_is_cache_home(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert resolve_cache_dir(None) == tmp_path / "xdg" / "campion"
        assert default_cache_dir() == tmp_path / "xdg" / "campion"


class TestDeviceStore:
    def test_roundtrip(self, cache):
        text, device = _device()
        assert cache.get_device(text, "r1.cfg", "auto", False) is None
        cache.put_device(text, "r1.cfg", "auto", False, device)
        cached = cache.get_device(text, "r1.cfg", "auto", False)
        assert cached is not None
        assert cached.hostname == device.hostname
        # Fingerprints were materialized before pickling and ride along.
        assert "_fingerprints" in cached.__dict__
        assert cached.fingerprints == device.fingerprints

    def test_key_covers_text_and_options(self, cache):
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        assert cache.get_device(text + "\n!", "r1.cfg", "auto", False) is None
        assert cache.get_device(text, "r2.cfg", "auto", False) is None
        assert cache.get_device(text, "r1.cfg", "cisco", False) is None
        assert cache.get_device(text, "r1.cfg", "auto", True) is None

    def test_corrupt_entry_degrades_to_miss(self, cache):
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        (entry,) = list(cache._entries("devices"))
        entry.write_bytes(b"not a pickle")
        perf.reset()
        assert cache.get_device(text, "r1.cfg", "auto", False) is None
        counters = perf.snapshot()["counters"]
        assert counters.get("cache.errors", 0) == 1
        # The corrupt file was removed; the store is empty again.
        assert list(cache._entries("devices")) == []


class TestDiffStore:
    KEY = acl_key("fp-a", "fp-b")
    ENTRY = {"count": 2, "semantic": [{"kind": "ACLs"}], "structural": []}

    def test_roundtrip(self, cache):
        assert cache.get_diff(self.KEY) is None
        cache.put_diff(self.KEY, self.ENTRY)
        assert cache.get_diff(self.KEY) == self.ENTRY

    def test_entries_are_json_with_schema_stamps(self, cache):
        cache.put_diff(self.KEY, self.ENTRY)
        (entry,) = list(cache._entries("diffs"))
        payload = json.loads(entry.read_text())
        assert payload["cache_schema"] == cache_module.CACHE_SCHEMA_VERSION
        assert payload["entry"] == self.ENTRY

    def test_stale_schema_rejected_and_deleted(self, cache):
        cache.put_diff(self.KEY, self.ENTRY)
        (entry,) = list(cache._entries("diffs"))
        payload = json.loads(entry.read_text())
        payload["cache_schema"] = -1
        entry.write_text(json.dumps(payload))
        perf.reset()
        assert cache.get_diff(self.KEY) is None
        assert perf.snapshot()["counters"].get("cache.stale", 0) == 1
        assert list(cache._entries("diffs")) == []

    def test_schema_bump_changes_key_digest(self, cache, monkeypatch):
        cache.put_diff(self.KEY, self.ENTRY)
        monkeypatch.setattr(
            cache_module,
            "CACHE_SCHEMA_VERSION",
            cache_module.CACHE_SCHEMA_VERSION + 1,
        )
        # The digest is derived from the schema stamp, so old entries
        # are simply unreachable after a bump.
        assert cache.get_diff(self.KEY) is None

    def test_eviction_bounds_the_store(self, tmp_path):
        small = ArtifactCache(tmp_path / "small", max_entries=3)
        perf.reset()
        for index in range(6):
            small.put_diff(acl_key(f"fp{index}", "x"), {"count": 0})
        assert len(list(small._entries("diffs"))) == 3
        assert perf.snapshot()["counters"].get("cache.evictions", 0) == 3


class TestMaintenance:
    def test_stats_and_clear(self, cache):
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        cache.put_diff(TestDiffStore.KEY, TestDiffStore.ENTRY)
        stats = cache.stats()
        assert stats["stores"]["devices"]["entries"] == 1
        assert stats["stores"]["diffs"]["entries"] == 1
        assert stats["stores"]["devices"]["bytes"] > 0
        assert cache.clear() == 2
        stats = cache.stats()
        assert stats["stores"]["devices"]["entries"] == 0
        assert stats["stores"]["diffs"]["entries"] == 0

    def test_stats_on_missing_root(self, tmp_path):
        stats = ArtifactCache(tmp_path / "nothing-here").stats()
        assert stats["stores"]["devices"] == {"entries": 0, "bytes": 0}


class TestCliCache:
    @pytest.fixture
    def fleet_files(self, tmp_path):
        paths = []
        for name in ("a", "b", "c"):
            text = CISCO_FIGURE1.replace(
                "hostname cisco_router", f"hostname {name}"
            )
            path = tmp_path / f"{name}.cfg"
            path.write_text(text)
            paths.append(str(path))
        return paths

    def _run(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_warm_fleet_run_is_identical_and_hits(
        self, fleet_files, tmp_path, capsys
    ):
        base = ["--cache-dir", str(tmp_path / "cache")]
        cold_code, cold_out, cold_err = self._run(
            base + ["fleet", "--json"] + fleet_files, capsys
        )
        warm_code, warm_out, warm_err = self._run(
            base + ["fleet", "--json"] + fleet_files, capsys
        )
        assert cold_code == warm_code == 0
        assert cold_out == warm_out
        assert "campion: cache: hits=0" in cold_err
        warm_line = [
            line for line in warm_err.splitlines() if "campion: cache:" in line
        ][0]
        assert "misses=0" in warm_line
        hits = int(warm_line.split("hits=")[1].split()[0])
        assert hits > 0

    def test_no_cache_flag_disables_everything(
        self, fleet_files, tmp_path, capsys
    ):
        code, out, err = self._run(
            ["--no-cache", "fleet", "--json"] + fleet_files, capsys
        )
        assert code == 0
        assert "campion: cache:" not in err

    def test_cache_stats_and_clear_subcommand(
        self, fleet_files, tmp_path, capsys
    ):
        base = ["--cache-dir", str(tmp_path / "cache")]
        self._run(base + ["parse", fleet_files[0]], capsys)
        code, out, _ = self._run(base + ["cache", "stats"], capsys)
        assert code == 0
        assert str(tmp_path / "cache") in out
        assert "devices: 1 entry" in out
        code, out, _ = self._run(base + ["cache", "clear"], capsys)
        assert code == 0
        assert "removed 1 artifact" in out
        code, out, _ = self._run(base + ["cache", "stats"], capsys)
        assert "devices: 0 entries" in out

    def test_compare_reuses_cached_parses(self, fleet_files, tmp_path, capsys):
        base = ["--cache-dir", str(tmp_path / "cache")]
        self._run(base + ["compare", fleet_files[0], fleet_files[1]], capsys)
        _, _, err = self._run(
            base + ["compare", fleet_files[0], fleet_files[1]], capsys
        )
        warm_line = [
            line for line in err.splitlines() if "campion: cache:" in line
        ][0]
        assert "misses=0" in warm_line


class TestQuarantine:
    def test_corrupt_entry_moved_to_quarantine(self, cache, capsys):
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        (entry,) = list(cache._entries("devices"))
        entry.write_bytes(b"not a pickle")
        perf.reset()
        assert cache.get_device(text, "r1.cfg", "auto", False) is None
        counters = perf.snapshot()["counters"]
        assert counters.get("cache.quarantined", 0) == 1
        quarantined = list(cache._quarantine_entries())
        assert [path.name for path in quarantined] == [entry.name]
        assert quarantined[0].read_bytes() == b"not a pickle"
        assert "quarantined corrupt entry" in capsys.readouterr().err

    def test_stats_and_clear_cover_quarantine(self, cache):
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        (entry,) = list(cache._entries("devices"))
        entry.write_bytes(b"garbage")
        cache.get_device(text, "r1.cfg", "auto", False)
        stats = cache.stats()
        assert stats["stores"]["quarantine"]["entries"] == 1
        assert cache.clear() == 1
        assert list(cache._quarantine_entries()) == []

    def test_stale_schema_is_deleted_not_quarantined(self, cache, monkeypatch):
        cache.put_diff(TestDiffStore.KEY, TestDiffStore.ENTRY)
        monkeypatch.setattr(
            cache_module, "_schema_stamp", lambda: (999, 999, 999)
        )
        perf.reset()
        assert cache.get_diff(TestDiffStore.KEY) is None
        assert list(cache._quarantine_entries()) == []


class TestLocking:
    def test_write_takes_the_advisory_lock(self, cache):
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        assert (cache.root / ".lock").exists()

    def test_concurrent_writers_keep_entries_readable(self, cache):
        import threading

        text, device = _device()

        def hammer(index):
            for _ in range(5):
                cache.put_device(text, f"r{index}.cfg", "auto", False, device)

        threads = [
            threading.Thread(target=hammer, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(4):
            cached = cache.get_device(text, f"r{index}.cfg", "auto", False)
            assert cached is not None and cached.hostname == device.hostname

    def test_lock_degrades_to_noop_without_fcntl(self, cache, monkeypatch):
        monkeypatch.setattr(cache_module, "fcntl", None)
        text, device = _device()
        cache.put_device(text, "r1.cfg", "auto", False, device)
        assert cache.get_device(text, "r1.cfg", "auto", False) is not None


class TestTenantNamespaces:
    def test_namespaces_are_isolated(self, cache):
        text, device = _device()
        alpha = cache.namespace("alpha")
        beta = cache.namespace("beta")
        alpha.put_device(text, "r1.cfg", "auto", False, device)
        assert alpha.get_device(text, "r1.cfg", "auto", False) is not None
        assert beta.get_device(text, "r1.cfg", "auto", False) is None
        assert cache.get_device(text, "r1.cfg", "auto", False) is None

    def test_namespace_roots_stay_under_tenants_dir(self, cache):
        assert cache.namespace("alpha").root == cache.root / "tenants" / "alpha"

    def test_hostile_tenant_names_are_sanitized(self, cache):
        for name in ("", ".", "..", "../../etc", "a/b\\c", "week nd"):
            namespaced = cache.namespace(name)
            assert cache.root / "tenants" in namespaced.root.parents

    def test_max_entries_carries_into_namespace(self, tmp_path):
        parent = ArtifactCache(tmp_path / "cache", max_entries=7)
        assert parent.namespace("t").max_entries == 7
