"""Tests for the campion CLI."""

import pytest

from repro.cli import main
from repro.workloads.figure1 import (
    CISCO_FIGURE1,
    CISCO_STATIC_SECTION2,
    JUNIPER_FIGURE1,
    JUNIPER_STATIC_SECTION2,
)


@pytest.fixture()
def config_files(tmp_path):
    cisco = tmp_path / "cisco.cfg"
    juniper = tmp_path / "juniper.cfg"
    cisco.write_text(CISCO_FIGURE1)
    juniper.write_text(JUNIPER_FIGURE1)
    return str(cisco), str(juniper)


class TestParse:
    def test_summary(self, config_files, capsys):
        cisco, _ = config_files
        assert main(["parse", cisco]) == 0
        output = capsys.readouterr().out
        assert "cisco_router" in output
        assert "route maps:      1" in output

    def test_explicit_dialect(self, config_files, capsys):
        _, juniper = config_files
        assert main(["--dialect", "juniper", "parse", juniper]) == 0
        assert "juniper_router" in capsys.readouterr().out


class TestCompare:
    def test_differences_exit_code_and_report(self, config_files, capsys):
        cisco, juniper = config_files
        assert main(["compare", cisco, juniper]) == 1
        output = capsys.readouterr().out
        assert "Included Prefixes" in output
        assert "10.9.0.0/16 : 16-32" in output
        assert "parse" in output and "diff" in output  # timing line

    def test_equivalent_exit_zero(self, tmp_path, capsys):
        first = tmp_path / "a.cfg"
        second = tmp_path / "b.cfg"
        first.write_text(CISCO_FIGURE1)
        second.write_text(CISCO_FIGURE1)
        assert main(["compare", str(first), str(second)]) == 0
        assert "behaviorally equivalent" in capsys.readouterr().out


class TestBaseline:
    def test_route_map_counterexample(self, config_files, capsys):
        cisco, juniper = config_files
        assert main(["baseline", cisco, juniper]) == 1
        output = capsys.readouterr().out
        assert "route map POL" in output
        assert "dstIp" in output

    def test_static_counterexample(self, tmp_path, capsys):
        cisco = tmp_path / "c.cfg"
        juniper = tmp_path / "j.cfg"
        cisco.write_text(CISCO_STATIC_SECTION2)
        juniper.write_text(JUNIPER_STATIC_SECTION2)
        assert main(["baseline", str(cisco), str(juniper)]) == 1
        output = capsys.readouterr().out
        assert "static routes:" in output
        assert "10.1.1.2" in output

    def test_no_difference(self, tmp_path, capsys):
        first = tmp_path / "a.cfg"
        second = tmp_path / "b.cfg"
        first.write_text(CISCO_FIGURE1)
        second.write_text(CISCO_FIGURE1)
        assert main(["baseline", str(first), str(second)]) == 0
        assert "no differences" in capsys.readouterr().out


class TestFleet:
    def test_outliers_detected(self, tmp_path, capsys):
        from repro.workloads.acl_gen import random_rules, render_cisco_acl
        import random as _random

        rules = random_rules(20, _random.Random(0))
        paths = []
        for index in range(3):
            path = tmp_path / f"gw{index}.cfg"
            path.write_text(render_cisco_acl("P", rules, hostname=f"gw{index}"))
            paths.append(str(path))
        # corrupt one device: flip the first rule's action
        corrupted = (tmp_path / "gw2.cfg").read_text().replace(
            " permit ", " deny ", 1
        )
        (tmp_path / "gw2.cfg").write_text(corrupted)
        assert main(["fleet"] + paths) == 1
        output = capsys.readouterr().out
        assert "outliers: 1" in output
        assert "gw2" in output

    def test_clean_fleet_exit_zero(self, tmp_path, capsys):
        from repro.workloads.acl_gen import random_rules, render_cisco_acl
        import random as _random

        rules = random_rules(15, _random.Random(1))
        paths = []
        for index in range(3):
            path = tmp_path / f"gw{index}.cfg"
            path.write_text(render_cisco_acl("P", rules, hostname=f"gw{index}"))
            paths.append(str(path))
        assert main(["fleet"] + paths) == 0


class TestExitCodes:
    """The scripting contract: 0 equivalent, 1 differences, 2 usage or
    parse error, 3 partial/degraded — and never a traceback."""

    BROKEN = CISCO_FIGURE1 + "\nroute-map BROKEN permit\n match ip address prefix-list\n"

    def test_missing_file_exits_two(self, capsys):
        assert main(["compare", "nope.cfg", "also-nope.cfg"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("campion: error:")
        assert "nope.cfg" in err
        assert "Traceback" not in err

    def test_empty_file_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.cfg"
        empty.write_text("   \n\n")
        assert main(["parse", str(empty)]) == 2
        assert "empty configuration" in capsys.readouterr().err

    def test_strict_parse_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.cfg"
        bad.write_text(self.BROKEN)
        assert main(["--strict", "parse", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "parse error" in err and "Traceback" not in err

    def test_lenient_parse_exits_three_with_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "bad.cfg"
        bad.write_text(self.BROKEN)
        assert main(["parse", str(bad)]) == 3
        captured = capsys.readouterr()
        assert "route maps:      1" in captured.out  # healthy stanzas parsed
        assert "error: parse error" in captured.err

    def test_lenient_compare_exits_three(self, tmp_path, capsys):
        first = tmp_path / "a.cfg"
        second = tmp_path / "b.cfg"
        first.write_text(self.BROKEN)
        second.write_text(
            self.BROKEN.replace("hostname cisco_router", "hostname other")
        )
        assert main(["compare", str(first), str(second)]) == 3
        assert "lenient parsing" in capsys.readouterr().out

    def test_node_limit_exits_three(self, config_files, capsys):
        cisco, juniper = config_files
        assert main(["compare", "--node-limit", "50", cisco, juniper]) == 3
        assert "analysis aborted" in capsys.readouterr().out

    def test_fleet_duplicate_hostname_exits_two(self, tmp_path, capsys):
        first = tmp_path / "a.cfg"
        second = tmp_path / "b.cfg"
        first.write_text(CISCO_FIGURE1)
        second.write_text(CISCO_FIGURE1)
        assert main(["fleet", str(first), str(second)]) == 2
        err = capsys.readouterr().err
        assert "hostnames must be unique" in err
        assert "cisco_router" in err

    def test_fleet_missing_file_exits_two(self, tmp_path, capsys):
        first = tmp_path / "a.cfg"
        first.write_text(CISCO_FIGURE1)
        assert main(["fleet", str(first), "missing.cfg"]) == 2
        assert "missing.cfg" in capsys.readouterr().err

    def test_fleet_too_few_devices_exits_two(self, config_files, capsys):
        cisco, _ = config_files
        assert main(["fleet", cisco]) == 2
        assert "at least two devices" in capsys.readouterr().err

    def test_fleet_unknown_reference_exits_two(self, config_files, capsys):
        cisco, juniper = config_files
        assert main(["fleet", "--reference", "ghost", cisco, juniper]) == 2
        assert "ghost" in capsys.readouterr().err


class TestTranslate:
    def test_translate_verified(self, tmp_path, capsys):
        from repro.workloads.datacenter import _cisco_tor

        source = tmp_path / "tor.cfg"
        source.write_text(_cisco_tor(1, 2))
        output = tmp_path / "tor-junos.cfg"
        code = main(
            ["translate", str(source), "--target", "juniper", "--output", str(output)]
        )
        assert code == 0
        assert "policy-statement SPINE-OUT" in output.read_text()

    def test_translate_to_stdout(self, config_files, capsys):
        cisco, _ = config_files
        code = main(["translate", cisco, "--target", "juniper"])
        output = capsys.readouterr().out
        assert "policy-statement POL" in output
        assert code in (0, 1)  # send-community may be inexpressible
