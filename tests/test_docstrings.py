"""Documentation coverage: every public item carries a docstring.

Deliverable (e) of the reproduction requires doc comments on every
public item; this test enforces it mechanically so the guarantee cannot
rot.  "Public" means: exported via ``__all__`` (or not underscore-
prefixed) in any module under ``repro``, plus the public methods of
public classes.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

# Dataclass-generated members and dunder noise that need no docstrings.
_EXEMPT_METHODS = {
    "__init__",
    "__repr__",
    "__eq__",
    "__hash__",
    "__lt__",
    "__le__",
    "__gt__",
    "__ge__",
    "__post_init__",
    "__bool__",
    "__len__",
    "__str__",
    "__and__",
    "__or__",
    "__xor__",
    "__invert__",
    "__sub__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_items(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [name for name in vars(module) if not name.startswith("_")]
    for name in names:
        item = getattr(module, name, None)
        if item is None:
            continue
        # Only report items defined in this package (not re-exports of
        # stdlib objects).
        defined_in = getattr(item, "__module__", "") or ""
        if not defined_in.startswith("repro"):
            continue
        yield name, item


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _iter_modules() if not inspect.getdoc(module)
    ]
    assert undocumented == []


def test_every_public_function_and_class_has_a_docstring():
    undocumented = []
    for module in _iter_modules():
        for name, item in _public_items(module):
            if inspect.isfunction(item) or inspect.isclass(item):
                if not inspect.getdoc(item):
                    undocumented.append(f"{module.__name__}.{name}")
    assert sorted(set(undocumented)) == []


def test_public_methods_have_docstrings():
    undocumented = []
    seen = set()
    for module in _iter_modules():
        for name, item in _public_items(module):
            if not inspect.isclass(item) or item in seen:
                continue
            seen.add(item)
            for method_name, method in vars(item).items():
                if method_name.startswith("_") and method_name not in _EXEMPT_METHODS:
                    continue
                if method_name in _EXEMPT_METHODS:
                    continue
                if not (inspect.isfunction(method) or isinstance(method, (classmethod, staticmethod, property))):
                    continue
                target = (
                    method.__func__
                    if isinstance(method, (classmethod, staticmethod))
                    else method.fget
                    if isinstance(method, property)
                    else method
                )
                if target is None or inspect.getdoc(target):
                    continue
                undocumented.append(f"{module.__name__}.{name}.{method_name}")
    assert sorted(set(undocumented)) == []
