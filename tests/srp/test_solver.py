"""Tests for the SRP stable-state solver: transfers, preference,
fixpoints, RIB selection and forwarding."""

import pytest

from repro.model import (
    Action,
    ConcreteRoute,
    Prefix,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    ip_to_int,
)
from repro.srp import (
    BgpEdgeConfig,
    OspfEdgeConfig,
    SolverError,
    SrpNetwork,
    Topology,
    bgp_prefer,
    bgp_transfer,
    ospf_prefer,
    ospf_transfer,
    solve_network,
    solve_protocol,
)


def _line_network(length=3, protocol="bgp"):
    nodes = [f"n{i}" for i in range(length)]
    topology = Topology(nodes=list(nodes))
    for a, b in zip(nodes, nodes[1:]):
        topology.add_bidirectional(a, b)
    network = SrpNetwork(topology=topology)
    for u, v in topology.edges:
        if protocol == "bgp":
            network.bgp_edges[(u, v)] = BgpEdgeConfig(
                sender_asn=int(u[1:]) + 100, next_hop=int(u[1:])
            )
        else:
            network.ospf_edges[(u, v)] = OspfEdgeConfig(cost=1)
    return network, nodes


class TestTopology:
    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Topology(nodes=["a"], edges=[("a", "b")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            Topology(nodes=["a", "b"], edges=[("a", "b"), ("a", "b")])

    def test_in_edges(self):
        topology = Topology(nodes=["a", "b", "c"], edges=[("a", "b"), ("c", "b")])
        assert set(topology.in_edges("b")) == {("a", "b"), ("c", "b")}

    def test_originate_unknown_node_rejected(self):
        network = SrpNetwork(topology=Topology(nodes=["a"]))
        with pytest.raises(ValueError):
            network.originate("zz", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8")))


class TestTransfers:
    def test_bgp_prepends_and_resets_local_pref_on_ebgp(self):
        config = BgpEdgeConfig(sender_asn=7, ebgp=True, receiver_local_pref=100)
        route = ConcreteRoute(
            prefix=Prefix.parse("10.0.0.0/8"), as_path=(1,), local_pref=500
        )
        transferred = bgp_transfer(config, route)
        assert transferred.as_path == (7, 1)
        assert transferred.local_pref == 100

    def test_ibgp_preserves_local_pref_and_path(self):
        config = BgpEdgeConfig(sender_asn=7, ebgp=False)
        route = ConcreteRoute(
            prefix=Prefix.parse("10.0.0.0/8"), as_path=(1,), local_pref=500
        )
        transferred = bgp_transfer(config, route)
        assert transferred.as_path == (1,)
        assert transferred.local_pref == 500

    def test_export_policy_filters(self):
        deny_all = RouteMap("D", (), default_action=Action.DENY)
        config = BgpEdgeConfig(sender_asn=7, export_map=deny_all)
        assert bgp_transfer(config, ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"))) is None

    def test_import_policy_transforms(self):
        lp200 = RouteMap(
            "I",
            (RouteMapClause("c", Action.PERMIT, (), (SetLocalPref(200),)),),
        )
        config = BgpEdgeConfig(sender_asn=7, import_map=lp200)
        transferred = bgp_transfer(config, ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8")))
        assert transferred.local_pref == 200

    def test_send_communities_false_strips(self):
        from repro.model import Community

        config = BgpEdgeConfig(sender_asn=7, send_communities=False)
        route = ConcreteRoute(
            prefix=Prefix.parse("10.0.0.0/8"),
            communities=frozenset({Community.parse("1:1")}),
        )
        assert bgp_transfer(config, route).communities == frozenset()

    def test_non_bgp_route_dropped(self):
        config = BgpEdgeConfig(sender_asn=7)
        assert (
            bgp_transfer(config, ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), protocol="ospf"))
            is None
        )

    def test_ospf_adds_cost(self):
        route = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), protocol="ospf", med=3)
        assert ospf_transfer(OspfEdgeConfig(cost=4), route).med == 7

    def test_ospf_disabled_edge_drops(self):
        route = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), protocol="ospf")
        assert ospf_transfer(OspfEdgeConfig(cost=1, enabled=False), route) is None


class TestPreference:
    def test_bgp_local_pref_dominates(self):
        high = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), local_pref=200, as_path=(1, 2, 3))
        low = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), local_pref=100, as_path=())
        assert bgp_prefer(high, low) is high

    def test_bgp_path_length_tiebreak(self):
        short = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), as_path=(1,))
        long = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), as_path=(1, 2))
        assert bgp_prefer(short, long) is short

    def test_bgp_med_tiebreak(self):
        low_med = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), med=5)
        high_med = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), med=9)
        assert bgp_prefer(low_med, high_med) is low_med

    def test_ospf_cost(self):
        cheap = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), protocol="ospf", med=2)
        dear = ConcreteRoute(prefix=Prefix.parse("10.0.0.0/8"), protocol="ospf", med=5)
        assert ospf_prefer(cheap, dear) is cheap


class TestSolver:
    def test_bgp_propagation_along_line(self):
        network, nodes = _line_network(4)
        network.originate(
            "n0", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/24"), protocol="bgp")
        )
        stable = solve_protocol(network, "bgp")
        assert ("n3", Prefix.parse("10.0.0.0/24")) in stable
        assert len(stable[("n3", Prefix.parse("10.0.0.0/24"))].as_path) == 3

    def test_shortest_as_path_wins_on_ring(self):
        nodes = ["a", "b", "c", "d"]
        topology = Topology(nodes=nodes)
        for pair in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]:
            topology.add_bidirectional(*pair)
        network = SrpNetwork(topology=topology)
        for index, (u, v) in enumerate(topology.edges):
            network.bgp_edges[(u, v)] = BgpEdgeConfig(
                sender_asn=nodes.index(u) + 1, next_hop=nodes.index(u) + 1
            )
        network.originate("a", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/24")))
        stable = solve_protocol(network, "bgp")
        # b and d are one hop from a; c is two hops either way.
        assert len(stable[("b", Prefix.parse("10.0.0.0/24"))].as_path) == 1
        assert len(stable[("d", Prefix.parse("10.0.0.0/24"))].as_path) == 1
        assert len(stable[("c", Prefix.parse("10.0.0.0/24"))].as_path) == 2

    def test_ospf_shortest_cost_path(self):
        nodes = ["a", "b", "c"]
        topology = Topology(nodes=nodes)
        topology.add_bidirectional("a", "b")
        topology.add_bidirectional("b", "c")
        topology.add_bidirectional("a", "c")
        network = SrpNetwork(topology=topology)
        costs = {("a", "b"): 1, ("b", "c"): 1, ("a", "c"): 10}
        for (u, v), cost in costs.items():
            network.ospf_edges[(u, v)] = OspfEdgeConfig(cost=cost)
            network.ospf_edges[(v, u)] = OspfEdgeConfig(cost=cost)
        network.originate(
            "a", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/24"), protocol="ospf", med=0)
        )
        stable = solve_protocol(network, "ospf")
        # c should reach a via b (cost 2), not the direct cost-10 edge.
        assert stable[("c", Prefix.parse("10.0.0.0/24"))].med == 2

    def test_filtered_destination_unreachable(self):
        network, nodes = _line_network(3)
        deny = RouteMap("D", (), default_action=Action.DENY)
        network.bgp_edges[("n1", "n2")] = BgpEdgeConfig(
            sender_asn=101, export_map=deny
        )
        network.originate("n0", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/24")))
        stable = solve_protocol(network, "bgp")
        assert ("n2", Prefix.parse("10.0.0.0/24")) not in stable

    def test_unknown_protocol_rejected(self):
        network, _ = _line_network(2)
        with pytest.raises(ValueError):
            solve_protocol(network, "rip")


class TestRibAndForwarding:
    def test_admin_distance_selects_rib_winner(self):
        network, nodes = _line_network(2)
        prefix = Prefix.parse("10.0.0.0/24")
        network.originate("n1", ConcreteRoute(prefix=prefix, protocol="static", admin_distance=1))
        network.originate("n0", ConcreteRoute(prefix=prefix, protocol="bgp", admin_distance=20))
        solution = solve_network(network)
        rib = solution.rib("n1")
        assert rib[prefix].protocol == "static"

    def test_forward_uses_longest_prefix_match(self):
        network, nodes = _line_network(2)
        broad = Prefix.parse("10.0.0.0/8")
        narrow = Prefix.parse("10.9.0.0/16")
        network.originate(
            "n0",
            ConcreteRoute(prefix=broad, protocol="static", next_hop=1, admin_distance=1),
        )
        network.originate(
            "n0",
            ConcreteRoute(prefix=narrow, protocol="static", next_hop=2, admin_distance=1),
        )
        solution = solve_network(network)
        inside = solution.forward("n0", ip_to_int("10.9.1.1"))
        outside = solution.forward("n0", ip_to_int("10.1.1.1"))
        assert inside.next_hop == 2
        assert outside.next_hop == 1
        assert solution.forward("n0", ip_to_int("11.0.0.1")) is None

    def test_routes_at_sorted(self):
        network, nodes = _line_network(2)
        network.originate(
            "n0", ConcreteRoute(prefix=Prefix.parse("10.1.0.0/24"), protocol="static")
        )
        network.originate(
            "n0", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/24"), protocol="static")
        )
        solution = solve_network(network)
        prefixes = [str(r.prefix) for r in solution.routes_at("n0")]
        assert prefixes == ["10.0.0.0/24", "10.1.0.0/24"]
