"""Empirical validation of Theorem 3.3 (soundness of modular checking).

Randomized harness: build a network, copy it under a renaming
isomorphism, check local equivalence (via Campion's own SemanticDiff on
each edge's policies), solve both, and compare routing solutions.  Then
mutate one edge and check that the violation is detected — and that the
mutations which change behavior indeed change the solutions.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    Action,
    Community,
    ConcreteRoute,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from repro.srp import (
    BgpEdgeConfig,
    OspfEdgeConfig,
    SrpNetwork,
    Topology,
    check_local_equivalence,
    same_routing_solutions,
    sample_routes,
    solve_network,
)


from repro.workloads.srp_random import random_network as _random_network
from repro.workloads.srp_random import renamed_copy as _renamed_copy


class TestTheoremHolds:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_locally_equivalent_networks_have_same_solutions(self, seed):
        network = _random_network(seed)
        copy, iso = _renamed_copy(network)
        violations = check_local_equivalence(network, copy, iso)
        assert violations == []
        equal, explanation = same_routing_solutions(network, copy, iso)
        assert equal, explanation

    def test_identity_copy(self):
        network = _random_network(7)
        copy, iso = _renamed_copy(network)
        assert check_local_equivalence(network, copy, iso) == []


class TestViolationsDetected:
    def test_policy_mutation_detected(self):
        network = _random_network(11)
        copy, iso = _renamed_copy(network)
        edge = network.topology.edges[0]
        mapped = (iso[edge[0]], iso[edge[1]])
        old = copy.bgp_edges[mapped]
        deny = RouteMap("DENY", (), default_action=Action.DENY)
        copy.bgp_edges[mapped] = BgpEdgeConfig(
            sender_asn=old.sender_asn,
            next_hop=old.next_hop,
            export_map=deny,
            import_map=old.import_map,
        )
        violations = check_local_equivalence(network, copy, iso)
        assert any(v.protocol == "bgp" and v.edge == edge for v in violations)

    def test_cost_mutation_detected(self):
        network = _random_network(13)
        copy, iso = _renamed_copy(network)
        edge = network.topology.edges[1]
        mapped = (iso[edge[0]], iso[edge[1]])
        old = copy.ospf_edges[mapped]
        copy.ospf_edges[mapped] = OspfEdgeConfig(cost=old.cost + 5)
        violations = check_local_equivalence(network, copy, iso)
        assert any(v.protocol == "ospf" and v.edge == edge for v in violations)

    def test_origination_mutation_detected(self):
        network = _random_network(17)
        copy, iso = _renamed_copy(network)
        extra_node = copy.topology.nodes[0]
        copy.originate(
            extra_node, ConcreteRoute(prefix=Prefix.parse("203.0.113.0/24"))
        )
        violations = check_local_equivalence(network, copy, iso)
        assert any(v.protocol == "origination" for v in violations)

    def test_behavioral_mutation_changes_solutions(self):
        """The contrapositive direction on a concrete example: a deny-all
        export on the destination's only outbound edges empties everyone
        else's routes."""
        nodes = ["a", "b", "c"]
        topology = Topology(nodes=nodes)
        topology.add_bidirectional("a", "b")
        topology.add_bidirectional("b", "c")
        network = SrpNetwork(topology=topology)
        for u, v in topology.edges:
            network.bgp_edges[(u, v)] = BgpEdgeConfig(sender_asn=nodes.index(u) + 1)
        network.originate("a", ConcreteRoute(prefix=Prefix.parse("10.0.0.0/24")))
        copy, iso = _renamed_copy(network)
        deny = RouteMap("DENY", (), default_action=Action.DENY)
        copy.bgp_edges[("x-a", "x-b")] = BgpEdgeConfig(sender_asn=1, export_map=deny)
        equal, _ = same_routing_solutions(network, copy, iso)
        assert not equal

    def test_bad_isomorphism_rejected(self):
        network = _random_network(19)
        copy, iso = _renamed_copy(network)
        bad_iso = dict(iso)
        nodes = network.topology.nodes
        bad_iso[nodes[0]], bad_iso[nodes[1]] = bad_iso[nodes[1]], bad_iso[nodes[0]]
        with pytest.raises(ValueError):
            check_local_equivalence(network, copy, bad_iso)


class TestSampleRoutes:
    def test_sampled_routes_are_valid(self):
        rng = random.Random(0)
        routes = sample_routes(rng, 20, communities=[Community.parse("1:1")])
        assert len(routes) == 20
        for route in routes:
            assert 8 <= route.prefix.length <= 32
            assert route.protocol == "bgp"


class TestUnstableInstances:
    def test_dispute_wheel_oscillates_symmetrically(self):
        """Seed 426 builds a dispute wheel (no stable solution).  The
        theorem's hypothesis excludes such instances, but local
        equivalence still forces identical dynamics: both isomorphic
        copies oscillate, which same_routing_solutions reports as equal
        behavior."""
        network = _random_network(426)
        copy, iso = _renamed_copy(network)
        assert check_local_equivalence(network, copy, iso) == []
        equal, explanation = same_routing_solutions(network, copy, iso)
        assert equal
        assert "oscillate" in explanation

    def test_oscillation_vs_stable_is_a_difference(self):
        """Breaking the wheel on one side only must read as inequality."""
        from repro.srp.solver import SolverError, solve_network

        network = _random_network(426)
        with pytest.raises(SolverError):
            solve_network(network)
        copy, iso = _renamed_copy(network)
        # Sever the wheel in the copy: drop the lp-150 import policy.
        for edge, config in list(copy.bgp_edges.items()):
            if config.import_map is not None:
                copy.bgp_edges[edge] = BgpEdgeConfig(
                    sender_asn=config.sender_asn,
                    next_hop=config.next_hop,
                    export_map=config.export_map,
                    import_map=None,
                )
        try:
            solve_network(copy)
        except SolverError:
            pytest.skip("copy still oscillates; gadget not severed by this edit")
        equal, explanation = same_routing_solutions(network, copy, iso)
        assert not equal
        assert "oscillates" in explanation
