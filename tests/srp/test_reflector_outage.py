"""Integration test: the §5.1 Scenario 2 route-reflector outage,
executable on the SRP simulator and caught by Campion statically."""

import pytest

from examples.route_reflector_outage import (
    _CISCO_REFLECTOR,
    _JUNIPER_REFLECTOR_BUGGY,
    SERVICE_PREFIX,
    _build_fabric,
)
from repro.core import config_diff
from repro.parsers import parse_cisco, parse_juniper
from repro.srp import solve_network


class TestFabricBehavior:
    def test_correct_reflector_prefers_primary(self):
        solution = solve_network(_build_fabric(primary_pref=120, backup_pref=115))
        for tor in ("tor1", "tor2"):
            route = solution.routes_at(tor)[0]
            assert route.next_hop == 1  # primary border
            assert route.local_pref == 120

    def test_mistranslated_reflector_flips_egress_fabric_wide(self):
        solution = solve_network(_build_fabric(primary_pref=110, backup_pref=115))
        for tor in ("tor1", "tor2"):
            route = solution.routes_at(tor)[0]
            assert route.next_hop == 2  # backup border: the outage
            assert route.local_pref == 115

    def test_prefix_reaches_all_clients_either_way(self):
        for primary_pref in (120, 110):
            solution = solve_network(
                _build_fabric(primary_pref=primary_pref, backup_pref=115)
            )
            for tor in ("tor1", "tor2"):
                routes = solution.routes_at(tor)
                assert [r.prefix for r in routes] == [SERVICE_PREFIX], (
                    "the outage is a silent egress flip, not a blackhole"
                )


class TestStaticDetection:
    def test_campion_catches_the_translation_bug(self):
        old = parse_cisco(_CISCO_REFLECTOR, "old.cfg")
        new = parse_juniper(_JUNIPER_REFLECTOR_BUGGY, "new.cfg")
        report = config_diff(old, new)
        primary_diffs = [
            d for d in report.semantic if d.class1.policy_name == "FROM-PRIMARY"
        ]
        assert len(primary_diffs) == 1
        action1, action2 = primary_diffs[0].action_pair()
        assert "120" in action1 and "110" in action2

    def test_backup_session_policy_is_clean(self):
        old = parse_cisco(_CISCO_REFLECTOR, "old.cfg")
        new = parse_juniper(_JUNIPER_REFLECTOR_BUGGY, "new.cfg")
        report = config_diff(old, new)
        backup_diffs = [
            d for d in report.semantic if d.class1.policy_name == "FROM-BACKUP"
        ]
        assert backup_diffs == []

    def test_reflector_client_attribute_preserved(self):
        old = parse_cisco(_CISCO_REFLECTOR, "old.cfg")
        new = parse_juniper(_JUNIPER_REFLECTOR_BUGGY, "new.cfg")
        report = config_diff(old, new)
        assert not any(
            d.attribute == "route-reflector-client" for d in report.structural
        )
