"""Every example script must run and produce its expected output.

Examples are a first-class deliverable; running them as subprocesses
keeps them honest against API drift.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

# (script, expected exit code, snippets that must appear on stdout)
CASES = [
    ("quickstart.py", 1, ["Included Prefixes", "10.9.0.0/16 : 16-32", "semantic"]),
    (
        "backup_router_audit.py",
        1,
        ["Auditing", "behaviorally equivalent", "difference(s)"],
    ),
    ("router_replacement.py", 1, ["approved:", "BLOCKED", "route-reflector"]),
    ("acl_gateway_check.py", 1, ["Campion (all differences", "Minesweeper-style"]),
    ("theorem_validation.py", 0, ["Theorem 3.3", "flagged=True"]),
    ("gateway_fleet_outliers.py", 1, ["fleet:", "outliers"]),
    ("translate_and_verify.py", 0, ["EQUIVALENT", "DIFFERS", "send"]),
    (
        "route_reflector_outage.py",
        0,
        ["via primary border", "via backup border", "caught before deployment: True"],
    ),
]


@pytest.mark.parametrize("script,expected_code,snippets", CASES, ids=lambda c: str(c))
def test_example_runs(script, expected_code, snippets):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == expected_code, result.stderr[-2000:]
    for snippet in snippets:
        assert snippet in result.stdout, (
            f"{script}: expected {snippet!r} in output;\n{result.stdout[:1500]}"
        )


def test_all_examples_are_covered():
    """New example scripts must be added to CASES."""
    scripts = {
        path.name
        for path in EXAMPLES.glob("*.py")
        if path.name != "__init__.py"
    }
    assert scripts == {case[0] for case in CASES}
