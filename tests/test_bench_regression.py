"""Unit tests for the CI regression guard (benchmarks/check_bench_regression.py)."""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "check_bench_regression.py"
)


@pytest.fixture()
def guard():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression_under_test", _MODULE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def dirs(tmp_path):
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    return baselines, results


def _write(directory, name, payload):
    (directory / name).write_text(json.dumps(payload))


def _run(guard, baselines, results):
    return guard.main(
        [
            "--baselines-dir",
            str(baselines),
            "--results-dir",
            str(results),
            "--artifacts",
            "BENCH_localize.json",
        ]
    )


class TestWorkloadScaleGuard:
    def test_scale_mismatch_is_refused(self, guard, dirs, capsys):
        baselines, results = dirs
        _write(
            baselines,
            "BENCH_localize.json",
            {"collect_speedup": 10.0, "workload_scale": "full"},
        )
        _write(
            results,
            "BENCH_localize.json",
            {"collect_speedup": 10.0, "workload_scale": "smoke"},
        )
        assert _run(guard, baselines, results) == 1
        assert "workload_scale mismatch" in capsys.readouterr().err

    def test_matching_scales_compare_normally(self, guard, dirs):
        baselines, results = dirs
        _write(
            baselines,
            "BENCH_localize.json",
            {"collect_speedup": 10.0, "workload_scale": "smoke"},
        )
        _write(
            results,
            "BENCH_localize.json",
            {"collect_speedup": 9.0, "workload_scale": "smoke"},
        )
        assert _run(guard, baselines, results) == 0

    def test_matching_scales_still_catch_regressions(self, guard, dirs, capsys):
        baselines, results = dirs
        _write(
            baselines,
            "BENCH_localize.json",
            {"collect_speedup": 10.0, "workload_scale": "smoke"},
        )
        _write(
            results,
            "BENCH_localize.json",
            {"collect_speedup": 1.0, "workload_scale": "smoke"},
        )
        assert _run(guard, baselines, results) == 1
        assert "regressed" in capsys.readouterr().err
