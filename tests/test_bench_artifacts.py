"""Unit tests for the benchmark artifact writer (benchmarks/bench_artifacts.py)."""

import importlib.util
import json
import os
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "bench_artifacts.py"
)


@pytest.fixture()
def artifacts(tmp_path, monkeypatch):
    """The bench_artifacts module, redirected into a scratch repo layout."""
    spec = importlib.util.spec_from_file_location(
        "bench_artifacts_under_test", _MODULE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path / "benchmarks" / "results")
    (tmp_path / "benchmarks").mkdir()
    return module


def _read_root(module, name: str) -> dict:
    return json.loads((module.REPO_ROOT / name).read_text())


class TestWriteArtifact:
    def test_first_write_creates_results_file_and_root_link(self, artifacts):
        path = artifacts.write_artifact("BENCH_x.json", {"speedup": 2.0}, "smoke")
        assert path == artifacts.RESULTS_DIR / "BENCH_x.json"
        assert json.loads(path.read_text()) == {
            "speedup": 2.0,
            "workload_scale": "smoke",
        }
        root_link = artifacts.REPO_ROOT / "BENCH_x.json"
        assert root_link.is_symlink()
        assert os.readlink(root_link) == os.path.join(
            "benchmarks", "results", "BENCH_x.json"
        )
        assert _read_root(artifacts, "BENCH_x.json") == {
            "speedup": 2.0,
            "workload_scale": "smoke",
        }

    def test_rerun_over_existing_symlink_is_idempotent(self, artifacts):
        artifacts.write_artifact("BENCH_x.json", {"speedup": 2.0}, "smoke")
        artifacts.write_artifact("BENCH_x.json", {"speedup": 3.0}, "full")
        root_link = artifacts.REPO_ROOT / "BENCH_x.json"
        assert root_link.is_symlink()
        assert _read_root(artifacts, "BENCH_x.json") == {
            "speedup": 3.0,
            "workload_scale": "full",
        }

    def test_rerun_replaces_stale_regular_file(self, artifacts):
        # A symlink-less filesystem (or an old checkout) left a plain
        # copy at the root; the refresh must replace it, not crash and
        # not let it shadow fresh numbers.
        root_copy = artifacts.REPO_ROOT / "BENCH_x.json"
        root_copy.write_text('{"speedup": 1.0}\n')
        artifacts.write_artifact("BENCH_x.json", {"speedup": 4.0}, "smoke")
        assert root_copy.is_symlink()
        assert _read_root(artifacts, "BENCH_x.json") == {
            "speedup": 4.0,
            "workload_scale": "smoke",
        }

    def test_rerun_repoints_wrong_and_broken_symlinks(self, artifacts):
        root_link = artifacts.REPO_ROOT / "BENCH_x.json"
        os.symlink("nowhere/else.json", root_link)  # broken AND wrong
        artifacts.write_artifact("BENCH_x.json", {"speedup": 5.0}, "smoke")
        assert os.readlink(root_link) == os.path.join(
            "benchmarks", "results", "BENCH_x.json"
        )
        assert _read_root(artifacts, "BENCH_x.json") == {
            "speedup": 5.0,
            "workload_scale": "smoke",
        }

    def test_leftover_scratch_file_is_swept(self, artifacts):
        # A crash between scratch creation and the rename leaves the
        # temporary name behind; the next run must clean it up.
        scratch = artifacts.REPO_ROOT / "BENCH_x.json.tmp"
        scratch.write_text("junk")
        artifacts.write_artifact("BENCH_x.json", {"speedup": 6.0}, "full")
        assert not scratch.exists()
        assert _read_root(artifacts, "BENCH_x.json") == {
            "speedup": 6.0,
            "workload_scale": "full",
        }

    def test_single_serialization_sorted_and_newline_terminated(self, artifacts):
        path = artifacts.write_artifact("BENCH_x.json", {"b": 1, "a": 2}, "smoke")
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

    def test_workload_scale_is_stamped_without_mutating_caller(self, artifacts):
        payload = {"speedup": 7.0}
        path = artifacts.write_artifact("BENCH_x.json", payload, "full")
        assert json.loads(path.read_text())["workload_scale"] == "full"
        assert payload == {"speedup": 7.0}  # caller's dict untouched

    def test_invalid_workload_scale_is_rejected(self, artifacts):
        with pytest.raises(ValueError, match="workload_scale"):
            artifacts.write_artifact("BENCH_x.json", {}, "medium")
        assert not (artifacts.RESULTS_DIR / "BENCH_x.json").exists()
