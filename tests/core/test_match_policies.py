"""Tests for the MatchPolicies pairing heuristics (§4)."""

import pytest

from repro.core import ComponentKind, match_policies
from repro.core.match_policies import match_ospf_interfaces
from repro.model import (
    Acl,
    BgpNeighbor,
    BgpProcess,
    DeviceConfig,
    Interface,
    OspfRedistribution,
    OspfProcess,
    Prefix,
    Redistribution,
    ip_to_int,
)


def _device(hostname="r"):
    return DeviceConfig(hostname=hostname)


def _neighbor(ip, **kwargs):
    defaults = dict(peer_ip=ip_to_int(ip), remote_as=65001)
    defaults.update(kwargs)
    return BgpNeighbor(**defaults)


class TestBgpRouteMapPairing:
    def test_same_neighbor_policies_paired(self):
        d1 = _device("a")
        d1.bgp = BgpProcess(
            asn=1,
            neighbors=(
                _neighbor("10.0.0.1", export_policy="OUT-C", import_policy="IN-C"),
            ),
        )
        d2 = _device("b")
        d2.bgp = BgpProcess(
            asn=1,
            neighbors=(
                _neighbor("10.0.0.1", export_policy="OUT-J", import_policy="IN-J"),
            ),
        )
        pairing = match_policies(d1, d2)
        contexts = {(p.name1, p.name2, p.context) for p in pairing.route_map_pairs}
        assert ("OUT-C", "OUT-J", "export for neighbor 10.0.0.1") in contexts
        assert ("IN-C", "IN-J", "import for neighbor 10.0.0.1") in contexts

    def test_missing_neighbor_reported(self):
        d1 = _device("a")
        d1.bgp = BgpProcess(asn=1, neighbors=(_neighbor("10.0.0.1"), _neighbor("10.0.0.9")))
        d2 = _device("b")
        d2.bgp = BgpProcess(asn=1, neighbors=(_neighbor("10.0.0.1"),))
        pairing = match_policies(d1, d2)
        unmatched = [u for u in pairing.unmatched if "10.0.0.9" in u.name]
        assert len(unmatched) == 1
        assert unmatched[0].present_on == "a"
        assert unmatched[0].missing_on == "b"

    def test_one_sided_policy_not_paired(self):
        """Policy presence asymmetry surfaces via StructuralDiff instead."""
        d1 = _device("a")
        d1.bgp = BgpProcess(asn=1, neighbors=(_neighbor("10.0.0.1", export_policy="X"),))
        d2 = _device("b")
        d2.bgp = BgpProcess(asn=1, neighbors=(_neighbor("10.0.0.1"),))
        pairing = match_policies(d1, d2)
        assert pairing.route_map_pairs == []

    def test_no_bgp_no_pairs(self):
        pairing = match_policies(_device("a"), _device("b"))
        assert pairing.route_map_pairs == []
        assert pairing.unmatched == []


class TestRedistributionPairing:
    def test_bgp_redistribution_pairs_by_protocol(self):
        d1 = _device("a")
        d1.bgp = BgpProcess(
            asn=1, redistributions=(Redistribution("static", route_map="RC"),)
        )
        d2 = _device("b")
        d2.bgp = BgpProcess(
            asn=1, redistributions=(Redistribution("static", route_map="RJ"),)
        )
        pairing = match_policies(d1, d2)
        assert any(
            p.name1 == "RC" and p.name2 == "RJ" and "redistribute static" in p.context
            for p in pairing.route_map_pairs
        )

    def test_ospf_redistribution_pairs(self):
        d1 = _device("a")
        d1.ospf = OspfProcess(
            redistributions=(OspfRedistribution("bgp", route_map="RC"),)
        )
        d2 = _device("b")
        d2.ospf = OspfProcess(
            redistributions=(OspfRedistribution("bgp", route_map="RJ"),)
        )
        pairing = match_policies(d1, d2)
        assert any("into ospf" in p.context for p in pairing.route_map_pairs)


class TestAclPairing:
    def test_same_name_paired(self):
        d1 = _device("a")
        d1.acls["F"] = Acl(name="F")
        d2 = _device("b")
        d2.acls["F"] = Acl(name="F")
        pairing = match_policies(d1, d2)
        assert [(p.name1, p.name2) for p in pairing.acl_pairs] == [("F", "F")]

    def test_one_sided_name_unmatched(self):
        d1 = _device("a")
        d1.acls["ONLY1"] = Acl(name="ONLY1")
        d2 = _device("b")
        pairing = match_policies(d1, d2)
        assert pairing.acl_pairs == []
        unmatched = pairing.unmatched[0]
        assert unmatched.kind is ComponentKind.ACL
        assert unmatched.name == "ONLY1"
        assert unmatched.present_on == "a"


class TestOspfInterfacePairing:
    def test_shared_names_first(self):
        d1 = _device("a")
        d1.interfaces["e0"] = Interface("e0", address=Prefix.parse("10.0.0.1/24"))
        d2 = _device("b")
        d2.interfaces["e0"] = Interface("e0", address=Prefix.parse("10.9.0.1/24"))
        assert match_ospf_interfaces(d1, d2) == {"e0": "e0"}

    def test_subnet_heuristic_for_different_names(self):
        d1 = _device("a")
        d1.interfaces["Ethernet1"] = Interface(
            "Ethernet1", address=Prefix.parse("10.0.0.1/24")
        )
        d2 = _device("b")
        d2.interfaces["xe-0/0/0.0"] = Interface(
            "xe-0/0/0.0", address=Prefix.parse("10.0.0.2/24")
        )
        assert match_ospf_interfaces(d1, d2) == {"Ethernet1": "xe-0/0/0.0"}

    def test_no_subnet_no_pairing(self):
        d1 = _device("a")
        d1.interfaces["Ethernet1"] = Interface("Ethernet1")
        d2 = _device("b")
        d2.interfaces["xe-0/0/0.0"] = Interface(
            "xe-0/0/0.0", address=Prefix.parse("10.0.0.2/24")
        )
        assert match_ospf_interfaces(d1, d2) == {}

    def test_each_interface_claimed_once(self):
        d1 = _device("a")
        d1.interfaces["e1"] = Interface("e1", address=Prefix.parse("10.0.0.1/24"))
        d1.interfaces["e2"] = Interface("e2", address=Prefix.parse("10.0.0.3/24"))
        d2 = _device("b")
        d2.interfaces["x1"] = Interface("x1", address=Prefix.parse("10.0.0.2/24"))
        pairing = match_ospf_interfaces(d1, d2)
        assert len(pairing) == 1
        assert list(pairing.values()) == ["x1"]
