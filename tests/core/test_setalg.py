"""Set-algebra backend equivalence and atom-budget fallback.

The ``atoms`` backend must be observationally identical to the ``bdd``
backend: same differing class pairs, same (hash-consed) overlap BDDs,
same serialized reports after localization.  The property suite drives
both backends over the mutation workloads and asserts exact equality;
the fallback tests exercise the adversarial quadratic-refinement case
where the atoms backend transparently hands the pairing to the pairwise
loop.
"""

import pytest

from repro import perf
from repro.bdd import ATOM_BUDGET_ENV, BddManager
from repro.core import config_diff, report_to_json, semantic_difference_to_dict
from repro.core.results import ComponentKind
from repro.core.semantic_diff import diff_acls, semantic_diff_classes
from repro.core.setalg import (
    BACKEND_ENV,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    AtomsBackend,
    BddBackend,
    FleetAtomsBackend,
    default_backend,
    default_backend_name,
    resolve_backend,
    set_default_backend,
)
from repro.encoding import PacketSpace, acl_equivalence_classes
from repro.encoding.classes import EquivalenceClass
from repro.model.acl import AclAction
from repro.parsers import parse_cisco, parse_juniper
from repro.workloads.acl_gen import generate_acl_pair
from repro.workloads.datacenter import _cisco_tor, _juniper_tor
from repro.workloads.mutation import apply_random_mutation


class TestBackendEquivalence:
    """Property suite: both backends emit byte-identical results."""

    @pytest.mark.parametrize("seed", range(6))
    def test_mutated_tor_config_reports_identical(self, seed):
        original = _cisco_tor(1, 2)
        mutation = apply_random_mutation(original, seed=seed)
        assert mutation is not None
        device1 = parse_cisco(original, "original.cfg")
        device2 = parse_cisco(mutation.text, "mutated.cfg")
        reports = {
            name: report_to_json(config_diff(device1, device2, set_backend=name))
            for name in BACKEND_NAMES
        }
        for name in BACKEND_NAMES[1:]:
            assert reports["bdd"] == reports[name], (name, mutation.description)

    def test_cross_dialect_tor_reports_identical(self):
        device1 = parse_cisco(_cisco_tor(1, 2), "tor1.cfg")
        device2 = parse_juniper(_juniper_tor(1, 2), "tor1.conf")
        reports = {
            name: report_to_json(config_diff(device1, device2, set_backend=name))
            for name in BACKEND_NAMES
        }
        for name in BACKEND_NAMES[1:]:
            assert reports["bdd"] == reports[name], name

    def test_acl_pair_differences_identical_across_spaces(self):
        # Fresh manager per backend: the comparison has to hold on
        # manager-independent content (serialized rows + satcounts).
        pair = generate_acl_pair(300, differences=6, seed=3)
        serialized = {}
        for name in BACKEND_NAMES:
            space = PacketSpace(manager=BddManager())
            differences = diff_acls(
                pair.cisco_acl, pair.juniper_acl, space=space, set_backend=name
            )[1]
            serialized[name] = [
                dict(
                    semantic_difference_to_dict(difference),
                    satcount=difference.input_set.satcount(),
                )
                for difference in differences
            ]
        assert serialized["bdd"]
        for name in BACKEND_NAMES[1:]:
            assert serialized["bdd"] == serialized[name], name

    def test_shared_manager_yields_identical_nodes(self):
        # Hash-consing makes equal sets the same node, so on one manager
        # the two backends must agree down to BDD node identity.
        pair = generate_acl_pair(120, differences=4, seed=1)
        space = PacketSpace(manager=BddManager())
        classes1 = acl_equivalence_classes(space, pair.cisco_acl)
        classes2 = acl_equivalence_classes(space, pair.juniper_acl)
        results = {
            name: semantic_diff_classes(
                ComponentKind.ACL, classes1, classes2, backend=name
            )
            for name in BACKEND_NAMES
        }
        assert len(results["bdd"]) > 0
        for name in BACKEND_NAMES[1:]:
            assert len(results["bdd"]) == len(results[name]), name
            for from_bdd, from_other in zip(results["bdd"], results[name]):
                assert from_bdd.class1 is from_other.class1
                assert from_bdd.class2 is from_other.class2
                assert from_bdd.input_set.node == from_other.input_set.node


def _cross_partition_classes(manager):
    """Two class lists whose joint refinement is genuinely quadratic.

    Each side partitions on a variable pair the other side never
    mentions, so all 16 cross pairs intersect; alternating actions make
    half of them genuine differences.
    """
    variables = manager.new_vars(4)

    def minterm_classes(pair, policy):
        terms = [manager.true]
        for var in pair:
            terms = [t & ~var for t in terms] + [t & var for t in terms]
        return [
            EquivalenceClass(
                predicate=term,
                action=AclAction.PERMIT if k % 2 == 0 else AclAction.DENY,
                policy_name=policy,
                step_name=f"step{k}",
                index=k,
            )
            for k, term in enumerate(terms)
        ]

    return (
        minterm_classes(variables[:2], "left"),
        minterm_classes(variables[2:], "right"),
    )


class TestAtomBudgetFallback:
    def test_fallback_is_transparent_and_counted(self):
        manager = BddManager()
        classes1, classes2 = _cross_partition_classes(manager)
        backend = AtomsBackend(atom_budget=8)
        before = perf.REGISTRY.counters.get("setalg.atom_budget_fallbacks", 0)
        differences = semantic_diff_classes(
            ComponentKind.ACL, classes1, classes2, backend=backend
        )
        after = perf.REGISTRY.counters.get("setalg.atom_budget_fallbacks", 0)
        assert after == before + 1
        assert backend.notes, "fallback left no diagnostics note"
        assert "exceeded the budget of 8 atoms" in backend.notes[0]
        assert "falling back to the bdd backend" in backend.notes[0]
        expected = semantic_diff_classes(
            ComponentKind.ACL, classes1, classes2, backend="bdd"
        )
        assert len(differences) == len(expected) > 0
        for got, want in zip(differences, expected):
            assert got.class1 is want.class1
            assert got.class2 is want.class2
            assert got.input_set.node == want.input_set.node

    def test_quadratic_pairing_within_budget_needs_no_fallback(self):
        manager = BddManager()
        classes1, classes2 = _cross_partition_classes(manager)
        backend = AtomsBackend(atom_budget=16)
        differences = semantic_diff_classes(
            ComponentKind.ACL, classes1, classes2, backend=backend
        )
        assert not backend.notes
        expected = semantic_diff_classes(
            ComponentKind.ACL, classes1, classes2, backend="bdd"
        )
        assert [
            (d.class1.index, d.class2.index, d.input_set.node)
            for d in differences
        ] == [
            (d.class1.index, d.class2.index, d.input_set.node)
            for d in expected
        ]

    def test_env_var_budget_triggers_fallback(self, monkeypatch):
        monkeypatch.setenv(ATOM_BUDGET_ENV, "8")
        manager = BddManager()
        classes1, classes2 = _cross_partition_classes(manager)
        backend = AtomsBackend()
        semantic_diff_classes(
            ComponentKind.ACL, classes1, classes2, backend=backend
        )
        assert backend.notes


class TestBackendResolution:
    def test_default_is_atoms(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        set_default_backend(None)
        assert DEFAULT_BACKEND == "atoms"
        assert default_backend_name() == "atoms"
        assert isinstance(resolve_backend(None), AtomsBackend)

    def test_name_resolution(self):
        assert isinstance(resolve_backend("bdd"), BddBackend)
        assert isinstance(resolve_backend("atoms"), AtomsBackend)
        # fleet-atoms IS an AtomsBackend per pair; the fleet-level
        # seeding is keyed off the name by compare_fleet.
        fleet = resolve_backend("fleet-atoms")
        assert isinstance(fleet, FleetAtomsBackend)
        assert isinstance(fleet, AtomsBackend)
        assert fleet.name == "fleet-atoms"
        with pytest.raises(ValueError, match="unknown set-algebra backend"):
            resolve_backend("cubes")

    def test_instances_pass_through(self):
        backend = AtomsBackend(atom_budget=5)
        assert resolve_backend(backend) is backend

    def test_env_var_sets_default(self, monkeypatch):
        set_default_backend(None)
        monkeypatch.setenv(BACKEND_ENV, "bdd")
        assert default_backend_name() == "bdd"
        monkeypatch.setenv(BACKEND_ENV, "cubes")
        with pytest.raises(ValueError):
            default_backend_name()

    def test_process_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "atoms")
        set_default_backend("bdd")
        try:
            assert default_backend_name() == "bdd"
        finally:
            set_default_backend(None)

    def test_context_manager_scopes_and_restores(self):
        set_default_backend("bdd")
        try:
            with default_backend("atoms"):
                assert default_backend_name() == "atoms"
            assert default_backend_name() == "bdd"
        finally:
            set_default_backend(None)
