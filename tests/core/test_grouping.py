"""Tests for outputted-vs-reported issue grouping (Table 8's columns)."""

import pytest

from repro.core import diff_route_maps, group_differences
from repro.workloads.figure1 import figure1_devices
from repro.workloads.university import university_network


@pytest.fixture(scope="module")
def network():
    return university_network()


def _diffs(pair, label):
    maps = {**pair.export_maps, **pair.import_maps}
    cisco_name, juniper_name = maps[label]
    _, differences = diff_route_maps(
        pair.cisco.route_maps[cisco_name], pair.juniper.route_maps[juniper_name]
    )
    return differences


class TestTable8Columns:
    """The reproduction of both Table 8(a) columns."""

    @pytest.mark.parametrize(
        "pair_name,label,outputted,reported",
        [
            ("core", "Export 1", 5, 5),
            ("core", "Export 2", 1, 1),
            ("border", "Export 3", 1, 1),
            ("border", "Export 4", 1, 1),
            ("border", "Export 5", 2, 1),
            ("border", "Import", 0, 0),
        ],
    )
    def test_outputted_and_reported(self, network, pair_name, label, outputted, reported):
        pair = getattr(network, pair_name)
        differences = _diffs(pair, label)
        groups = group_differences(differences)
        assert len(differences) == outputted
        assert len(groups) == reported

    def test_export5_group_holds_both_outputs(self, network):
        differences = _diffs(network.border, "Export 5")
        groups = group_differences(differences)
        assert groups[0].outputted == 2
        assert groups[0].differences == list(differences)

    def test_groups_partition_the_differences(self, network):
        differences = _diffs(network.core, "Export 1")
        groups = group_differences(differences)
        regrouped = [d for g in groups for d in g.differences]
        assert sorted(map(id, regrouped)) == sorted(map(id, differences))


class TestAnchoring:
    def test_specific_clause_beats_default(self):
        cisco, juniper = figure1_devices()
        _, differences = diff_route_maps(
            cisco.route_maps["POL"], juniper.route_maps["POL"]
        )
        groups = group_differences(differences)
        # Figure 1: two distinct issues, each anchored at a Cisco deny clause.
        assert len(groups) == 2
        anchors = {g.key[1] for g in groups}
        assert anchors == {"route-map POL deny 10", "route-map POL deny 20"}

    def test_describe_mentions_clause_and_actions(self):
        cisco, juniper = figure1_devices()
        _, differences = diff_route_maps(
            cisco.route_maps["POL"], juniper.route_maps["POL"]
        )
        group = group_differences(differences)[0]
        text = group.describe()
        assert "deny 10" in text
        assert "REJECT" in text

    def test_empty_input(self):
        assert group_differences([]) == []
