"""End-to-end ConfigDiff tests, including failure injection: every
mutation operator applied to a config must be detected against the
original (and identical configs must compare clean)."""

import pytest

from repro.core import COMPONENT_CHECKS, ComponentKind, config_diff
from repro.core.match_policies import PolicyPairing, RouteMapPair
from repro.parsers import parse_cisco, parse_config, parse_juniper
from repro.workloads.datacenter import _cisco_tor, _juniper_tor
from repro.workloads.figure1 import (
    CISCO_FIGURE1,
    figure1_devices,
    section2_static_devices,
)
from repro.workloads.mutation import MUTATION_OPERATORS


class TestFigure1EndToEnd:
    def test_two_semantic_differences(self):
        report = config_diff(*figure1_devices())
        assert len(report.semantic) == 2
        assert all(d.kind is ComponentKind.ROUTE_MAP for d in report.semantic)

    def test_localizations_attached(self):
        report = config_diff(*figure1_devices())
        first = report.semantic[0]
        included = [str(r) for r in first.localization.included]
        excluded = [str(r) for r in first.localization.excluded]
        assert included == ["10.9.0.0/16 : 16-32", "10.100.0.0/16 : 16-32"]
        assert excluded == ["10.9.0.0/16 : 16-16", "10.100.0.0/16 : 16-16"]
        second = report.semantic[1]
        assert [str(r) for r in second.localization.included] == ["0.0.0.0/0 : 0-32"]

    def test_community_example_on_difference2(self):
        report = config_diff(*figure1_devices())
        second = report.semantic[1]
        assert "Community" in second.example
        assert second.example["Community"] in ("10:10", "10:11")

    def test_send_community_structural_diff(self):
        report = config_diff(*figure1_devices())
        assert any(
            d.attribute == "send-community" for d in report.structural
        ), "JunOS sends communities by default; IOS config lacks send-community"


class TestSection2Static:
    def test_table4_presence_difference(self):
        report = config_diff(*section2_static_devices())
        static = [d for d in report.structural if d.kind is ComponentKind.STATIC_ROUTE]
        presence = [d for d in static if d.attribute == "presence"]
        assert len(presence) == 1
        assert "10.1.1.2/31" in presence[0].component
        assert presence[0].value2 is None
        assert "ip route 10.1.1.2" in presence[0].source1.render()


class TestEquivalence:
    def test_identical_cisco_configs(self):
        d1 = parse_cisco(CISCO_FIGURE1, "a.cfg")
        d2 = parse_cisco(CISCO_FIGURE1, "b.cfg")
        report = config_diff(d1, d2)
        assert report.is_equivalent(), [
            (d.class1.step_name, d.class2.step_name) for d in report.semantic
        ]

    def test_clean_tor_pair(self):
        d1 = parse_cisco(_cisco_tor(3, 2), "c.cfg")
        d2 = parse_juniper(_juniper_tor(3, 2), "j.cfg")
        report = config_diff(d1, d2)
        assert report.is_equivalent(), (
            [(d.class1.step_name, d.class2.step_name) for d in report.semantic],
            [(d.component, d.attribute, d.value1, d.value2) for d in report.structural],
        )


# Feature-rich bases so every mutation operator has something to bite on.
_CISCO_RICH = _cisco_tor(5, 2) + (
    "ip route 172.31.0.0 255.255.0.0 10.200.6.1 tag 42\n"
    "interface Ethernet9\n"
    " ip address 10.222.0.1 255.255.255.0\n"
    " ip ospf cost 17\n"
    "!\n"
    "router ospf 1\n"
    " network 10.222.0.0 0.0.0.255 area 0\n"
    "!\n"
    "ip access-list extended EDGE\n"
    " permit tcp any host 10.222.0.9 eq 443\n"
    " deny ip any any\n"
    "!\n"
)

_JUNIPER_RICH = _juniper_tor(5, 2) + (
    "routing-options {\n"
    "    static {\n"
    "        route 172.31.0.0/16 {\n"
    "            next-hop 10.200.6.1;\n"
    "            tag 42;\n"
    "        }\n"
    "    }\n"
    "}\n"
    "protocols {\n"
    "    ospf {\n"
    "        area 0.0.0.0 {\n"
    "            interface xe-0/0/9.0 {\n"
    "                metric 17;\n"
    "            }\n"
    "        }\n"
    "    }\n"
    "}\n"
    "firewall {\n"
    "    family inet {\n"
    "        filter EDGE {\n"
    "            term t0 {\n"
    "                from {\n"
    "                    destination-address { 10.222.0.9/32; }\n"
    "                    protocol tcp;\n"
    "                    destination-port 443;\n"
    "                }\n"
    "                then accept;\n"
    "            }\n"
    "            term t1 {\n"
    "                then discard;\n"
    "            }\n"
    "        }\n"
    "    }\n"
    "}\n"
)


class TestFailureInjection:
    """Every mutation operator's output must be flagged by ConfigDiff."""

    @pytest.mark.parametrize(
        "operator", MUTATION_OPERATORS, ids=lambda op: op.__name__
    )
    @pytest.mark.parametrize("dialect", ["cisco", "juniper"])
    def test_mutation_detected(self, operator, dialect):
        import random

        base_text = _CISCO_RICH if dialect == "cisco" else _JUNIPER_RICH
        mutation = None
        for seed in range(10):
            mutation = operator(base_text, random.Random(seed))
            if mutation is not None and mutation.text != base_text:
                break
        if mutation is None:
            pytest.skip(f"{operator.__name__} not applicable to {dialect} template")
        original = parse_config(base_text, "orig.cfg", dialect=dialect)
        mutated = parse_config(mutation.text, "mut.cfg", dialect=dialect)
        report = config_diff(original, mutated)
        assert not report.is_equivalent(), (
            f"{operator.__name__} ({mutation.description}) went undetected"
        )


class TestPairingOverride:
    def test_explicit_pairing_respected(self):
        cisco, juniper = figure1_devices()
        pairing = PolicyPairing(
            route_map_pairs=[RouteMapPair("POL", "POL", "manual pairing")]
        )
        report = config_diff(cisco, juniper, pairing=pairing)
        assert len(report.semantic) == 2
        assert all(d.context == "manual pairing" for d in report.semantic)

    def test_missing_policy_reported_unmatched(self):
        cisco, juniper = figure1_devices()
        pairing = PolicyPairing(
            route_map_pairs=[RouteMapPair("NO-SUCH", "POL", "bad pair")]
        )
        report = config_diff(cisco, juniper, pairing=pairing)
        assert any(u.name == "NO-SUCH" for u in report.unmatched)


class TestTable1:
    def test_component_checks(self):
        assert COMPONENT_CHECKS[ComponentKind.ACL] == "SemanticDiff"
        assert COMPONENT_CHECKS[ComponentKind.ROUTE_MAP] == "SemanticDiff"
        for kind in (
            ComponentKind.STATIC_ROUTE,
            ComponentKind.CONNECTED_ROUTE,
            ComponentKind.BGP_PROPERTY,
            ComponentKind.OSPF_PROPERTY,
            ComponentKind.ADMIN_DISTANCE,
        ):
            assert COMPONENT_CHECKS[kind] == "StructuralDiff"


class TestReportApi:
    def test_counts_and_by_kind(self):
        report = config_diff(*figure1_devices())
        assert report.total_differences() == len(report.semantic) + len(
            report.structural
        ) + len(report.unmatched)
        route_map_differences = report.by_kind(ComponentKind.ROUTE_MAP)
        assert len(route_map_differences) == 2


class TestAsPathIntegration:
    """End-to-end as-path policy comparison through the full pipeline."""

    CISCO = (
        "hostname r1\n"
        "ip as-path access-list 10 permit _100_\n"
        "route-map P deny 10\n"
        " match as-path 10\n"
        "route-map P permit 20\n"
        "router bgp 65000\n"
        " neighbor 10.0.0.1 remote-as 65001\n"
        " neighbor 10.0.0.1 route-map P out\n"
        " neighbor 10.0.0.1 send-community\n"
        "!\n"
    )

    def test_same_regex_equivalent(self):
        juniper = (
            "system { host-name r2; }\n"
            "routing-options { autonomous-system 65000; }\n"
            'policy-options {\n'
            '    as-path BAD "_100_";\n'
            "    policy-statement P {\n"
            "        term t1 { from as-path BAD; then reject; }\n"
            "        term t2 { then accept; }\n"
            "    }\n"
            "}\n"
            "protocols { bgp { group E { type external;\n"
            "    neighbor 10.0.0.1 { peer-as 65001; export P; } } } }\n"
        )
        report = config_diff(
            parse_cisco(self.CISCO, "c.cfg"), parse_config(juniper, "j.cfg")
        )
        route_maps = [d for d in report.semantic]
        assert route_maps == []

    def test_different_regex_flagged(self):
        juniper = (
            "system { host-name r2; }\n"
            "routing-options { autonomous-system 65000; }\n"
            'policy-options {\n'
            '    as-path BAD "_200_";\n'
            "    policy-statement P {\n"
            "        term t1 { from as-path BAD; then reject; }\n"
            "        term t2 { then accept; }\n"
            "    }\n"
            "}\n"
            "protocols { bgp { group E { type external;\n"
            "    neighbor 10.0.0.1 { peer-as 65001; export P; } } } }\n"
        )
        report = config_diff(
            parse_cisco(self.CISCO, "c.cfg"), parse_config(juniper, "j.cfg")
        )
        assert report.semantic, "syntactically different as-path regexes flag"
