"""Fleet-scale shared-atom universe: grouping, folding, seeding.

Covers the three layers of the ``fleet-atoms`` backend:

* :func:`repro.core.grouping.connected_device_groups` — the
  topology-connected groups the atomizer iterates;
* :class:`repro.bdd.fleet_atoms.AtomUniverse` and
  :func:`repro.bdd.fleet_atoms.differing_pair_count` — the fold and the
  bitwise pair counting;
* :class:`repro.core.fleet_atoms.FleetAtomizer` — memo seeding, the
  zero-BDD-apply matrix, the atom-budget fallback, and vector
  memoization.
"""

import pickle
import random

import pytest

from repro import perf
from repro.bdd import ATOM_BUDGET_ENV, AtomBudgetExceeded, BddManager
from repro.bdd.atoms import refine_partitions
from repro.bdd.fleet_atoms import (
    AtomUniverse,
    UniverseCoverageError,
    differing_pair_count,
)
from repro.core.fleet import compare_fleet
from repro.core.serialize import fleet_report_to_dict
from repro.core.fleet_atoms import FleetAtomizer, acl_universe_id
from repro.core.grouping import connected_device_groups
from repro.core.memo import DiffMemo, acl_key, count_entry
from repro.core.parallel import pairwise_count_outcomes
from repro.core.results import ComponentKind
from repro.core.semantic_diff import diff_acls
from repro.core.setalg import canonical_action_key
from repro.encoding import PacketSpace, acl_equivalence_classes
from repro.model import DeviceConfig, Interface, Prefix
from repro.model.acl import Acl
from repro.workloads.acl_gen import random_rules
from repro.workloads.datacenter import gateway_fleet


def _counter(name):
    return perf.REGISTRY.counters.get(name, 0)


def _device(hostname, *subnets, acl=None):
    """A device with one interface per subnet and an optional ACL."""
    device = DeviceConfig(hostname=hostname)
    for index, subnet_text in enumerate(subnets):
        device.interfaces[f"e{index}"] = Interface(
            name=f"e{index}", address=Prefix.parse(subnet_text)
        )
    if acl is not None:
        device.acls[acl.name] = acl
    return device


def _acl(name, rules=12, seed=0):
    rng = random.Random(seed)
    return Acl(name=name, lines=tuple(random_rules(rules, rng)))


def _hostnames(groups):
    return [[device.hostname for device in group] for group in groups]


class TestConnectedDeviceGroups:
    def test_two_lans_make_two_groups(self):
        devices = [
            _device("a1", "10.0.0.1/24"),
            _device("a2", "10.0.0.2/24"),
            _device("b1", "10.1.0.1/24"),
            _device("b2", "10.1.0.2/24"),
        ]
        assert _hostnames(connected_device_groups(devices)) == [
            ["a1", "a2"],
            ["b1", "b2"],
        ]

    def test_chain_connectivity_is_transitive(self):
        # a–b share one subnet, b–c another: one group of three.
        devices = [
            _device("a", "10.0.0.1/24"),
            _device("b", "10.0.0.2/24", "10.1.0.1/24"),
            _device("c", "10.1.0.2/24"),
        ]
        assert _hostnames(connected_device_groups(devices)) == [["a", "b", "c"]]

    def test_isolated_subnet_device_is_a_singleton(self):
        devices = [
            _device("a1", "10.0.0.1/24"),
            _device("a2", "10.0.0.2/24"),
            _device("lone", "172.16.0.1/24"),
        ]
        assert _hostnames(connected_device_groups(devices)) == [
            ["a1", "a2"],
            ["lone"],
        ]

    def test_topology_blind_devices_share_one_group(self):
        # No subnet information at all (pure-ACL configs): grouping has
        # nothing to split on, so it conservatively keeps them together
        # rather than inventing singletons that would skip atomization.
        devices = [DeviceConfig(hostname=name) for name in ("x", "y", "z")]
        assert _hostnames(connected_device_groups(devices)) == [["x", "y", "z"]]

    def test_blind_devices_group_apart_from_subnet_bearing_ones(self):
        devices = [
            _device("a1", "10.0.0.1/24"),
            _device("a2", "10.0.0.2/24"),
            DeviceConfig(hostname="blind1"),
            DeviceConfig(hostname="blind2"),
        ]
        assert _hostnames(connected_device_groups(devices)) == [
            ["a1", "a2"],
            ["blind1", "blind2"],
        ]

    def test_loopback_only_devices_count_as_blind(self):
        # /32 addresses carry no adjacency information, so devices with
        # nothing else are topology-blind and conservatively grouped
        # together (same as interface-less devices).
        devices = [
            _device("a", "10.255.0.1/32"),
            _device("b", "10.255.0.1/32"),
        ]
        assert _hostnames(connected_device_groups(devices)) == [["a", "b"]]


class TestAtomUniverse:
    def _partitions(self, manager, count=3):
        """`count` partitions of the 4-variable space, pairwise distinct."""
        variables = manager.new_vars(4)
        partitions = []
        for index in range(count):
            var = variables[index % len(variables)]
            other = variables[(index + 1) % len(variables)]
            partitions.append(
                [var & other, var & ~other, ~var & other, ~var & ~other]
            )
        return partitions

    def test_two_partition_fold_matches_refine_partitions(self):
        manager = BddManager()
        preds1, preds2 = self._partitions(manager, 2)
        universe = AtomUniverse()
        pid1 = universe.add_partition(preds1)
        pid2 = universe.add_partition(preds2)
        reference = refine_partitions(preds1, preds2)
        assert universe.size == len(reference.atoms)
        # Same intersection structure: class i of side 1 and class j of
        # side 2 share an atom iff their predicates intersect.
        for i, bits1 in enumerate(universe.vector(pid1)):
            for j, bits2 in enumerate(universe.vector(pid2)):
                assert bool(bits1 & bits2) == manager.intersects(
                    preds1[i], preds2[j]
                )

    def test_every_folded_vector_partitions_the_final_atom_set(self):
        manager = BddManager()
        partitions = self._partitions(manager, 3)
        universe = AtomUniverse()
        pids = [universe.add_partition(preds) for preds in partitions]
        assert universe.partitions == 3
        full = universe.all_atoms_mask
        for pid in pids:
            vector = universe.vector(pid)
            union = 0
            for bits in vector:
                assert union & bits == 0  # classes stay disjoint
                union |= bits
            assert union == full  # and cover every atom

    def test_bitsets_agree_with_bdd_intersection_after_remap(self):
        manager = BddManager()
        partitions = self._partitions(manager, 3)
        universe = AtomUniverse()
        pids = [universe.add_partition(preds) for preds in partitions]
        for pid_a, preds_a in zip(pids, partitions):
            for pid_b, preds_b in zip(pids, partitions):
                for i, bits_a in enumerate(universe.vector(pid_a)):
                    for j, bits_b in enumerate(universe.vector(pid_b)):
                        assert bool(bits_a & bits_b) == manager.intersects(
                            preds_a[i], preds_b[j]
                        )

    def test_false_predicates_get_empty_bitsets(self):
        manager = BddManager()
        (var,) = manager.new_vars(1)
        universe = AtomUniverse()
        pid = universe.add_partition([var, ~var, manager.false])
        assert universe.vector(pid)[2] == 0
        assert universe.size == 2

    def test_budget_overrun_raises(self):
        manager = BddManager()
        partitions = self._partitions(manager, 3)
        universe = AtomUniverse(atom_budget=5)
        universe.add_partition(partitions[0])
        with pytest.raises(AtomBudgetExceeded):
            for preds in partitions[1:]:
                universe.add_partition(preds)

    def test_non_covering_partition_raises_coverage_error(self):
        manager = BddManager()
        (var,) = manager.new_vars(1)
        universe = AtomUniverse()
        universe.add_partition([var, ~var])
        with pytest.raises(UniverseCoverageError):
            universe.add_partition([var])  # misses the ~var half


class TestDifferingPairCount:
    def test_matches_brute_force_on_random_partitions(self):
        # Each side's bitsets must partition the atom set (one owner per
        # atom per side) — that invariant is what makes the
        # agreement-mask pruning exact — so assign each atom to a random
        # class per side instead of drawing arbitrary bitsets.
        rng = random.Random(5)
        for _ in range(50):
            width = rng.randint(1, 20)
            n1, n2 = rng.randint(1, 6), rng.randint(1, 6)
            bitsets1 = [0] * n1
            bitsets2 = [0] * n2
            for atom in range(width):
                bitsets1[rng.randrange(n1)] |= 1 << atom
                bitsets2[rng.randrange(n2)] |= 1 << atom
            keys1 = [rng.randint(0, 2) for _ in range(n1)]
            keys2 = [rng.randint(0, 2) for _ in range(n2)]
            expected = sum(
                1
                for b1, k1 in zip(bitsets1, keys1)
                for b2, k2 in zip(bitsets2, keys2)
                if k1 != k2 and b1 & b2
            )
            assert (
                differing_pair_count(bitsets1, keys1, bitsets2, keys2)
                == expected
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_semantic_diff_on_acl_pairs(self, seed):
        acl1 = _acl("A", rules=14, seed=seed)
        acl2 = _acl("B", rules=14, seed=seed + 100)
        space = PacketSpace()
        classes1 = acl_equivalence_classes(space, acl1)
        classes2 = acl_equivalence_classes(space, acl2)
        universe = AtomUniverse()
        pid1 = universe.add_partition([c.predicate for c in classes1])
        pid2 = universe.add_partition([c.predicate for c in classes2])
        count = differing_pair_count(
            universe.vector(pid1),
            [canonical_action_key(c.action) for c in classes1],
            universe.vector(pid2),
            [canonical_action_key(c.action) for c in classes2],
        )
        _, differences = diff_acls(acl1, acl2, space=PacketSpace())
        assert count == len(differences)

    def test_identical_sides_count_zero(self):
        acl = _acl("A", rules=10, seed=2)
        space = PacketSpace()
        classes = acl_equivalence_classes(space, acl)
        universe = AtomUniverse()
        pid = universe.add_partition([c.predicate for c in classes])
        keys = [canonical_action_key(c.action) for c in classes]
        vector = universe.vector(pid)
        assert differing_pair_count(vector, keys, vector, keys) == 0


class TestFleetAtomizerGrouping:
    """Connected-group / atomization interplay."""

    def test_one_universe_per_connected_group(self):
        devices = [
            _device("a1", "10.0.0.1/24", acl=_acl("FILTER", seed=1)),
            _device("a2", "10.0.0.2/24", acl=_acl("FILTER", seed=2)),
            _device("b1", "10.1.0.1/24", acl=_acl("FILTER", seed=3)),
            _device("b2", "10.1.0.2/24", acl=_acl("FILTER", seed=4)),
        ]
        memo = DiffMemo()
        atomizer = FleetAtomizer(devices, memo)
        atomizer.seed()
        assert atomizer.groups_atomized == 2
        assert atomizer.groups_fallback == 0
        assert atomizer.singleton_groups == 0
        assert len(atomizer.universe_sizes) == 2
        # Each group's universe id is content-addressed from ITS ACLs.
        group_a = acl_universe_id(
            [d.fingerprints.acls["FILTER"] for d in devices[:2]]
        )
        group_b = acl_universe_id(
            [d.fingerprints.acls["FILTER"] for d in devices[2:]]
        )
        assert set(atomizer.universe_sizes) == {group_a, group_b}

    def test_singleton_groups_are_skipped(self):
        devices = [
            _device("a1", "10.0.0.1/24", acl=_acl("FILTER", seed=1)),
            _device("a2", "10.0.0.2/24", acl=_acl("FILTER", seed=2)),
            _device("lone", "172.16.0.1/24", acl=_acl("FILTER", seed=3)),
        ]
        memo = DiffMemo()
        atomizer = FleetAtomizer(devices, memo)
        atomizer.seed()
        assert atomizer.singleton_groups == 1
        assert atomizer.groups_atomized == 1
        assert len(atomizer.universe_sizes) == 1
        # The singleton's ACL was never folded anywhere: no memo seed
        # mentions its fingerprint.
        lone_fp = devices[2].fingerprints.acls["FILTER"]
        a1_fp = devices[0].fingerprints.acls["FILTER"]
        assert acl_key(lone_fp, a1_fp) not in memo
        assert acl_key(a1_fp, lone_fp) not in memo

    def test_cross_group_pairs_are_not_seeded(self):
        devices = [
            _device("a1", "10.0.0.1/24", acl=_acl("FILTER", seed=1)),
            _device("a2", "10.0.0.2/24", acl=_acl("FILTER", seed=2)),
            _device("b1", "10.1.0.1/24", acl=_acl("FILTER", seed=3)),
            _device("b2", "10.1.0.2/24", acl=_acl("FILTER", seed=4)),
        ]
        memo = DiffMemo()
        FleetAtomizer(devices, memo).seed()
        intra = acl_key(
            devices[0].fingerprints.acls["FILTER"],
            devices[1].fingerprints.acls["FILTER"],
        )
        cross = acl_key(
            devices[0].fingerprints.acls["FILTER"],
            devices[2].fingerprints.acls["FILTER"],
        )
        assert intra in memo
        assert cross not in memo

    def test_topology_blind_fleet_is_one_universe(self):
        devices, _ = gateway_fleet(count=5, outliers=4, rule_count=10, seed=9)
        memo = DiffMemo()
        atomizer = FleetAtomizer(devices, memo)
        atomizer.seed()
        assert atomizer.groups_atomized == 1
        assert len(atomizer.universe_sizes) == 1


class TestSeededMatrix:
    def test_seeded_counts_match_per_pair_diffs(self):
        devices, _ = gateway_fleet(count=5, outliers=4, rule_count=12, seed=4)
        memo = DiffMemo()
        FleetAtomizer(devices, memo).seed()
        for i, device1 in enumerate(devices):
            for device2 in devices[i + 1 :]:
                for name1, acl1 in device1.acls.items():
                    for name2, acl2 in device2.acls.items():
                        key = acl_key(
                            device1.fingerprints.acls[name1],
                            device2.fingerprints.acls[name2],
                        )
                        entry = memo.get(key)
                        if entry is None:
                            continue  # pairing not matched by heuristics
                        _, differences = diff_acls(
                            acl1, acl2, space=PacketSpace()
                        )
                        assert entry["count"] == len(differences)

    def test_matrix_replays_with_zero_bdd_applies(self):
        devices, _ = gateway_fleet(count=6, outliers=5, rule_count=12, seed=7)
        memo = DiffMemo()
        FleetAtomizer(devices, memo).seed()
        pairs = [
            (devices[i], devices[j])
            for i in range(len(devices))
            for j in range(i + 1, len(devices))
        ]
        before = _counter("bdd.applies")
        outcomes = pairwise_count_outcomes(
            pairs, workers=1, memo=memo, set_backend="fleet-atoms"
        )
        assert _counter("bdd.applies") == before  # the acceptance criterion
        assert all(outcome.ok for outcome in outcomes)

    def test_reports_identical_to_other_backends(self):
        devices, _ = gateway_fleet(count=5, outliers=3, rule_count=10, seed=2)
        reports = {
            name: fleet_report_to_dict(
                compare_fleet(devices, workers=1, set_backend=name)
            )
            for name in ("bdd", "atoms", "fleet-atoms")
        }
        assert reports["fleet-atoms"] == reports["atoms"]
        assert reports["fleet-atoms"] == reports["bdd"]
        assert any(count for _, _, count in reports["fleet-atoms"]["matrix"])


class TestBudgetFallback:
    def test_overrun_falls_back_per_group_with_note_and_counter(self):
        devices, _ = gateway_fleet(count=4, outliers=3, rule_count=10, seed=6)
        memo = DiffMemo()
        before = _counter("fleet_atoms.budget_fallbacks")
        atomizer = FleetAtomizer(devices, memo, atom_budget=2)
        atomizer.seed()
        assert _counter("fleet_atoms.budget_fallbacks") == before + 1
        assert atomizer.groups_fallback == 1
        assert atomizer.groups_atomized == 0
        assert len(atomizer.notes) == 1
        note = atomizer.notes[0]
        assert "falling back to per-pair atoms" in note
        for device in devices:
            assert device.hostname in note
        # No ACL seeds were written for the fallen-back group.
        assert len(memo) == 0

    def test_env_budget_fallback_keeps_report_identical(self, monkeypatch):
        devices, _ = gateway_fleet(count=4, outliers=3, rule_count=10, seed=6)
        baseline = fleet_report_to_dict(
            compare_fleet(devices, workers=1, set_backend="atoms")
        )
        monkeypatch.setenv(ATOM_BUDGET_ENV, "4")
        before = _counter("fleet_atoms.budget_fallbacks")
        report = compare_fleet(devices, workers=1, set_backend="fleet-atoms")
        assert _counter("fleet_atoms.budget_fallbacks") > before
        assert report.notes and "falling back" in report.notes[0]
        # Schema v4 serializes notes, and the fallback note is supposed
        # to be there; everything else must match the baseline.
        fresh = fleet_report_to_dict(report)
        assert fresh["notes"] and "falling back" in fresh["notes"][0]
        fresh.pop("notes")
        baseline.pop("notes")
        assert fresh == baseline

    def test_unconstrained_run_has_no_notes(self):
        devices, _ = gateway_fleet(count=4, outliers=2, rule_count=10, seed=6)
        report = compare_fleet(devices, workers=1, set_backend="fleet-atoms")
        assert report.notes == []


class TestVectorMemoization:
    def test_second_seed_reuses_cached_vectors(self):
        devices, _ = gateway_fleet(count=4, outliers=3, rule_count=10, seed=8)
        memo = DiffMemo()
        before_universes = _counter("fleet_atoms.universes")
        first = FleetAtomizer(devices, memo)
        first.seed()
        assert _counter("fleet_atoms.universes") == before_universes + 1
        hits_before = _counter("memo.vector_hits")
        second = FleetAtomizer(devices, memo)
        second.seed()
        # Cached vectors: no second universe build, one vector-table hit.
        assert _counter("fleet_atoms.universes") == before_universes + 1
        assert _counter("memo.vector_hits") == hits_before + 1
        assert second.universe_sizes == first.universe_sizes

    def test_vector_table_does_not_cross_pickling(self):
        devices, _ = gateway_fleet(count=3, outliers=2, rule_count=8, seed=8)
        memo = DiffMemo()
        atomizer = FleetAtomizer(devices, memo)
        atomizer.seed()
        (universe_id,) = atomizer.universe_sizes
        assert memo.get_vectors(universe_id) is not None
        clone = pickle.loads(pickle.dumps(memo))
        # Vectors are an in-process cache (BDD-derived, process-local);
        # the count seeds themselves do survive.
        assert clone.get_vectors(universe_id) is None
        assert len(clone) == len(memo) > 0


class TestSeedEntries:
    def test_count_entry_shape(self):
        entry = count_entry(ComponentKind.ACL, 3)
        assert entry["count"] == 3
        assert entry["kind"] == ComponentKind.ACL.value
        assert entry["seeded"] is True
        assert entry["semantic"] == []
        assert entry["structural"] == []

    def test_put_seed_never_overwrites(self):
        memo = DiffMemo()
        key = acl_key("fp1", "fp2")
        memo.put_seed(key, count_entry(ComponentKind.ACL, 1))
        memo.put_seed(key, count_entry(ComponentKind.ACL, 9))
        assert memo.get(key)["count"] == 1
