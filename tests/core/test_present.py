"""Tests for Present: localization attachment and table rendering."""

import pytest

from repro.core import (
    ComponentKind,
    config_diff,
    diff_acls,
    localize_acl_difference,
    render_report,
    render_semantic_difference,
    render_structural_difference,
)
from repro.model import (
    Acl,
    AclAction,
    AclLine,
    IpWildcard,
    PortRange,
    Prefix,
    SourceSpan,
    StaticRoute,
    ip_to_int,
)
from repro.core.results import StructuralDifference
from repro.workloads.figure1 import figure1_devices, section2_static_devices


@pytest.fixture(scope="module")
def figure1_report():
    return config_diff(*figure1_devices())


class TestRouteMapRendering:
    def test_table2_rows_present(self, figure1_report):
        rendered = render_semantic_difference(figure1_report.semantic[0])
        for row in ("Included Prefixes", "Excluded Prefixes", "Policy Name", "Action", "Text"):
            assert row in rendered

    def test_table2a_contents(self, figure1_report):
        rendered = render_semantic_difference(figure1_report.semantic[0])
        assert "10.9.0.0/16 : 16-32" in rendered
        assert "10.9.0.0/16 : 16-16" in rendered
        assert "REJECT" in rendered
        assert "SET LOCAL PREF 30" in rendered
        assert "route-map POL deny 10" in rendered
        assert "rule3" in rendered

    def test_table2b_contents(self, figure1_report):
        rendered = render_semantic_difference(figure1_report.semantic[1])
        assert "0.0.0.0/0 : 0-32" in rendered
        assert "Community" in rendered
        assert "route-map POL deny 20" in rendered

    def test_router_names_in_header(self, figure1_report):
        rendered = render_semantic_difference(figure1_report.semantic[0])
        assert "cisco_router" in rendered
        assert "juniper_router" in rendered


class TestAclLocalization:
    def _acls(self):
        cisco = Acl(
            name="F",
            lines=(
                AclLine(
                    action=AclAction.DENY,
                    src=IpWildcard.from_prefix(Prefix.parse("9.140.0.0/23")),
                    source=SourceSpan("c.cfg", 3, 3, ("deny ipv4 9.140.0.0 0.0.1.255 any",)),
                ),
                AclLine(action=AclAction.PERMIT),
            ),
        )
        juniper = Acl(
            name="F",
            lines=(
                AclLine(
                    action=AclAction.PERMIT,
                    source=SourceSpan("j.cfg", 5, 7, ("term permit_all {", "then accept;", "}")),
                ),
            ),
        )
        return cisco, juniper

    def test_src_localization(self):
        cisco, juniper = self._acls()
        space, differences = diff_acls(cisco, juniper, "r1", "r2")
        assert len(differences) == 1
        difference = differences[0]
        localize_acl_difference(space, difference, cisco, juniper)
        src_localization = difference.extra_localizations["srcIp"]
        assert [str(p) for p in src_localization.included] == ["9.140.0.0/23"]
        dst_localization = difference.extra_localizations["dstIp"]
        assert [str(p) for p in dst_localization.included] == ["0.0.0.0/0"]

    def test_acl_rendering_table7_shape(self):
        cisco, juniper = self._acls()
        space, differences = diff_acls(cisco, juniper, "r1", "r2")
        difference = differences[0]
        localize_acl_difference(space, difference, cisco, juniper)
        rendered = render_semantic_difference(difference)
        assert "9.140.0.0/23" in rendered
        assert "ACL Name" in rendered
        assert "REJECT" in rendered and "ACCEPT" in rendered
        assert "deny ipv4 9.140.0.0" in rendered
        assert "term permit_all" in rendered

    def test_port_only_difference_gets_example(self):
        acl1 = Acl(
            name="F",
            lines=(
                AclLine(
                    action=AclAction.PERMIT,
                    protocol=6,
                    dst_ports=(PortRange.single(22),),
                ),
            ),
        )
        acl2 = Acl(name="F", lines=())
        space, differences = diff_acls(acl1, acl2)
        difference = differences[0]
        localize_acl_difference(space, difference, acl1, acl2)
        assert difference.example.get("protocol") == "tcp"
        assert difference.example.get("dstPort") == "22"


class TestStructuralRendering:
    def test_table4_shape(self):
        report = config_diff(*section2_static_devices())
        static = [d for d in report.structural if d.kind is ComponentKind.STATIC_ROUTE]
        rendered = render_structural_difference(static[0])
        assert "10.1.1.2/31" in rendered
        assert "None" in rendered  # the absent side
        assert "ip route 10.1.1.2 255.255.255.254 10.2.2.2" in rendered

    def test_attribute_difference_rendering(self):
        difference = StructuralDifference(
            kind=ComponentKind.BGP_PROPERTY,
            component="bgp neighbor 10.0.0.1",
            attribute="send-community",
            value1="false",
            value2="true",
            router1="a",
            router2="b",
        )
        rendered = render_structural_difference(difference)
        assert "Send-Community" in rendered
        assert "false" in rendered and "true" in rendered


class TestReportRendering:
    def test_full_report(self, figure1_report):
        rendered = render_report(figure1_report)
        assert "cisco_router vs juniper_router" in rendered
        assert "Difference 1 (semantic)" in rendered
        assert "Difference 2 (semantic)" in rendered
        assert f"Total differences: {figure1_report.total_differences()}" in rendered

    def test_equivalent_report(self):
        from repro.parsers import parse_cisco
        from repro.workloads.figure1 import CISCO_FIGURE1

        report = config_diff(
            parse_cisco(CISCO_FIGURE1, "a.cfg"), parse_cisco(CISCO_FIGURE1, "b.cfg")
        )
        rendered = render_report(report)
        assert "behaviorally equivalent" in rendered

    def test_unmatched_rendered(self):
        cisco, juniper = figure1_devices()
        cisco.acls["ONLY"] = Acl(name="ONLY")
        report = config_diff(cisco, juniper)
        rendered = render_report(report)
        assert "ONLY" in rendered
        assert "missing on" in rendered
