"""Tests for the process-parallel comparison fan-out.

The load-bearing property is *bit-for-bit determinism*: a fleet report
computed with workers must serialize identically to the serial one, on
both the university and datacenter workloads.
"""

import pytest

from repro.core import (
    WORKERS_ENV,
    compare_fleet,
    config_diff,
    diff_pairs,
    pairwise_counts,
    report_to_dict,
    report_to_json,
    resolve_workers,
)
from repro.workloads.datacenter import gateway_fleet
from repro.workloads.university import university_network


def fleet_as_json(report):
    return {
        "reference": report.reference,
        "matrix": sorted(report.matrix.items()),
        "reports": {
            hostname: report_to_json(pair_report)
            for hostname, pair_report in report.reports.items()
        },
    }


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "banana")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestParallelFleet:
    def test_datacenter_fleet_byte_identical(self):
        devices, expected_outliers = gateway_fleet(
            count=6, outliers=2, rule_count=12, seed=5
        )
        serial = compare_fleet(devices, workers=1)
        parallel = compare_fleet(devices, workers=2)
        assert fleet_as_json(serial) == fleet_as_json(parallel)
        assert set(parallel.outliers) == set(expected_outliers)

    def test_university_fleet_byte_identical(self):
        network = university_network()
        devices = [
            network.core.cisco,
            network.core.juniper,
            network.border.cisco,
            network.border.juniper,
        ]
        serial = compare_fleet(devices, workers=1)
        parallel = compare_fleet(devices, workers=2)
        assert fleet_as_json(serial) == fleet_as_json(parallel)

    def test_explicit_reference_with_workers(self):
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=8, seed=2)
        reference = devices[0].hostname
        serial = compare_fleet(devices, reference=reference, workers=1)
        parallel = compare_fleet(devices, reference=reference, workers=2)
        assert fleet_as_json(serial) == fleet_as_json(parallel)


class TestBatchHelpers:
    def test_pairwise_counts_match_config_diff(self):
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=8, seed=9)
        pairs = [(devices[0], devices[1]), (devices[1], devices[2])]
        expected = [
            config_diff(a, b).total_differences() for a, b in pairs
        ]
        assert pairwise_counts(pairs, workers=1) == expected
        assert pairwise_counts(pairs, workers=2) == expected

    def test_diff_pairs_serialized_reports(self):
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=8, seed=9)
        pairs = [(devices[0], devices[1]), (devices[2], devices[3])]
        expected = [report_to_dict(config_diff(a, b)) for a, b in pairs]
        assert diff_pairs(pairs, workers=1) == expected
        assert diff_pairs(pairs, workers=2) == expected

    def test_env_var_drives_fleet(self, monkeypatch):
        devices, _ = gateway_fleet(count=3, outliers=1, rule_count=6, seed=1)
        monkeypatch.setenv(WORKERS_ENV, "2")
        via_env = compare_fleet(devices)
        monkeypatch.delenv(WORKERS_ENV)
        serial = compare_fleet(devices)
        assert fleet_as_json(via_env) == fleet_as_json(serial)
