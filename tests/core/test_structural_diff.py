"""Tests for StructuralDiff across every Table 1 component."""

import pytest

from repro.core import (
    ComponentKind,
    diff_admin_distances,
    diff_bgp_properties,
    diff_connected_routes,
    diff_ospf_properties,
    diff_static_routes,
    structural_diff_all,
)
from repro.model import (
    BgpNeighbor,
    BgpProcess,
    DeviceConfig,
    Interface,
    OspfInterfaceSettings,
    OspfProcess,
    OspfRedistribution,
    Prefix,
    Redistribution,
    StaticRoute,
    ip_to_int,
)


def _device(hostname="r", **kwargs):
    device = DeviceConfig(hostname=hostname)
    for key, value in kwargs.items():
        setattr(device, key, value)
    return device


def _route(prefix, next_hop="1.1.1.1", distance=1, tag=None, interface=None):
    return StaticRoute(
        prefix=Prefix.parse(prefix),
        next_hop=ip_to_int(next_hop) if next_hop else None,
        interface=interface,
        admin_distance=distance,
        tag=tag,
    )


class TestStaticRoutes:
    def test_identical_sets_no_differences(self):
        routes = [_route("10.0.0.0/24"), _route("10.1.0.0/24", "2.2.2.2")]
        assert (
            diff_static_routes(
                _device("a", static_routes=list(routes)),
                _device("b", static_routes=list(routes)),
            )
            == []
        )

    def test_missing_route_is_presence_difference(self):
        """The §2.2 / Table 4 case."""
        d1 = _device("cisco", static_routes=[_route("10.1.1.2/31", "10.2.2.2")])
        d2 = _device("juniper", static_routes=[])
        differences = diff_static_routes(d1, d2)
        assert len(differences) == 1
        diff = differences[0]
        assert diff.kind is ComponentKind.STATIC_ROUTE
        assert diff.attribute == "presence"
        assert diff.value2 is None
        assert "10.1.1.2/31" in diff.component
        assert diff.is_presence_diff()

    def test_next_hop_difference(self):
        d1 = _device("a", static_routes=[_route("10.0.0.0/24", "1.1.1.1")])
        d2 = _device("b", static_routes=[_route("10.0.0.0/24", "9.9.9.9")])
        differences = diff_static_routes(d1, d2)
        assert [d.attribute for d in differences] == ["next-hop"]
        assert differences[0].value1 == "1.1.1.1"
        assert differences[0].value2 == "9.9.9.9"

    def test_distance_and_tag_differences(self):
        d1 = _device("a", static_routes=[_route("10.0.0.0/24", distance=1, tag=5)])
        d2 = _device("b", static_routes=[_route("10.0.0.0/24", distance=200, tag=6)])
        attributes = {d.attribute for d in diff_static_routes(d1, d2)}
        assert attributes == {"admin-distance", "tag"}

    def test_multipath_same_set_no_difference(self):
        routes = [
            _route("10.0.0.0/24", "1.1.1.1"),
            _route("10.0.0.0/24", "2.2.2.2"),
        ]
        assert (
            diff_static_routes(
                _device("a", static_routes=list(routes)),
                _device("b", static_routes=list(reversed(routes))),
            )
            == []
        )

    def test_multipath_differing_hop_sets(self):
        d1 = _device(
            "a",
            static_routes=[_route("10.0.0.0/24", "1.1.1.1"), _route("10.0.0.0/24", "2.2.2.2")],
        )
        d2 = _device(
            "b",
            static_routes=[_route("10.0.0.0/24", "1.1.1.1"), _route("10.0.0.0/24", "3.3.3.3")],
        )
        differences = diff_static_routes(d1, d2)
        assert any(d.attribute == "next-hop" for d in differences)


class TestConnectedRoutes:
    def _with_interface(self, hostname, *subnets):
        device = _device(hostname)
        for index, subnet in enumerate(subnets):
            device.interfaces[f"e{index}"] = Interface(
                name=f"e{index}", address=Prefix.parse(subnet)
            )
        return device

    def test_same_subnets_different_names_ok(self):
        d1 = self._with_interface("a", "10.0.0.1/24")
        d2 = _device("b")
        d2.interfaces["xe-0/0/0.0"] = Interface(
            name="xe-0/0/0.0", address=Prefix.parse("10.0.0.2/24")
        )
        assert diff_connected_routes(d1, d2) == []

    def test_missing_subnet_reported(self):
        d1 = self._with_interface("a", "10.0.0.1/24", "10.1.0.1/24")
        d2 = self._with_interface("b", "10.0.0.2/24")
        differences = diff_connected_routes(d1, d2)
        assert len(differences) == 1
        assert differences[0].kind is ComponentKind.CONNECTED_ROUTE
        assert "10.1.0.0/24" in differences[0].component
        assert differences[0].value2 is None


class TestBgpProperties:
    def _bgp(self, **neighbor_kwargs):
        defaults = dict(peer_ip=ip_to_int("10.0.0.1"), remote_as=65001)
        defaults.update(neighbor_kwargs)
        return BgpProcess(asn=65000, neighbors=(BgpNeighbor(**defaults),))

    def test_equal_processes(self):
        assert (
            diff_bgp_properties(_device("a", bgp=self._bgp()), _device("b", bgp=self._bgp()))
            == []
        )

    def test_both_absent(self):
        assert diff_bgp_properties(_device("a"), _device("b")) == []

    def test_one_absent(self):
        differences = diff_bgp_properties(_device("a", bgp=self._bgp()), _device("b"))
        assert len(differences) == 1
        assert differences[0].component == "bgp process"
        assert differences[0].is_presence_diff()

    def test_asn_mismatch(self):
        other = BgpProcess(asn=65999, neighbors=self._bgp().neighbors)
        differences = diff_bgp_properties(
            _device("a", bgp=self._bgp()), _device("b", bgp=other)
        )
        assert any(d.attribute == "asn" for d in differences)

    def test_missing_neighbor(self):
        two = BgpProcess(
            asn=65000,
            neighbors=(
                BgpNeighbor(peer_ip=ip_to_int("10.0.0.1"), remote_as=65001),
                BgpNeighbor(peer_ip=ip_to_int("10.0.0.2"), remote_as=65002),
            ),
        )
        differences = diff_bgp_properties(
            _device("a", bgp=two), _device("b", bgp=self._bgp())
        )
        assert any(
            d.attribute == "presence" and "10.0.0.2" in d.component
            for d in differences
        )

    def test_send_community_difference(self):
        """The university network's §5.2 finding."""
        differences = diff_bgp_properties(
            _device("a", bgp=self._bgp(send_community=False)),
            _device("b", bgp=self._bgp(send_community=True)),
        )
        assert [d.attribute for d in differences] == ["send-community"]
        assert differences[0].value1 == "false"
        assert differences[0].value2 == "true"

    def test_reflector_client_difference(self):
        differences = diff_bgp_properties(
            _device("a", bgp=self._bgp(route_reflector_client=True)),
            _device("b", bgp=self._bgp()),
        )
        assert [d.attribute for d in differences] == ["route-reflector-client"]

    def test_policy_presence_compared_not_names(self):
        same = diff_bgp_properties(
            _device("a", bgp=self._bgp(export_policy="CISCO-NAME")),
            _device("b", bgp=self._bgp(export_policy="JUNOS-NAME")),
        )
        assert same == []
        differ = diff_bgp_properties(
            _device("a", bgp=self._bgp(export_policy="X")),
            _device("b", bgp=self._bgp()),
        )
        assert [d.attribute for d in differ] == ["has-export-policy"]

    def test_redistribution_differences(self):
        with_redist = BgpProcess(
            asn=65000,
            redistributions=(Redistribution(from_protocol="static", metric=5),),
        )
        without = BgpProcess(asn=65000)
        differences = diff_bgp_properties(
            _device("a", bgp=with_redist), _device("b", bgp=without)
        )
        assert any("redistribute static" in d.component for d in differences)
        metric_differ = diff_bgp_properties(
            _device("a", bgp=with_redist),
            _device(
                "b",
                bgp=BgpProcess(
                    asn=65000,
                    redistributions=(Redistribution(from_protocol="static", metric=9),),
                ),
            ),
        )
        assert any(d.attribute == "metric" for d in metric_differ)


class TestOspfProperties:
    def _ospf(self, cost=10, area=0, passive=False, interface="e0"):
        return OspfProcess(
            interfaces=(
                OspfInterfaceSettings(
                    interface=interface, area=area, cost=cost, passive=passive
                ),
            )
        )

    def test_equal(self):
        assert (
            diff_ospf_properties(
                _device("a", ospf=self._ospf()), _device("b", ospf=self._ospf())
            )
            == []
        )

    def test_cost_difference(self):
        differences = diff_ospf_properties(
            _device("a", ospf=self._ospf(cost=10)),
            _device("b", ospf=self._ospf(cost=20)),
        )
        assert [d.attribute for d in differences] == ["cost"]

    def test_area_and_passive(self):
        differences = diff_ospf_properties(
            _device("a", ospf=self._ospf(area=0, passive=False)),
            _device("b", ospf=self._ospf(area=1, passive=True)),
        )
        assert {d.attribute for d in differences} == {"area", "passive"}

    def test_interface_pairing_used(self):
        """Cross-vendor names match via the supplied pairing (§4)."""
        d1 = _device("a", ospf=self._ospf(interface="Ethernet1"))
        d2 = _device("b", ospf=self._ospf(interface="xe-0/0/0.0"))
        without_pairing = diff_ospf_properties(d1, d2)
        assert any(d.attribute == "presence" for d in without_pairing)
        with_pairing = diff_ospf_properties(
            d1, d2, interface_pairing={"Ethernet1": "xe-0/0/0.0"}
        )
        assert with_pairing == []

    def test_one_sided_interface(self):
        d1 = _device("a", ospf=self._ospf())
        d2 = _device("b", ospf=OspfProcess())
        differences = diff_ospf_properties(d1, d2)
        assert len(differences) == 1
        assert differences[0].value2 is None

    def test_process_presence(self):
        differences = diff_ospf_properties(_device("a", ospf=self._ospf()), _device("b"))
        assert len(differences) == 1
        assert differences[0].component == "ospf process"

    def test_redistribution(self):
        with_redist = OspfProcess(
            redistributions=(OspfRedistribution(from_protocol="static", metric_type=1),)
        )
        differences = diff_ospf_properties(
            _device("a", ospf=with_redist),
            _device(
                "b",
                ospf=OspfProcess(
                    redistributions=(
                        OspfRedistribution(from_protocol="static", metric_type=2),
                    )
                ),
            ),
        )
        assert any(d.attribute == "metric-type" for d in differences)


class TestAdminDistances:
    def test_equal_defaults(self):
        assert diff_admin_distances(_device("a"), _device("b")) == []

    def test_configured_difference(self):
        d1 = _device("a")
        d1.admin_distances["ospf"] = 115
        differences = diff_admin_distances(d1, _device("b"))
        assert len(differences) == 1
        assert differences[0].kind is ComponentKind.ADMIN_DISTANCE
        assert differences[0].value1 == "115"
        assert differences[0].value2 == "110"


class TestAll:
    def test_structural_diff_all_aggregates(self):
        d1 = _device("a", static_routes=[_route("10.0.0.0/24")])
        d1.admin_distances["static"] = 7
        d2 = _device("b")
        differences = structural_diff_all(d1, d2)
        kinds = {d.kind for d in differences}
        assert ComponentKind.STATIC_ROUTE in kinds
        assert ComponentKind.ADMIN_DISTANCE in kinds

    def test_identical_devices_clean(self):
        d1 = _device("a", static_routes=[_route("10.0.0.0/24")])
        d2 = _device("b", static_routes=[_route("10.0.0.0/24")])
        assert structural_diff_all(d1, d2) == []
