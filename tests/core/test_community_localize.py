"""Tests for exhaustive community-dimension localization (the §4
future-work extension)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import config_diff, localize_communities
from repro.core.community_localize import CommunityCondition, CommunityLocalization
from repro.encoding import RouteSpace
from repro.model import (
    Action,
    Community,
    CommunityList,
    CommunityListEntry,
    MatchCommunities,
    RouteMap,
    RouteMapClause,
)
from repro.workloads.figure1 import figure1_devices

C_10_10 = Community.parse("10:10")
C_10_11 = Community.parse("10:11")


def _space_with(*communities):
    entries = tuple(
        CommunityListEntry(Action.PERMIT, frozenset({c})) for c in communities
    )
    community_list = CommunityList("C", entries)
    route_map = RouteMap(
        "P", (RouteMapClause("c", Action.PERMIT, (MatchCommunities(community_list),)),)
    )
    return RouteSpace([route_map])


class TestCondition:
    def test_render(self):
        condition = CommunityCondition(
            required=frozenset({C_10_10}), forbidden=frozenset({C_10_11})
        )
        assert condition.render() == "10:10 and not 10:11"

    def test_empty_condition_is_any(self):
        assert CommunityCondition().render() == "(any communities)"

    def test_matches(self):
        condition = CommunityCondition(
            required=frozenset({C_10_10}), forbidden=frozenset({C_10_11})
        )
        assert condition.matches(frozenset({C_10_10}))
        assert not condition.matches(frozenset({C_10_10, C_10_11}))
        assert not condition.matches(frozenset())


class TestLocalizeCommunities:
    def test_universal_when_independent(self):
        space = _space_with(C_10_10)
        localization = localize_communities(space, space.universe)
        assert localization.universal
        assert localization.render() == "(any communities)"

    def test_single_atom(self):
        space = _space_with(C_10_10)
        affected = space.community_pred(C_10_10)
        localization = localize_communities(space, affected)
        assert not localization.universal
        assert localization.conditions == (
            CommunityCondition(required=frozenset({C_10_10})),
        )

    def test_exactly_one_of_two(self):
        """The Figure 1 Difference 2 shape: XOR of the two tags."""
        space = _space_with(C_10_10, C_10_11)
        affected = space.community_pred(C_10_10) ^ space.community_pred(C_10_11)
        localization = localize_communities(space, affected)
        assert len(localization.conditions) == 2
        # Oracle: the DNF matches exactly the XOR sets.
        for carried in [
            frozenset(),
            frozenset({C_10_10}),
            frozenset({C_10_11}),
            frozenset({C_10_10, C_10_11}),
        ]:
            assert localization.matches(carried) == (len(carried) == 1)

    def test_unsatisfiable(self):
        space = _space_with(C_10_10)
        localization = localize_communities(space, space.manager.false)
        assert localization.conditions == ()
        assert not localization.universal
        assert "unsatisfiable" in localization.render()

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_dnf_is_exact(self, truth_table):
        """For every boolean function over 3 atoms (encoded as an 8-bit
        truth table), the DNF matches exactly that function."""
        atoms = [Community(1, 1), Community(2, 2), Community(3, 3)]
        space = _space_with(*atoms)
        function = space.manager.false
        for row in range(8):
            if not (truth_table >> row) & 1:
                continue
            cube = space.manager.true
            for bit, atom in enumerate(atoms):
                literal = space.community_pred(atom)
                cube = cube & (literal if (row >> bit) & 1 else ~literal)
            function = function | cube
        localization = localize_communities(space, function)
        for row in range(8):
            carried = frozenset(
                atom for bit, atom in enumerate(atoms) if (row >> bit) & 1
            )
            expected = bool((truth_table >> row) & 1)
            assert localization.matches(carried) == expected


class TestIntegration:
    def test_figure1_difference2_characterized(self):
        report = config_diff(*figure1_devices(), exhaustive_communities=True)
        second = report.semantic[1]
        localization = second.extra_localizations["communities"]
        assert isinstance(localization, CommunityLocalization)
        # Exactly one of the two tags.
        for carried in [
            frozenset(),
            frozenset({C_10_10}),
            frozenset({C_10_11}),
            frozenset({C_10_10, C_10_11}),
        ]:
            assert localization.matches(carried) == (len(carried) == 1)

    def test_default_mode_keeps_single_example(self):
        report = config_diff(*figure1_devices())
        second = report.semantic[1]
        assert "communities" not in second.extra_localizations
        assert "Community" in second.example

    def test_rendered_report_has_communities_row(self):
        from repro.core import render_semantic_difference

        report = config_diff(*figure1_devices(), exhaustive_communities=True)
        rendered = render_semantic_difference(report.semantic[1])
        assert "Communities" in rendered
        assert "10:11 and not 10:10" in rendered or "10:10 and not 10:11" in rendered
