"""Tests for JSON report serialization."""

import json

import pytest

from repro.core import (
    compare_fleet,
    config_diff,
    fleet_report_to_dict,
    report_to_dict,
    report_to_json,
    semantic_difference_to_dict,
    structural_difference_to_dict,
)
from repro.core.serialize import SCHEMA_VERSION
from repro.parsers import parse_cisco
from repro.workloads.datacenter import gateway_fleet
from repro.workloads.figure1 import (
    CISCO_FIGURE1,
    figure1_devices,
    section2_static_devices,
)


@pytest.fixture(scope="module")
def report():
    return config_diff(*figure1_devices(), exhaustive_communities=True)


class TestSchema:
    def test_top_level_fields(self, report):
        data = report_to_dict(report)
        assert data["schema_version"] == SCHEMA_VERSION == 5
        assert data["degraded"] is False
        assert data["aborted"] == []
        assert data["parse_diagnostics"] == {}
        assert data["router1"] == "cisco_router"
        assert data["router2"] == "juniper_router"
        assert data["equivalent"] is False
        assert data["total_differences"] == report.total_differences()

    def test_json_round_trips(self, report):
        data = json.loads(report_to_json(report))
        assert data == report_to_dict(report)

    def test_semantic_difference_payload(self, report):
        first = report_to_dict(report)["semantic"][0]
        assert first["kind"] == "Route Maps"
        assert first["action"]["router1"] == "REJECT"
        assert first["localization"]["included"] == [
            "10.9.0.0/16 : 16-32",
            "10.100.0.0/16 : 16-32",
        ]
        assert first["localization"]["excluded"] == [
            "10.9.0.0/16 : 16-16",
            "10.100.0.0/16 : 16-16",
        ]
        text = first["text"]["router1"]
        assert text["file"] == "cisco_router.cfg"
        assert text["start_line"] >= 1
        assert any("deny 10" in line for line in text["text"])

    def test_community_extension_serialized(self, report):
        second = report_to_dict(report)["semantic"][1]
        extra = second["extra_localizations"]["communities"]
        assert "10:10" in extra["rendered"] and "10:11" in extra["rendered"]

    def test_structural_difference_payload(self):
        data = report_to_dict(config_diff(*section2_static_devices()))
        static = [d for d in data["structural"] if d["kind"] == "Static Routes"]
        assert len(static) == 1
        assert static[0]["attribute"] == "presence"
        assert static[0]["value"]["router2"] is None
        assert static[0]["text"]["router1"] is not None
        assert static[0]["text"]["router2"] is None

    def test_equivalent_report(self):
        device1 = parse_cisco(CISCO_FIGURE1, "a.cfg")
        device2 = parse_cisco(CISCO_FIGURE1, "b.cfg")
        data = report_to_dict(config_diff(device1, device2))
        assert data["equivalent"] is True
        assert data["semantic"] == []
        assert data["structural"] == []


class TestDifferenceDictWrappers:
    def test_semantic_difference_json_roundtrip(self, report):
        for difference in report.semantic:
            data = semantic_difference_to_dict(difference)
            assert json.loads(json.dumps(data)) == data

    def test_structural_difference_json_roundtrip(self):
        static_report = config_diff(*section2_static_devices())
        assert static_report.structural
        for difference in static_report.structural:
            data = structural_difference_to_dict(difference)
            assert json.loads(json.dumps(data)) == data


class TestFleetReportDict:
    @pytest.fixture(scope="class")
    def fleet_report(self):
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=8, seed=2)
        return compare_fleet(devices)

    def test_shape(self, fleet_report):
        data = fleet_report_to_dict(fleet_report)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["reference"] == fleet_report.reference
        assert data["hostnames"] == fleet_report.hostnames
        assert data["outliers"] == fleet_report.outliers
        assert data["conforming"] == fleet_report.conforming
        for first, second, count in data["matrix"]:
            assert fleet_report.pair_count(first, second) == count
        for hostname, report in fleet_report.reports.items():
            assert data["reports"][hostname] == report_to_dict(report)

    def test_json_roundtrip_and_no_timing(self, fleet_report):
        data = fleet_report_to_dict(fleet_report)
        assert json.loads(json.dumps(data)) == data
        # Deliberately timing-free: two runs over the same fleet must
        # serialize byte-identically (the CI cache-smoke job diffs them).
        assert "seconds" not in json.dumps(data)

    def test_matrix_is_sorted(self, fleet_report):
        data = fleet_report_to_dict(fleet_report)
        assert data["matrix"] == sorted(data["matrix"])

    def test_v4_partial_and_notes(self, fleet_report):
        data = fleet_report_to_dict(fleet_report)
        assert data["partial"] is False  # machine-readable, not a note
        assert data["notes"] == list(fleet_report.notes)
        assert data["notes"] == sorted(data["notes"])

    def test_v4_coverage_section(self, fleet_report):
        data = fleet_report_to_dict(fleet_report)
        assert sorted(data["coverage"]) == fleet_report.hostnames
        for hostname, entry in data["coverage"].items():
            coverage = fleet_report.coverage[hostname]
            assert entry == coverage.to_dict()
            assert entry["policy_lines"] >= entry["exercised_lines"] >= 0
            names = [policy["name"] for policy in entry["policies"]]
            assert names == sorted(names)

    def test_v4_partial_true_on_failed_pairs(self):
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=8, seed=2)
        report = compare_fleet(devices)
        report.failed_pairs[("gw0", "gw1")] = "injected failure"
        data = fleet_report_to_dict(report)
        assert data["partial"] is True


class TestCliJson:
    def test_compare_json_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads.figure1 import JUNIPER_FIGURE1

        cisco = tmp_path / "c.cfg"
        juniper = tmp_path / "j.cfg"
        cisco.write_text(CISCO_FIGURE1)
        juniper.write_text(JUNIPER_FIGURE1)
        code = main(["compare", "--json", str(cisco), str(juniper)])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["equivalent"] is False
        assert len(data["semantic"]) == 2
