"""Tests for the prefix-range containment DAG (§3.2, Figure 3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    address_prefix_algebra,
    build_dag,
    close_under_intersection,
    prefix_range_algebra,
)
from repro.model import Prefix, PrefixRange


def _range(text):
    return PrefixRange.parse(text)


# Seven ranges shaped like the paper's Figure 3 example: a root U with two
# incomparable children A-ish regions, nested descendants, and a node (D)
# reachable through two parents.
FIGURE3_RANGES = [
    _range("10.0.0.0/8 : 8-32"),      # A
    _range("10.0.0.0/9 : 9-32"),      # B  (inside A)
    _range("10.128.0.0/9 : 9-32"),    # C  (inside A, disjoint from B)
    _range("10.0.0.0/9 : 16-24"),     # D  (inside B)
    _range("10.64.0.0/10 : 10-32"),   # E  (inside B)
    _range("10.128.0.0/10 : 10-28"),  # F  (inside C)
    _range("10.128.0.0/12 : 12-20"),  # G  (inside F)
]


class TestClosure:
    def test_universe_added(self):
        closed = close_under_intersection([_range("10.0.0.0/8 : 8-32")], prefix_range_algebra())
        assert PrefixRange.universe() in closed

    def test_contains_inputs(self):
        closed = close_under_intersection(FIGURE3_RANGES, prefix_range_algebra())
        for prefix_range in FIGURE3_RANGES:
            assert prefix_range in closed

    def test_closed_under_intersection(self):
        algebra = prefix_range_algebra()
        closed = close_under_intersection(FIGURE3_RANGES, algebra)
        for a in closed:
            for b in closed:
                meet = algebra.intersect(a, b)
                if meet is not None:
                    assert meet in closed

    def test_new_intersections_materialize(self):
        # Two overlapping ranges whose meet is neither input.
        a = _range("10.0.0.0/8 : 8-20")
        b = _range("10.9.0.0/16 : 16-32")
        closed = close_under_intersection([a, b], prefix_range_algebra())
        assert _range("10.9.0.0/16 : 16-20") in closed


class TestDagInvariants:
    @pytest.fixture(scope="class")
    def dag(self):
        return build_dag(FIGURE3_RANGES, prefix_range_algebra())

    def test_root_is_universe(self, dag):
        assert dag.root.label == PrefixRange.universe()

    def test_all_nodes_reachable(self, dag):
        assert len(dag.topological()) == len(dag)

    def test_unique_labels(self, dag):
        labels = [node.label for node in dag.topological()]
        assert len(labels) == len(set(labels))

    def test_edges_are_strict_containments(self, dag):
        algebra = prefix_range_algebra()
        for node in dag.topological():
            for child in node.children:
                assert algebra.contains(node.label, child.label)
                assert node.label != child.label

    def test_edges_are_immediate(self, dag):
        algebra = prefix_range_algebra()
        labels = [node.label for node in dag.topological()]
        for node in dag.topological():
            for child in node.children:
                for middle in labels:
                    if middle in (node.label, child.label):
                        continue
                    strictly_between = (
                        algebra.contains(node.label, middle)
                        and algebra.contains(middle, child.label)
                        and middle != node.label
                        and middle != child.label
                    )
                    assert not strictly_between, (
                        f"edge {node.label} -> {child.label} skips {middle}"
                    )

    def test_nested_chain(self, dag):
        b = dag.node(_range("10.0.0.0/9 : 9-32"))
        child_labels = {child.label for child in b.children}
        assert _range("10.0.0.0/9 : 16-24") in child_labels
        assert _range("10.64.0.0/10 : 10-32") in child_labels


class TestAddressAlgebra:
    def test_prefix_as_address_sets(self):
        algebra = address_prefix_algebra()
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.9.0.0/16")
        assert algebra.contains(outer, inner)
        assert algebra.intersect(outer, inner) == inner
        assert algebra.intersect(inner, Prefix.parse("11.0.0.0/8")) is None
        assert algebra.universe == Prefix(0, 0)

    def test_dag_over_addresses(self):
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.9.0.0/16"),
            Prefix.parse("9.140.0.0/23"),
        ]
        dag = build_dag(prefixes, address_prefix_algebra())
        assert dag.root.label == Prefix(0, 0)
        assert len(dag) == 4


@st.composite
def random_ranges(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    ranges = []
    for _ in range(count):
        length = draw(st.integers(min_value=4, max_value=24))
        network = draw(st.integers(min_value=0, max_value=0xFFFFFFFF)) & (
            (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        )
        low = draw(st.integers(min_value=length, max_value=32))
        high = draw(st.integers(min_value=low, max_value=32))
        ranges.append(PrefixRange(Prefix(network, length), low, high))
    return ranges


class TestDagProperties:
    @given(random_ranges())
    @settings(max_examples=50, deadline=None)
    def test_invariants_on_random_inputs(self, ranges):
        algebra = prefix_range_algebra()
        dag = build_dag(ranges, algebra)
        nodes = dag.topological()
        # reachability covers all nodes, labels unique
        assert len(nodes) == len(dag)
        labels = [node.label for node in nodes]
        assert len(set(labels)) == len(labels)
        # every input present; closure holds
        for prefix_range in ranges:
            assert prefix_range in dag.nodes
        # edges strict + immediate (spot-check containment property)
        for node in nodes:
            for child in node.children:
                assert algebra.contains(node.label, child.label)
                assert child.label != node.label
