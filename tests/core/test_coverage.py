"""Tests for per-device configuration coverage (schema v4).

Coverage answers the NetCov-style question for a fleet run: which
policy-defining lines actually participated in some localized
difference, and which policies the run had nothing to say about.  It is
a pure function of the finished report plus the parsed devices, so it
must be identical across compression, memoization, and worker knobs.
"""

import json

import pytest

from repro.core import compare_fleet, fleet_report_to_dict
from repro.core.coverage import compute_fleet_coverage, policy_spans
from repro.parsers import parse_cisco
from repro.workloads.datacenter import gateway_fleet


@pytest.fixture(scope="module")
def fleet():
    devices, expected = gateway_fleet(
        count=6, outliers=2, rule_count=12, seed=0
    )
    return devices, expected, compare_fleet(devices)


class TestExercisedLines:
    def test_every_device_covered(self, fleet):
        devices, _, report = fleet
        assert sorted(report.coverage) == report.hostnames

    def test_outliers_have_exercised_lines(self, fleet):
        _, expected, report = fleet
        for hostname in expected:
            assert report.coverage[hostname].exercised_lines > 0

    def test_reference_untouched_by_appended_rule_deviations(self, fleet):
        # The injected deviation is a rule appended on the outlier only;
        # the reference side of that difference region has no matching
        # lines (empty span), so reference coverage correctly stays 0 —
        # the differing configuration text lives on the outliers.
        _, expected, report = fleet
        assert expected, "fixture must inject outliers"
        assert report.coverage[report.reference].exercised_lines == 0

    def test_conforming_devices_have_zero_exercised_lines(self, fleet):
        _, _, report = fleet
        for hostname in report.conforming:
            coverage = report.coverage[hostname]
            assert coverage.exercised_lines == 0
            # ... and every policy is listed as untouched.
            assert len(coverage.unexercised) == len(coverage.policies)

    def test_exercised_is_subset_of_policy_lines(self, fleet):
        _, _, report = fleet
        for coverage in report.coverage.values():
            for policy in coverage.policies:
                assert set(policy.exercised) <= set(policy.lines)
                assert list(policy.exercised) == sorted(policy.exercised)
                assert list(policy.lines) == sorted(policy.lines)
            assert coverage.policy_lines >= coverage.exercised_lines


class TestInvarianceAcrossKnobs:
    def test_identical_across_compression_and_memo(self, fleet):
        devices, _, report = fleet
        baseline = {
            hostname: coverage.to_dict()
            for hostname, coverage in report.coverage.items()
        }
        for kwargs in (
            {"compress": False},
            {"compress": True, "use_memo": False},
        ):
            other = compare_fleet(devices, **kwargs)
            fresh = {
                hostname: coverage.to_dict()
                for hostname, coverage in other.coverage.items()
            }
            assert fresh == baseline, f"coverage diverged under {kwargs}"


class TestUnmatchedPolicies:
    BASE = (
        "hostname {host}\n"
        "!\n"
        "ip access-list extended COMMON\n"
        " permit tcp 10.0.0.0 0.0.0.255 any eq 80\n"
        " deny ip any any\n"
        "!\n"
    )
    EXTRA = (
        "ip access-list extended ONLY_A\n"
        " permit udp 192.0.2.0 0.0.0.255 any eq 53\n"
        " deny ip any any\n"
        "!\n"
    )

    def test_unmatched_policy_is_wholly_exercised(self):
        device_a = parse_cisco(
            self.BASE.format(host="a") + self.EXTRA, "a.cfg"
        )
        device_b = parse_cisco(self.BASE.format(host="b"), "b.cfg")
        report = compare_fleet([device_a, device_b])
        only = next(
            policy
            for policy in report.coverage["a"].policies
            if policy.name == "ONLY_A"
        )
        # The policy's existence is the difference: no differing-line
        # pair to point at, so every defining line counts as exercised.
        assert only.lines
        assert only.exercised == only.lines
        assert only.is_exercised
        # The shared ACL is identical on both sides and stays untouched.
        common = next(
            policy
            for policy in report.coverage["b"].policies
            if policy.name == "COMMON"
        )
        assert common.exercised == ()
        assert "acl ONLY_A" not in report.coverage["a"].unexercised


class TestPolicySpans:
    def test_spans_name_every_policy_with_lines(self, fleet):
        devices, _, _ = fleet
        device = devices[0]
        spans = policy_spans(device)
        names = [(kind, name) for kind, name, _ in spans]
        assert names == sorted(names, key=lambda item: (item[0], item[1]))
        assert {name for _, name, _ in spans} == set(device.acls) | set(
            device.route_maps
        )
        for _, _, lines in spans:
            assert lines, "every generated policy has source lines"


class TestDeterminism:
    def test_to_dict_json_roundtrip_and_order(self, fleet):
        _, _, report = fleet
        for coverage in report.coverage.values():
            data = coverage.to_dict()
            assert json.loads(json.dumps(data)) == data
            names = [policy["name"] for policy in data["policies"]]
            assert names == sorted(names)

    def test_recompute_is_pure(self, fleet):
        devices, _, report = fleet
        by_name = {device.hostname: device for device in devices}
        recomputed = compute_fleet_coverage(by_name, report)
        assert {
            hostname: coverage.to_dict()
            for hostname, coverage in recomputed.items()
        } == {
            hostname: coverage.to_dict()
            for hostname, coverage in report.coverage.items()
        }

    def test_render_mentions_counts(self, fleet):
        _, _, report = fleet
        rendered = report.render_coverage()
        assert rendered.startswith("configuration coverage")
        for hostname in report.hostnames:
            assert hostname in rendered
