"""Tests for fingerprint-keyed diff memoization."""

import pickle

import pytest

from repro import perf
from repro.core import (
    DiffMemo,
    acl_key,
    compare_fleet,
    config_diff,
    config_diff_summary,
    fleet_report_to_dict,
    report_to_dict,
)
from repro.workloads.datacenter import gateway_fleet
from repro.workloads.figure1 import figure1_devices


class TestDiffMemoTable:
    def test_get_put_roundtrip(self):
        memo = DiffMemo()
        key = acl_key("fp1", "fp2")
        assert memo.get(key) is None
        entry = {"count": 0, "semantic": [], "structural": []}
        memo.put(key, entry)
        assert memo.get(key) == entry
        assert key in memo
        assert len(memo) == 1

    def test_first_write_wins(self):
        memo = DiffMemo()
        key = acl_key("fp1", "fp2")
        memo.put(key, {"count": 0})
        memo.put(key, {"count": 99})
        assert memo.get(key) == {"count": 0}

    def test_take_updates_drains(self):
        memo = DiffMemo()
        key = acl_key("a", "b")
        memo.put(key, {"count": 1})
        assert memo.take_updates() == {key: {"count": 1}}
        assert memo.take_updates() == {}
        # Entry is still readable after the drain.
        assert memo.get(key) == {"count": 1}

    def test_merge_skips_existing(self):
        memo = DiffMemo()
        key = acl_key("a", "b")
        memo.put(key, {"count": 1})
        other = acl_key("c", "d")
        memo.merge({key: {"count": 5}, other: {"count": 2}})
        assert memo.get(key) == {"count": 1}
        assert memo.get(other) == {"count": 2}

    def test_pickling_drops_cache_handle(self):
        class Boom:
            def __getstate__(self):
                raise AssertionError("cache handle must not be pickled")

        memo = DiffMemo(cache=None)
        memo._cache = Boom()
        key = acl_key("a", "b")
        memo._entries[key] = {"count": 0}
        clone = pickle.loads(pickle.dumps(memo))
        assert clone._cache is None
        assert clone.get(key) == {"count": 0}


class TestConfigDiffParity:
    def test_summary_matches_report_without_memo(self):
        device1, device2 = figure1_devices()
        report = config_diff(device1, device2)
        assert config_diff_summary(device1, device2) == report.total_differences()

    def test_memoized_report_identical_to_fresh(self):
        device1, device2 = figure1_devices()
        fresh = config_diff(device1, device2)
        memo = DiffMemo()
        cold = config_diff_summary(device1, device2, memo=memo)
        warm = config_diff_summary(device1, device2, memo=memo)
        live = config_diff(device1, device2, memo=memo)
        assert cold == warm == fresh.total_differences()
        assert report_to_dict(live) == report_to_dict(fresh)

    def test_warm_summary_replays_from_memo(self):
        device1, device2 = figure1_devices()
        memo = DiffMemo()
        config_diff_summary(device1, device2, memo=memo)
        perf.reset()
        config_diff_summary(device1, device2, memo=memo)
        counters = perf.snapshot()["counters"]
        assert counters.get("memo.hits", 0) > 0
        assert counters.get("memo.misses", 0) == 0

    def test_self_comparison_is_all_hits_after_warmup(self):
        device1, _ = figure1_devices()
        memo = DiffMemo()
        assert config_diff_summary(device1, device1, memo=memo) == 0
        assert config_diff_summary(device1, device1, memo=memo) == 0


class TestFleetMemoIdentity:
    @pytest.fixture(scope="class")
    def fleet(self):
        return gateway_fleet(count=5, outliers=2, rule_count=10, seed=4)

    def test_memoized_fleet_identical_to_baseline(self, fleet):
        devices, expected = fleet
        baseline = compare_fleet(devices, use_memo=False)
        memoized = compare_fleet(devices)
        assert fleet_report_to_dict(baseline) == fleet_report_to_dict(memoized)
        assert memoized.outliers == expected

    def test_parallel_memoized_fleet_identical(self, fleet):
        devices, _ = fleet
        serial = compare_fleet(devices, workers=1)
        parallel = compare_fleet(devices, workers=2)
        assert fleet_report_to_dict(serial) == fleet_report_to_dict(parallel)

    def test_fleet_records_memo_hits(self, fleet):
        devices, _ = fleet
        perf.reset()
        compare_fleet(devices)
        counters = perf.snapshot()["counters"]
        assert counters.get("memo.hits", 0) > 0
        assert counters.get("memo.stores", 0) > 0

    def test_shared_memo_spans_runs(self, fleet):
        devices, _ = fleet
        memo = DiffMemo()
        first = compare_fleet(devices, memo=memo)
        perf.reset()
        second = compare_fleet(devices, memo=memo)
        counters = perf.snapshot()["counters"]
        assert counters.get("memo.stores", 0) == 0  # everything replayed
        assert fleet_report_to_dict(first) == fleet_report_to_dict(second)
