"""Tests for near-symmetry fleet compression (template-signature replay).

The tentpole invariant: ``compare_fleet(compress="near")`` produces a
report — and a serialized form — byte-identical to the uncompressed and
exact-compressed runs, on fleets where exact compression finds nothing
(the parameterized Clos: unique loopbacks/subnets/peers per device).
The supporting machinery (pair patterns, signature canonicalization,
class verification with dissolution, the replay plan, raw substitutions
and full-report replay, and the fallback-to-concrete path for failed
representative pairs) is covered alongside.  The oracle's
``near-symmetry`` selfcheck generator checks the same identities on
randomized, shrunken fleets.
"""

import json

import pytest

from repro import perf
from repro.core import compare_fleet, fleet_report_to_dict, parallel
from repro.core.config_diff import config_diff
from repro.core.near_symmetry import (
    FALLBACK_COUNTER,
    pair_pattern,
    pair_signature,
    plan_near_pairs,
    raw_substitution,
    replay_report_dict,
    verify_template_class,
)
from repro.core.parallel import PairOutcome
from repro.core.serialize import report_to_dict
from repro.model.fingerprint import (
    TemplateHole,
    partition_by_device_fingerprint,
)
from repro.parsers import parse_cisco
from repro.workloads.datacenter import (
    parameterized_clos_fleet,
    templated_clos_fleet,
)
from repro.workloads.figure1 import CISCO_FIGURE1


def _named(text, hostname):
    return parse_cisco(
        text.replace("hostname cisco_router", f"hostname {hostname}"),
        f"{hostname}.cfg",
    )


class _FakeTemplate:
    def __init__(self, holes):
        self.fingerprint = "fp"
        self.holes = tuple(holes)

    @property
    def kind_sequence(self):
        return tuple(hole.kind for hole in self.holes)

    @property
    def atom_sequence(self):
        return tuple(atom for hole in self.holes for atom in hole.atoms)


def _template(*atom_values, kind="bgp-peer"):
    return _FakeTemplate(
        TemplateHole(kind=kind, value=v, atoms=(("peer", v),))
        for v in atom_values
    )


class TestPairPattern:
    def test_first_occurrence_renaming(self):
        assert pair_pattern(
            [("a", "1"), ("a", "2")], [("a", "1"), ("a", "3")]
        ) == (0, 1, 0, 2)

    def test_tags_never_alias(self):
        # Equal text under different tags must stay distinct atoms.
        distinct = pair_pattern([("subnet", "x")], [("peer", "x")])
        shared = pair_pattern([("peer", "x")], [("peer", "x")])
        assert distinct == (0, 1)
        assert shared == (0, 0)

    def test_literals_are_abstracted(self):
        assert pair_pattern(
            [("p", "10.0.0.1")], [("p", "10.0.0.1")]
        ) == pair_pattern([("p", "10.9.9.9")], [("p", "10.9.9.9")])


class TestPairSignature:
    def test_distinct_template_ids_order_by_id(self):
        t1, t2 = _template("a"), _template("b")
        forward = pair_signature("t-low", t1, "t-high", t2)
        backward = pair_signature("t-high", t2, "t-low", t1)
        assert forward == backward
        assert forward[0] == "t-high"

    def test_equal_ids_take_min_orientation(self):
        t1, t2 = _template("a", "b"), _template("b", "c")
        assert pair_signature("t", t1, "t", t2) == pair_signature(
            "t", t2, "t", t1
        )

    def test_different_equality_patterns_get_different_signatures(self):
        shared = _template("a")
        also_shared = _template("a")
        fresh = _template("z")
        assert pair_signature("t", shared, "t", also_shared) != pair_signature(
            "t", shared, "t", fresh
        )


class TestVerifyTemplateClass:
    def _fleet(self):
        devices, _ = parameterized_clos_fleet(
            count=4, roles=1, rule_count=4, seed=0
        )
        return devices

    def test_real_template_class_verifies(self):
        assert verify_template_class(self._fleet()) is None
        assert verify_template_class([]) is None

    def test_disallowed_hole_kind_is_reported(self, monkeypatch):
        devices = self._fleet()
        bad = _FakeTemplate(
            [TemplateHole(kind="acl-literal", value="10.0.0.1")]
        )
        monkeypatch.setattr(type(devices[0]), "template", property(lambda self: bad))
        detail = verify_template_class(devices)
        assert detail is not None
        assert "allowlist" in detail

    def test_atom_shape_divergence_is_reported(self):
        devices = self._fleet()[:2]
        first, second = devices

        class Diverged:
            fingerprint = first.template.fingerprint
            holes = tuple(
                TemplateHole(kind=h.kind, value=h.value, atoms=())
                for h in first.template.holes
            )
            kind_sequence = first.template.kind_sequence
            atom_sequence = ()

        second.__dict__["_template"] = Diverged()
        detail = verify_template_class([first, second])
        assert detail is not None
        assert "atom shape" in detail


class TestPlanNearPairs:
    def test_all_identical_fleet_degenerates_to_exact_plan(self):
        # Satellite invariant: on a clone fleet the near partitioning
        # equals the exact classes, with identity substitutions.
        fleet = [_named(CISCO_FIGURE1, n) for n in ("a", "b", "c")]
        plan, notes = plan_near_pairs(fleet)
        assert notes == []
        assert plan.mode == "near"
        assert plan.pair_keys == ()
        assert plan.replay_key == {}
        exact = partition_by_device_fingerprint(fleet)
        assert plan.members == {"a": ("a", "b", "c")}
        assert list(plan.template_classes.values()) == [("a",)]
        assert len(plan.template_classes) == len(
            {fleet[0].template.fingerprint}
        ) == len(exact)
        subs = {d.template.substitution for d in fleet}
        assert len(subs) == 1  # identity: clones share one substitution

    def test_parameterized_fleet_analyzes_one_pair_per_signature(self):
        devices, role_of = parameterized_clos_fleet(
            count=8, roles=2, rule_count=4, seed=1
        )
        # No two devices are byte-identical ...
        assert len(partition_by_device_fingerprint(devices)) == 8
        plan, notes = plan_near_pairs(devices)
        assert notes == []
        # ... but only 2 template classes -> 3 signatures (two intra-
        # role, one cross-role) out of 28 matrix pairs.
        assert len(plan.template_classes) == 2
        assert len(plan.pair_keys) == 3
        assert plan.class_count == 2
        # every non-analyzed representative pair replays an analyzed one
        replayed = set(plan.replay_key.values())
        assert replayed <= set(plan.pair_keys)
        assert len(plan.replay_key) == 28 - 3

    def test_dissolved_class_falls_back_to_concrete(self, monkeypatch):
        from repro.core import near_symmetry

        devices, _ = parameterized_clos_fleet(
            count=4, roles=1, rule_count=4, seed=0
        )
        monkeypatch.setattr(
            near_symmetry,
            "verify_template_class",
            lambda members: "injected verification failure",
        )
        base = perf.REGISTRY.counters.get(FALLBACK_COUNTER, 0)
        plan, notes = plan_near_pairs(devices)
        assert perf.REGISTRY.counters.get(FALLBACK_COUNTER, 0) == base + 1
        assert len(notes) == 1
        assert "injected verification failure" in notes[0]
        # every pair analyzes concretely: all 6 pairs, no replay
        assert len(plan.pair_keys) == 6
        assert plan.replay_key == {}

    def test_expand_near_replays_counts(self):
        devices, _ = parameterized_clos_fleet(
            count=4, roles=1, rule_count=4, seed=0
        )
        hostnames = sorted(d.hostname for d in devices)
        plan, _ = plan_near_pairs(devices)
        (analyzed,) = plan.pair_keys
        outcome = PairOutcome(index=0, status="ok", result=5)
        matrix, failed, fallback = plan.expand_near(
            hostnames, {analyzed: outcome}
        )
        assert failed == {} and fallback == []
        assert len(matrix) == 6
        assert set(matrix.values()) == {5}


class TestThreeModeByteIdentity:
    def _identical(self, devices):
        serialized = {
            mode: fleet_report_to_dict(
                compare_fleet(devices, workers=1, compress=mode)
            )
            for mode in ("off", "exact", "near")
        }
        assert serialized["exact"] == serialized["off"]
        assert serialized["near"] == serialized["off"]

    def test_parameterized_clos_fleet(self):
        devices, _ = parameterized_clos_fleet(
            count=8, roles=2, rule_count=6, seed=2
        )
        self._identical(devices)

    def test_templated_clos_fleet(self):
        devices, _ = templated_clos_fleet(
            count=8, roles=2, rule_count=6, seed=3, vendors=2
        )
        self._identical(devices)

    def test_clone_fleet(self):
        self._identical(
            [_named(CISCO_FIGURE1, n) for n in ("a", "b", "c", "d")]
        )

    def test_near_stats_report_compression(self):
        devices, _ = parameterized_clos_fleet(
            count=8, roles=2, rule_count=6, seed=2
        )
        stats = compare_fleet(devices, workers=1, compress="near").symmetry
        assert stats.mode == "near"
        assert stats.classes == 2
        assert stats.analyzed_pairs == 3
        assert stats.total_pairs == 28
        assert stats.fallback_pairs == 0

    def test_fault_free_run_emits_no_near_notes(self):
        devices, _ = parameterized_clos_fleet(
            count=6, roles=2, rule_count=4, seed=0
        )
        report = compare_fleet(devices, workers=1, compress="near")
        assert not any("near-symmetry" in note for note in report.notes)


class TestReplayIdentity:
    def test_raw_substitution_maps_clone_literals(self):
        devices, role_of = parameterized_clos_fleet(
            count=6, roles=2, rule_count=4, seed=4
        )
        by_role = {}
        for device in devices:
            by_role.setdefault(role_of[device.hostname], []).append(device)
        group = next(g for g in by_role.values() if len(g) >= 2)
        first, second = sorted(group, key=lambda d: d.hostname)[:2]
        mapping = raw_substitution(first, second)
        assert mapping is not None
        assert mapping[first.hostname] == second.hostname
        assert mapping[first.filename] == second.filename

    def test_raw_substitution_rejects_cross_template_pairs(self):
        devices, role_of = parameterized_clos_fleet(
            count=4, roles=2, rule_count=4, seed=4
        )
        roles = {role_of[d.hostname] for d in devices}
        assert len(roles) == 2
        first = next(d for d in devices if role_of[d.hostname] == min(roles))
        second = next(d for d in devices if role_of[d.hostname] == max(roles))
        assert raw_substitution(first, second) is None

    def test_full_report_replays_through_substitution(self):
        # The soundness claim at report granularity: the analyzed
        # pair's report, rewritten through the two raw substitutions,
        # is byte-identical to the replayed pair's live report.
        devices, role_of = parameterized_clos_fleet(
            count=8, roles=2, rule_count=6, seed=5
        )
        by_role = {}
        for device in devices:
            by_role.setdefault(role_of[device.hostname], []).append(device)
        group = sorted(
            next(g for g in by_role.values() if len(g) >= 4),
            key=lambda d: d.hostname,
        )
        first, first_image, second, second_image = group[:4]
        sub1 = raw_substitution(first, first_image)
        sub2 = raw_substitution(second, second_image)
        assert sub1 is not None and sub2 is not None
        mapping = dict(sub1)
        for key, value in sub2.items():
            assert mapping.setdefault(key, value) == value
        replayed = replay_report_dict(
            report_to_dict(config_diff(first, second)), mapping
        )
        live = report_to_dict(config_diff(first_image, second_image))
        assert replayed == live

    def test_identity_mapping_is_a_deep_copy(self):
        report = {"a": [{"b": "10.0.0.1"}]}
        replayed = replay_report_dict(report, {"10.0.0.1": "10.0.0.1"})
        assert replayed == report
        assert replayed is not report
        assert replayed["a"][0] is not report["a"][0]

    def test_longest_first_and_boundary_guards(self):
        report = {"x": "10.0.0.1 10.0.0.10 h1 h1.cfg"}
        mapping = {
            "10.0.0.1": "10.9.9.1",
            "10.0.0.10": "10.9.9.10",
            "h1": "h2",
            "h1.cfg": "h2.cfg",
        }
        assert replay_report_dict(report, mapping) == {
            "x": "10.9.9.1 10.9.9.10 h2 h2.cfg"
        }

    def test_swapping_mapping_is_single_pass(self):
        report = {"x": "10.0.0.1 vs 10.0.0.2"}
        mapping = {"10.0.0.1": "10.0.0.2", "10.0.0.2": "10.0.0.1"}
        assert replay_report_dict(report, mapping) == {
            "x": "10.0.0.2 vs 10.0.0.1"
        }


class TestNearFallback:
    def test_failed_representative_pair_falls_back_for_members_only(
        self, monkeypatch
    ):
        """Satellite: a hostname-targeted fault on the analyzed pair of
        a near-symmetric class fails that pair alone; every member pair
        that would have replayed it is re-analyzed concretely."""
        devices, _ = parameterized_clos_fleet(
            count=6, roles=2, rule_count=4, seed=6
        )
        plan, _ = plan_near_pairs(devices)
        # pick an analyzed pair that other pairs actually replay
        target = next(
            pair
            for pair in plan.pair_keys
            if any(v == pair for v in plan.replay_key.values())
        )
        real = parallel._count_pair

        def poisoned(task):
            if {task[0].hostname, task[1].hostname} == set(target):
                raise RuntimeError("injected crash")
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", poisoned)
        base = perf.REGISTRY.counters.get(FALLBACK_COUNTER, 0)
        report = compare_fleet(devices, workers=1, compress="near")
        fallback_count = perf.REGISTRY.counters.get(FALLBACK_COUNTER, 0) - base

        expected_fallback = sum(
            1 for v in plan.replay_key.values() if v == target
        )
        assert fallback_count == expected_fallback
        assert any(
            "fell back to concrete analysis" in note for note in report.notes
        )
        assert report.symmetry.fallback_pairs == expected_fallback

        # the fault stays on its own pair (possibly healed by the
        # reference phase if it involves the medoid) — never spreads
        uncompressed = compare_fleet(
            devices, workers=1, compress="off"
        )
        assert report.failed_pairs == uncompressed.failed_pairs
        assert set(report.failed_pairs) <= {target}
        for key, count in uncompressed.matrix.items():
            assert report.matrix[key] == count

    def test_fallback_pairs_count_toward_analyzed(self, monkeypatch):
        devices, _ = parameterized_clos_fleet(
            count=4, roles=1, rule_count=4, seed=0
        )
        plan, _ = plan_near_pairs(devices)
        (target,) = plan.pair_keys
        real = parallel._count_pair

        def poisoned(task):
            if {task[0].hostname, task[1].hostname} == set(target):
                raise RuntimeError("injected crash")
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", poisoned)
        report = compare_fleet(devices, workers=1, compress="near")
        stats = report.symmetry
        assert stats.fallback_pairs == 5  # 6 pairs, 1 analyzed, 5 replayed
        assert stats.analyzed_pairs == 1 + 5
        # The target pair involves the medoid, so the reference phase
        # re-runs and heals it — the matrix ends up complete, exactly
        # like the uncompressed run under the same fault.
        uncompressed = compare_fleet(devices, workers=1, compress="off")
        assert report.failed_pairs == uncompressed.failed_pairs == {}
        assert report.matrix == uncompressed.matrix


class TestSupervisorCompressOption:
    def test_mode_strings_and_booleans_accepted(self):
        from repro.service.supervisor import Supervisor

        assert Supervisor._compress_option({}, "compress", None) is None
        assert (
            Supervisor._compress_option({"compress": True}, "compress", None)
            is True
        )
        assert (
            Supervisor._compress_option(
                {"compress": " NEAR "}, "compress", None
            )
            == "near"
        )

    def test_unknown_mode_is_a_permanent_job_error(self):
        from repro.service.supervisor import JobError, Supervisor

        with pytest.raises(JobError) as excinfo:
            Supervisor._compress_option({"compress": "sorta"}, "compress", None)
        assert excinfo.value.permanent
