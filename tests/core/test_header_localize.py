"""Tests for HeaderLocalize: GetMatch, flattening, and end-to-end minimal
representations — including the paper's Figure 3 worked example."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FlatTerm,
    HeaderLocalizeError,
    MatchTerm,
    build_dag,
    flatten_terms,
    get_match,
    header_localize,
    prefix_range_algebra,
)
from repro.encoding import RouteSpace
from repro.model import Prefix, PrefixRange, RouteMap


def _range(text):
    return PrefixRange.parse(text)


@pytest.fixture()
def space():
    return RouteSpace([])


class TestFigure3:
    """The paper's worked example: S = (B − D) ∪ (C − (F − G)), and the
    final flattened output is {B − D, C − F, G}."""

    A = _range("10.0.0.0/8 : 8-32")
    B = _range("10.0.0.0/9 : 9-32")
    C = _range("10.128.0.0/9 : 9-32")
    D = _range("10.0.0.0/9 : 16-24")
    E = _range("10.64.0.0/10 : 10-32")
    F = _range("10.128.0.0/10 : 10-28")
    G = _range("10.128.0.0/12 : 12-20")

    # E is inside B and D is inside B; G inside F inside C; B, C inside A.
    RANGES = [A, B, C, D, E, F, G]

    def _affected(self, space):
        to_pred = space.range_pred
        return (to_pred(self.B) - to_pred(self.D)) | (
            to_pred(self.C) - (to_pred(self.F) - to_pred(self.G))
        )

    def test_get_match_structure(self, space):
        dag = build_dag(self.RANGES, prefix_range_algebra())
        terms = get_match(self._affected(space), dag, space.range_pred)
        flat = flatten_terms(terms)
        assert set(flat) == {
            FlatTerm(self.B, (self.D,)),
            FlatTerm(self.C, (self.F,)),
            FlatTerm(self.G),
        }

    def test_flattened_set_equals_affected(self, space):
        """Semantic check: the flat representation denotes exactly S."""
        dag = build_dag(self.RANGES, prefix_range_algebra())
        affected = self._affected(space)
        terms = get_match(affected, dag, space.range_pred)
        flat = flatten_terms(terms)
        rebuilt = space.manager.false
        for term in flat:
            piece = space.range_pred(term.range)
            for minus in term.minus:
                piece = piece - space.range_pred(minus)
            rebuilt = rebuilt | piece
        assert rebuilt == affected

    def test_end_to_end_header_localize(self, space):
        localization = header_localize(
            self._affected(space),
            self.RANGES,
            prefix_range_algebra(),
            space.range_pred,
        )
        assert set(localization.terms) == {
            FlatTerm(self.B, (self.D,)),
            FlatTerm(self.C, (self.F,)),
            FlatTerm(self.G),
        }
        assert self.B in localization.included
        assert self.D in localization.excluded
        assert localization.stats.dag_nodes >= len(self.RANGES)


class TestSimpleCases:
    def test_empty_set(self, space):
        localization = header_localize(
            space.manager.false,
            [_range("10.0.0.0/8 : 8-32")],
            prefix_range_algebra(),
            space.range_pred,
        )
        assert localization.is_empty()
        assert localization.render() == ""

    def test_whole_universe(self, space):
        universe_pred = space.range_pred(PrefixRange.universe())
        localization = header_localize(
            universe_pred,
            [_range("10.0.0.0/8 : 8-32")],
            prefix_range_algebra(),
            space.range_pred,
        )
        assert localization.terms == (FlatTerm(PrefixRange.universe()),)

    def test_single_range(self, space):
        target = _range("10.9.0.0/16 : 16-32")
        localization = header_localize(
            space.range_pred(target),
            [target],
            prefix_range_algebra(),
            space.range_pred,
        )
        assert localization.terms == (FlatTerm(target),)

    def test_complement_of_range(self, space):
        """Table 2(b)'s shape: everything except the configured ranges."""
        nets = [_range("10.9.0.0/16 : 16-32"), _range("10.100.0.0/16 : 16-32")]
        affected = space.range_pred(PrefixRange.universe())
        for prefix_range in nets:
            affected = affected - space.range_pred(prefix_range)
        localization = header_localize(
            affected, nets, prefix_range_algebra(), space.range_pred
        )
        assert localization.included == [PrefixRange.universe()]
        assert set(localization.excluded) == set(nets)

    def test_table2a_shape(self, space):
        """NETS(16-32) minus NETS(exact 16): the paper's Difference 1."""
        wide = [_range("10.9.0.0/16 : 16-32"), _range("10.100.0.0/16 : 16-32")]
        exact = [_range("10.9.0.0/16 : 16-16"), _range("10.100.0.0/16 : 16-16")]
        affected = space.manager.false
        for w in wide:
            affected = affected | space.range_pred(w)
        for e in exact:
            affected = affected - space.range_pred(e)
        localization = header_localize(
            affected, wide + exact, prefix_range_algebra(), space.range_pred
        )
        assert set(localization.included) == set(wide)
        assert set(localization.excluded) == set(exact)

    def test_straddling_raises(self, space):
        """A set not generated by the vocabulary must be rejected."""
        affected = space.range_pred(_range("10.9.0.0/16 : 16-32"))
        with pytest.raises(HeaderLocalizeError):
            header_localize(
                affected,
                [_range("10.0.0.0/8 : 8-32")],  # vocabulary can't express it
                prefix_range_algebra(),
                space.range_pred,
            )


class TestFlattenTerms:
    def test_plain_term_unchanged(self):
        r = _range("10.0.0.0/8 : 8-32")
        assert flatten_terms([MatchTerm(r)]) == [FlatTerm(r)]

    def test_single_level_difference(self):
        r = _range("10.0.0.0/8 : 8-32")
        x = _range("10.0.0.0/9 : 9-32")
        term = MatchTerm(r, (MatchTerm(x),))
        assert flatten_terms([term]) == [FlatTerm(r, (x,))]

    def test_nested_difference_surfaces(self):
        c = _range("10.128.0.0/9 : 9-32")
        f = _range("10.128.0.0/10 : 10-28")
        g = _range("10.128.0.0/12 : 12-20")
        term = MatchTerm(c, (MatchTerm(f, (MatchTerm(g),)),))
        assert flatten_terms([term]) == [FlatTerm(c, (f,)), FlatTerm(g)]

    def test_doubly_nested(self):
        a = _range("10.0.0.0/8 : 8-32")
        b = _range("10.0.0.0/9 : 9-32")
        c = _range("10.0.0.0/10 : 10-32")
        d = _range("10.0.0.0/11 : 11-32")
        term = MatchTerm(a, (MatchTerm(b, (MatchTerm(c, (MatchTerm(d),)),)),))
        assert flatten_terms([term]) == [
            FlatTerm(a, (b,)),
            FlatTerm(c, (d,)),
        ]

    def test_duplicates_dropped(self):
        r = _range("10.0.0.0/8 : 8-32")
        assert flatten_terms([MatchTerm(r), MatchTerm(r)]) == [FlatTerm(r)]

    def test_render(self):
        r = _range("10.0.0.0/8 : 8-32")
        x = _range("10.0.0.0/9 : 9-32")
        assert "10.0.0.0/8" in FlatTerm(r, (x,)).render()
        assert " - " in FlatTerm(r, (x,)).render()


@st.composite
def vocabulary_and_set(draw):
    """A random vocabulary and a random boolean combination over it."""
    count = draw(st.integers(min_value=1, max_value=5))
    ranges = []
    for _ in range(count):
        length = draw(st.integers(min_value=4, max_value=20))
        network = draw(st.integers(min_value=0, max_value=0xFFFFFFFF)) & (
            (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        )
        low = draw(st.integers(min_value=length, max_value=32))
        high = draw(st.integers(min_value=low, max_value=32))
        ranges.append(PrefixRange(Prefix(network, length), low, high))
    # A random expression: fold ranges with union/diff/intersect.
    operations = draw(
        st.lists(
            st.sampled_from(["or", "diff", "and", "skip"]),
            min_size=count,
            max_size=count,
        )
    )
    return ranges, operations


class TestHeaderLocalizeProperty:
    @given(vocabulary_and_set())
    @settings(max_examples=40, deadline=None)
    def test_representation_is_exact(self, data):
        """For any set generated from the vocabulary, the flattened output
        denotes exactly that set (soundness + completeness of GetMatch)."""
        ranges, operations = data
        space = RouteSpace([])
        affected = space.manager.false
        for prefix_range, operation in zip(ranges, operations):
            predicate = space.range_pred(prefix_range)
            if operation == "or":
                affected = affected | predicate
            elif operation == "diff":
                affected = affected - predicate
            elif operation == "and":
                affected = affected & predicate
            # "skip" leaves the range in the vocabulary but unused
        localization = header_localize(
            affected, ranges, prefix_range_algebra(), space.range_pred
        )
        rebuilt = space.manager.false
        for term in localization.terms:
            piece = space.range_pred(term.range)
            for minus in term.minus:
                piece = piece - space.range_pred(minus)
            rebuilt = rebuilt | piece
        assert rebuilt == affected


class TestFlatTermMinimality:
    """Regression: flattening could surface a redundant nested piece when
    two overlapping DAG parents' match parts nest (G1 = G2 ∩ X1 ⊊ G2 both
    surfaced as flat terms).  The final minimality prune must drop it."""

    UNIVERSE = _range("0.0.0.0/0 : 0-32")
    X1 = _range("10.0.0.0/8 : 12-24")
    X2 = _range("10.0.0.0/8 : 16-32")
    G2 = _range("10.0.0.0/16 : 16-32")
    REDUNDANT = _range("10.0.0.0/16 : 16-24")  # = G2 ∩ X1, covered by G2

    def _affected(self, space):
        to_pred = space.range_pred
        return (
            to_pred(self.UNIVERSE) - to_pred(self.X1) - to_pred(self.X2)
        ) | to_pred(self.G2)

    def test_redundant_nested_piece_is_pruned(self, space):
        localization = header_localize(
            self._affected(space),
            [self.X1, self.X2, self.G2],
            prefix_range_algebra(),
            space.range_pred,
        )
        ranges = [term.range for term in localization.terms]
        assert self.REDUNDANT not in ranges
        assert len(localization.terms) == 2

    def test_output_is_exact_and_minimal(self, space):
        affected = self._affected(space)
        localization = header_localize(
            affected,
            [self.X1, self.X2, self.G2],
            prefix_range_algebra(),
            space.range_pred,
        )
        denotations = []
        for term in localization.terms:
            denoted = space.range_pred(term.range)
            for subtrahend in term.minus:
                denoted = denoted - space.range_pred(subtrahend)
            denotations.append(denoted)
        assert space.manager.disjoin(denotations) == affected
        for index, denoted in enumerate(denotations):
            rest = denotations[:index] + denotations[index + 1 :]
            assert not denoted.implies(space.manager.disjoin(rest))

    def test_minimal_flat_terms_counts_pruned(self, space):
        from repro import perf
        from repro.core import FlatTerm, minimal_flat_terms

        perf.reset()
        terms = [
            FlatTerm(self.UNIVERSE, (self.X1, self.X2)),
            FlatTerm(self.REDUNDANT),
            FlatTerm(self.G2),
        ]
        kept = minimal_flat_terms(terms, space.range_pred, space.manager)
        assert [term.range for term in kept] == [self.UNIVERSE, self.G2]
        counters = perf.snapshot()["counters"]
        assert counters.get("header_localize.flat_terms_pruned", 0) == 1
        perf.reset()
