"""Tests for topology inference and backup-pair discovery."""

import pytest

from repro.core import (
    audit_backup_pairs,
    discover_backup_pairs,
    infer_adjacencies,
)
from repro.model import DeviceConfig, Interface, Prefix
from repro.workloads.datacenter import scenario1_redundant_pairs


def _device(hostname, *subnets, host_offset=1):
    device = DeviceConfig(hostname=hostname)
    for index, subnet_text in enumerate(subnets):
        subnet = Prefix.parse(subnet_text)
        host = subnet.network + host_offset

        class _Host(Prefix):
            def __post_init__(self):
                """Keep host bits (interface-address semantics)."""

        device.interfaces[f"e{index}"] = Interface(
            name=f"e{index}", address=_Host(host, subnet.length)
        )
    return device


class TestAdjacencies:
    def test_shared_subnet_is_adjacency(self):
        a = _device("a", "10.0.0.0/24")
        b = _device("b", "10.0.0.0/24", host_offset=2)
        adjacencies = infer_adjacencies([a, b])
        assert len(adjacencies) == 1
        assert adjacencies[0].device1 == "a"
        assert adjacencies[0].device2 == "b"
        assert str(adjacencies[0].subnet) == "10.0.0.0/24"

    def test_disjoint_subnets_no_adjacency(self):
        a = _device("a", "10.0.0.0/24")
        b = _device("b", "10.1.0.0/24")
        assert infer_adjacencies([a, b]) == []

    def test_loopbacks_excluded(self):
        a = _device("a", "10.255.0.1/32")
        b = _device("b", "10.255.0.1/32", host_offset=0)
        assert infer_adjacencies([a, b]) == []

    def test_three_devices_on_one_lan(self):
        devices = [
            _device(name, "192.168.0.0/24", host_offset=offset)
            for name, offset in (("a", 1), ("b", 2), ("c", 3))
        ]
        adjacencies = infer_adjacencies(devices)
        assert len(adjacencies) == 3  # all pairs

    def test_shutdown_interfaces_ignored(self):
        a = _device("a", "10.0.0.0/24")
        b = DeviceConfig(hostname="b")
        b.interfaces["e0"] = Interface(
            name="e0", address=Prefix.parse("10.0.0.2/24"), shutdown=True
        )
        assert infer_adjacencies([a, b]) == []


class TestBackupDiscovery:
    def test_full_overlap_pairs(self):
        a = _device("a", "10.0.0.0/24", "10.1.0.0/24")
        b = _device("b", "10.0.0.0/24", "10.1.0.0/24", host_offset=2)
        pairs = discover_backup_pairs([a, b])
        assert len(pairs) == 1
        assert pairs[0].jaccard == 1.0

    def test_low_overlap_rejected(self):
        a = _device("a", "10.0.0.0/24", "10.1.0.0/24", "10.2.0.0/24")
        b = _device("b", "10.0.0.0/24", "10.9.0.0/24", "10.8.0.0/24", host_offset=2)
        assert discover_backup_pairs([a, b], min_overlap=0.8) == []
        assert len(discover_backup_pairs([a, b], min_overlap=0.1)) == 1

    def test_each_device_pairs_once(self):
        shared = ("10.0.0.0/24", "10.1.0.0/24")
        devices = [
            _device(name, *shared, host_offset=offset)
            for name, offset in (("a", 1), ("b", 2), ("c", 3))
        ]
        pairs = discover_backup_pairs(devices)
        assert len(pairs) == 1  # greedy one-to-one matching
        names = {pairs[0].device1, pairs[0].device2}
        assert len(names) == 2

    def test_datacenter_pairs_rediscovered(self):
        scenario = scenario1_redundant_pairs(pair_count=5, seed=2)
        devices = []
        for pair in scenario.pairs:
            devices.extend([pair.primary, pair.backup])
        candidates = discover_backup_pairs(devices)
        assert len(candidates) == 5
        for candidate in candidates:
            # each discovered pair is a (torN-cisco, torN-juniper) twin
            prefix1 = candidate.device1.split("-")[0]
            prefix2 = candidate.device2.split("-")[0]
            assert prefix1 == prefix2


class TestAuditPipeline:
    def test_reports_populated_and_bugs_found(self):
        scenario = scenario1_redundant_pairs(pair_count=5, seed=2)
        devices = []
        seeded = {}
        for pair in scenario.pairs:
            devices.extend([pair.primary, pair.backup])
            seeded[pair.primary.hostname.split("-")[0]] = bool(pair.seeded_bugs)
        candidates = audit_backup_pairs(devices)
        for candidate in candidates:
            assert candidate.report is not None
            rack = candidate.device1.split("-")[0]
            assert (not candidate.report.is_equivalent()) == seeded[rack]
