"""Tests for the atoms-backed localization algebra and memo replay.

Covers the PR-10 tentpole invariants: the bitset and BDD localization
paths agree (results and straddle errors alike), the process-wide DAG
cache actually hits, and collect-mode memo replay reproduces live
reports byte-for-byte — including across clone devices whose spans sit
in differently-named files.
"""

import json

import pytest

from repro import perf
from repro.core import (
    DiffMemo,
    HeaderLocalizeError,
    cached_dag,
    config_diff,
    dag_cache_clear,
    header_localize,
    prefix_range_algebra,
    report_to_dict,
    semantic_difference_to_dict,
)
from repro.core.memo import count_entry, semantic_entry
from repro.core.replay import replay_semantic_differences
from repro.core.results import ComponentKind
from repro.encoding import RouteSpace
from repro.model import PrefixRange
from repro.workloads.datacenter import templated_clos_fleet


def _range(text):
    return PrefixRange.parse(text)


@pytest.fixture()
def space():
    return RouteSpace([])


def _counter(name):
    return perf.REGISTRY.counters.get(name, 0)


class TestBackendEquivalence:
    """BDD-backed and bitset-backed localization agree exactly."""

    A = _range("10.0.0.0/8 : 8-32")
    B = _range("10.0.0.0/9 : 9-32")
    C = _range("10.128.0.0/9 : 9-32")
    D = _range("10.0.0.0/9 : 16-24")
    F = _range("10.128.0.0/10 : 10-28")
    G = _range("10.128.0.0/12 : 12-20")
    RANGES = [A, B, C, D, F, G]

    def _affected(self, space):
        to_pred = space.range_pred
        return (to_pred(self.B) - to_pred(self.D)) | (
            to_pred(self.C) - (to_pred(self.F) - to_pred(self.G))
        )

    def test_figure3_terms_identical(self, space):
        results = {}
        for backend in ("bdd", "atoms"):
            localization = header_localize(
                self._affected(space),
                self.RANGES,
                prefix_range_algebra(),
                space.range_pred,
                backend=backend,
            )
            results[backend] = localization
        assert results["bdd"].terms == results["atoms"].terms
        assert results["bdd"].included == results["atoms"].included
        assert results["bdd"].excluded == results["atoms"].excluded

    def test_straddle_same_error_both_backends(self, space):
        affected = space.range_pred(_range("10.9.0.0/16 : 16-32"))
        vocabulary = [_range("10.0.0.0/8 : 8-32")]
        messages = {}
        for backend in ("bdd", "atoms"):
            with pytest.raises(HeaderLocalizeError) as excinfo:
                header_localize(
                    affected,
                    vocabulary,
                    prefix_range_algebra(),
                    space.range_pred,
                    backend=backend,
                )
            messages[backend] = str(excinfo.value)
        assert messages["bdd"] == messages["atoms"]

    def test_leaf_straddle_same_error_both_backends(self, space):
        # The affected set cuts strictly inside a leaf range, hitting
        # the leaf-specific straddle message on both paths.
        leaf = _range("10.0.0.0/8 : 8-32")
        inner = space.range_pred(_range("10.9.0.0/16 : 16-32"))
        affected = space.range_pred(leaf) - inner
        messages = {}
        for backend in ("bdd", "atoms"):
            with pytest.raises(HeaderLocalizeError) as excinfo:
                header_localize(
                    affected,
                    [leaf],
                    prefix_range_algebra(),
                    space.range_pred,
                    backend=backend,
                )
            messages[backend] = str(excinfo.value)
        assert messages["bdd"] == messages["atoms"]


class TestDagCache:
    def test_same_vocabulary_hits(self):
        dag_cache_clear()
        algebra = prefix_range_algebra()
        ranges = [_range("10.0.0.0/8 : 8-32"), _range("10.0.0.0/9 : 9-32")]
        before_hits = _counter("header_localize.dag_cache_hits")
        first = cached_dag(ranges, algebra)
        second = cached_dag(list(reversed(ranges)), algebra)
        assert second is first  # shared, order-independent
        assert _counter("header_localize.dag_cache_hits") == before_hits + 1

    def test_subset_vocabulary_shares_closure_dag(self):
        dag_cache_clear()
        algebra = prefix_range_algebra()
        outer = _range("10.0.0.0/8 : 8-32")
        inner = _range("10.0.0.0/9 : 9-32")
        first = cached_dag([outer, inner], algebra)
        # The universe joins every closure, so a vocabulary whose
        # closure coincides shares the same DAG object.
        second = cached_dag([inner, outer, algebra.universe], algebra)
        assert second is first


class TestMemoReplay:
    def _fleet(self):
        devices, _ = templated_clos_fleet(
            count=4, roles=2, rule_count=8, seed=11, vendors=1, uplinks=1
        )
        return devices

    def test_cold_equals_warm_report_bytes(self):
        devices = self._fleet()
        memo = DiffMemo()
        cold = report_to_dict(config_diff(devices[0], devices[1], memo=memo))
        before = _counter("memo.localization_replays")
        warm = report_to_dict(config_diff(devices[0], devices[1], memo=memo))
        assert _counter("memo.localization_replays") > before
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)

    def test_replay_rewrites_clone_filenames(self):
        # devices 2 and 3 are role clones of devices 0 and 1: identical
        # component content (same fingerprints, same line offsets) in
        # differently-named files.  The replayed report must match a
        # memo-less live run on the clones exactly — including the
        # clones' own filenames in every span.
        devices = self._fleet()
        memo = DiffMemo()
        config_diff(devices[0], devices[1], memo=memo)
        before = _counter("memo.localization_replays")
        replayed = report_to_dict(config_diff(devices[2], devices[3], memo=memo))
        assert _counter("memo.localization_replays") > before
        live = report_to_dict(config_diff(devices[2], devices[3]))
        assert json.dumps(replayed, sort_keys=True) == json.dumps(
            live, sort_keys=True
        )
        spans = [
            entry["text"][side]
            for entry in replayed["semantic"]
            for side in ("router1", "router2")
            if entry["text"][side] is not None
        ]
        assert spans, "expected localized differences with spans"
        filenames = {span["file"] for span in spans}
        assert filenames <= {devices[2].filename, devices[3].filename}

    def test_replay_round_trips_serialization(self):
        devices = self._fleet()
        memo = DiffMemo()
        config_diff(devices[0], devices[1], memo=memo)
        entries = [
            entry
            for entry in memo.take_updates().values()
            if entry.get("localized") and entry["count"] > 0
        ]
        assert entries, "expected localized memo entries"
        for entry in entries:
            rebuilt = replay_semantic_differences(entry, devices[0], devices[1])
            assert [
                semantic_difference_to_dict(difference) for difference in rebuilt
            ] == entry["semantic"]

    def test_warm_replay_stores_nothing(self):
        devices = self._fleet()
        memo = DiffMemo()
        config_diff(devices[0], devices[1], memo=memo)
        memo.take_updates()
        config_diff(devices[0], devices[1], memo=memo)
        assert memo.take_updates() == {}

    def test_count_entry_upgraded_after_collect(self):
        from repro.core.config_diff import config_diff_summary

        devices = self._fleet()
        memo = DiffMemo()
        # Count mode stores entries without localization; the first
        # collect-mode walk recomputes live and upgrades them in place.
        config_diff_summary(devices[0], devices[1], memo=memo)
        count_entries = dict(memo.take_updates())
        assert count_entries and not any(
            e.get("localized") for e in count_entries.values()
        )
        before = _counter("memo.upgrades")
        config_diff(devices[0], devices[1], memo=memo)
        upgraded = dict(memo.take_updates())
        assert _counter("memo.upgrades") > before
        assert any(
            e.get("localized") and e["count"] > 0 for e in upgraded.values()
        )

    def test_upgrade_replaces_only_unlocalized(self):
        memo = DiffMemo()
        key = ("acl", "fp1", "fp2")
        plain = semantic_entry(ComponentKind.ACL, [])
        plain["count"] = 1  # pretend a count-mode result
        memo.put(key, plain)
        localized = semantic_entry(
            ComponentKind.ACL, [], provenance="abc", replay={"semantic": []}
        )
        localized["count"] = 1
        memo.upgrade(key, localized)
        assert memo.get(key) is localized
        other = semantic_entry(
            ComponentKind.ACL, [], provenance="def", replay={"semantic": []}
        )
        memo.upgrade(key, other)  # localized entries are never replaced
        assert memo.get(key) is localized

    def test_seeded_count_entry_falls_back_to_live(self):
        devices = self._fleet()
        memo = DiffMemo()
        live = report_to_dict(config_diff(devices[0], devices[1]))
        count = config_diff(devices[0], devices[1]).total_differences()
        # Seed every key the pair would use with count-only entries by
        # running count mode first; collect mode must still produce the
        # full live report (recomputing, then upgrading).
        from repro.core.config_diff import config_diff_summary

        assert config_diff_summary(devices[0], devices[1], memo=memo) == count
        collected = report_to_dict(config_diff(devices[0], devices[1], memo=memo))
        assert json.dumps(collected, sort_keys=True) == json.dumps(
            live, sort_keys=True
        )

    def test_merge_prefers_localized_entries(self):
        memo = DiffMemo()
        key = ("acl", "a", "b")
        memo.put(key, count_entry(ComponentKind.ACL, 2))
        localized = semantic_entry(
            ComponentKind.ACL, [], provenance="p", replay={"semantic": []}
        )
        memo.merge({key: localized})
        assert memo.get(key) is localized
        memo.merge({key: count_entry(ComponentKind.ACL, 2)})
        assert memo.get(key) is localized
