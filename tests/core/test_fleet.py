"""Tests for n-way fleet comparison and outlier detection."""

import random
from unittest import mock

import pytest

from repro.core import compare_fleet
from repro.core.fleet import FleetReport, _elect_medoid
from repro.parsers import parse_cisco
from repro.workloads.datacenter import gateway_fleet
from repro.workloads.figure1 import CISCO_FIGURE1


def _named(text, hostname):
    return parse_cisco(text.replace("hostname cisco_router", f"hostname {hostname}"), f"{hostname}.cfg")


class TestValidation:
    def test_needs_two_devices(self):
        with pytest.raises(ValueError):
            compare_fleet([_named(CISCO_FIGURE1, "a")])

    def test_unique_hostnames_required(self):
        with pytest.raises(ValueError):
            compare_fleet([_named(CISCO_FIGURE1, "a"), _named(CISCO_FIGURE1, "a")])

    def test_unknown_reference_rejected(self):
        fleet = [_named(CISCO_FIGURE1, "a"), _named(CISCO_FIGURE1, "b")]
        with pytest.raises(ValueError):
            compare_fleet(fleet, reference="zz")


class TestIdenticalFleet:
    def test_no_outliers(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b", "c")]
        report = compare_fleet(fleet)
        assert report.outliers == []
        assert set(report.conforming) == {"b", "c"} or set(report.conforming) == set(
            report.hostnames
        ) - {report.reference}

    def test_matrix_all_zero(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b", "c")]
        report = compare_fleet(fleet)
        assert all(count == 0 for count in report.matrix.values())


class TestMedoidElection:
    def test_tie_breaks_to_smallest_hostname(self):
        survivors = {"c": [1, 1], "a": [1, 1], "b": [1, 1]}
        assert _elect_medoid(["c", "a", "b"], survivors) == "a"

    def test_insertion_order_never_matters(self):
        # Parallel completion order feeds candidate/survivor dicts in
        # arbitrary order; the elected reference must not move.
        survivors = {"d": [2, 0], "b": [1, 1], "a": [0, 2], "c": [1, 1]}
        candidates = list(survivors)
        rng = random.Random(0)
        elected = {
            _elect_medoid(shuffled, dict(sorted(survivors.items())))
            for shuffled in (
                rng.sample(candidates, len(candidates)) for _ in range(10)
            )
        }
        # All four means tie at 1; "a" wins every shuffle.
        assert elected == {"a"}

    def test_exact_means_not_float_rounding(self):
        # Equal exact means with different survivor counts must tie
        # (and break by hostname), which Fraction guarantees.
        survivors = {"b": [1, 2], "a": [3, 0], "c": [9]}
        assert _elect_medoid(["b", "a", "c"], survivors) == "a"

    def test_smaller_mean_beats_hostname(self):
        survivors = {"a": [5, 5], "z": [0, 0]}
        assert _elect_medoid(["a", "z"], survivors) == "z"

    def test_identical_fleet_elects_smallest_hostname(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("c", "a", "b")]
        assert compare_fleet(fleet).reference == "a"

    def test_election_stable_across_worker_counts(self):
        devices, _ = gateway_fleet(count=5, outliers=1, rule_count=8, seed=6)
        serial = compare_fleet(devices, workers=1)
        parallel = compare_fleet(devices, workers=2)
        assert serial.reference == parallel.reference


class TestOutlierDetection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_outliers_found_exactly(self, seed):
        devices, expected = gateway_fleet(count=6, outliers=2, seed=seed)
        report = compare_fleet(devices)
        assert report.outliers == expected

    def test_medoid_is_a_conforming_device(self):
        devices, expected = gateway_fleet(count=6, outliers=2, seed=0)
        report = compare_fleet(devices)
        assert report.reference not in expected

    def test_cross_vendor_fleet_clean_when_equivalent(self):
        devices, _ = gateway_fleet(count=4, outliers=0, seed=5)
        report = compare_fleet(devices)
        assert report.outliers == []

    def test_explicit_reference(self):
        devices, expected = gateway_fleet(count=5, outliers=1, seed=1)
        conforming = next(d.hostname for d in devices if d.hostname not in expected)
        report = compare_fleet(devices, reference=conforming)
        assert report.reference == conforming
        assert report.outliers == expected

    def test_outlier_reports_carry_localization(self):
        devices, expected = gateway_fleet(count=4, outliers=1, seed=2)
        report = compare_fleet(devices)
        outlier_report = report.reports[expected[0]]
        assert outlier_report.semantic
        difference = outlier_report.semantic[0]
        # The deviation is the appended 192.0.2.x permit rule.
        # compare_fleet runs the full ConfigDiff pipeline, so Present's
        # ACL header localizations are attached.
        dst = difference.extra_localizations.get("dstIp")
        assert dst is not None

    def test_pair_count_symmetry(self):
        devices, _ = gateway_fleet(count=4, outliers=1, seed=3)
        report = compare_fleet(devices)
        for first in report.hostnames:
            for second in report.hostnames:
                if first == second:
                    continue
                key = (min(first, second), max(first, second))
                if key in report.matrix:
                    assert report.pair_count(first, second) == report.pair_count(
                        second, first
                    )

    def test_render_summary(self):
        devices, expected = gateway_fleet(count=4, outliers=1, seed=0)
        report = compare_fleet(devices)
        summary = report.render_summary()
        assert "fleet of 4" in summary
        assert expected[0] in summary

    def test_render_summary_evaluates_each_property_once(self):
        # outliers/conforming/failed each walk every report; the summary
        # must bind them once, not recompute per use (the old version
        # re-evaluated the properties in every f-string).
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=8, seed=0)
        report = compare_fleet(devices)
        with mock.patch.object(
            FleetReport,
            "outliers",
            new_callable=mock.PropertyMock,
            return_value=report.outliers,
        ) as outliers, mock.patch.object(
            FleetReport,
            "conforming",
            new_callable=mock.PropertyMock,
            return_value=report.conforming,
        ) as conforming, mock.patch.object(
            FleetReport,
            "failed",
            new_callable=mock.PropertyMock,
            return_value=[],
        ) as failed:
            report.render_summary()
        assert outliers.call_count == 1
        assert conforming.call_count == 1
        assert failed.call_count == 1


class TestPairCountErrors:
    REPORT = FleetReport(
        reference="a",
        hostnames=["a", "b", "c"],
        matrix={("a", "b"): 1},
        failed_pairs={("b", "c"): "timeout: too slow"},
    )

    def test_order_insensitive_lookup(self):
        assert self.REPORT.pair_count("a", "b") == 1
        assert self.REPORT.pair_count("b", "a") == 1

    def test_unknown_hostname_names_it_and_the_fleet(self):
        with pytest.raises(KeyError) as excinfo:
            self.REPORT.pair_count("a", "zz")
        message = str(excinfo.value)
        assert "no such device(s) in the fleet: zz" in message
        assert "a, b, c" in message

    def test_both_unknown_hostnames_listed_sorted(self):
        with pytest.raises(KeyError) as excinfo:
            self.REPORT.pair_count("zz", "mm")
        assert "no such device(s) in the fleet: mm, zz" in str(excinfo.value)

    def test_failed_pair_includes_recorded_cause(self):
        with pytest.raises(KeyError) as excinfo:
            self.REPORT.pair_count("c", "b")
        message = str(excinfo.value)
        assert "comparison failed" in message
        assert "timeout: too slow" in message

    def test_same_device_is_not_a_pair(self):
        with pytest.raises(KeyError) as excinfo:
            self.REPORT.pair_count("a", "a")
        assert "is one device, not a pair" in str(excinfo.value)

    def test_uncompared_pair_says_so(self):
        with pytest.raises(KeyError) as excinfo:
            self.REPORT.pair_count("a", "c")
        assert "was not compared" in str(excinfo.value)

    def test_explicit_reference_leaves_non_reference_pairs_uncompared(self):
        devices, _ = gateway_fleet(count=4, outliers=0, rule_count=8, seed=1)
        hostnames = sorted(device.hostname for device in devices)
        report = compare_fleet(devices, reference=hostnames[0])
        with pytest.raises(KeyError, match="was not compared"):
            report.pair_count(hostnames[1], hostnames[2])
