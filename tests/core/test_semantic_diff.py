"""Tests for SemanticDiff: the Figure 1 reproduction plus differential
soundness/completeness against the concrete evaluation oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComponentKind, diff_acls, diff_route_maps, semantic_diff_classes
from repro.encoding import RouteSpace, route_map_equivalence_classes
from repro.model import (
    Acl,
    AclAction,
    Action,
    Community,
    CommunityList,
    CommunityListEntry,
    ConcreteRoute,
    MatchCommunities,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMed,
    evaluate_route_map,
)
from repro.workloads.acl_gen import generate_acl_pair, random_rules
from repro.workloads.figure1 import figure1_devices


@pytest.fixture(scope="module")
def figure1_maps():
    cisco, juniper = figure1_devices()
    return cisco.route_maps["POL"], juniper.route_maps["POL"]


class TestFigure1:
    def test_exactly_two_differences(self, figure1_maps):
        space, differences = diff_route_maps(*figure1_maps)
        assert len(differences) == 2

    def test_difference_pairs_match_table2(self, figure1_maps):
        space, differences = diff_route_maps(*figure1_maps)
        pairs = {(d.class1.step_name, d.class2.step_name) for d in differences}
        assert pairs == {
            ("route-map POL deny 10", "term rule3"),
            ("route-map POL deny 20", "term rule3"),
        }

    def test_actions_match_table2(self, figure1_maps):
        space, differences = diff_route_maps(*figure1_maps)
        for difference in differences:
            action1, action2 = difference.action_pair()
            assert action1 == "REJECT"
            assert action2 == "SET LOCAL PREF 30\nACCEPT"

    def test_witnesses_reproduce_concretely(self, figure1_maps):
        """Every reported difference must disagree on a decoded witness."""
        map1, map2 = figure1_maps
        space, differences = diff_route_maps(map1, map2)
        for difference in differences:
            model = difference.input_set.any_model()
            total = {
                index: model.get(index, False)
                for index in range(space.manager.num_vars)
            }
            example = space.decode(total)
            route = ConcreteRoute(
                prefix=example.prefix,
                communities=example.communities,
                local_pref=77,
            )
            result1 = evaluate_route_map(map1, route)
            result2 = evaluate_route_map(map2, route)
            outcome1 = (result1.accepted, result1.route)
            outcome2 = (result2.accepted, result2.route)
            assert outcome1 != outcome2

    def test_equal_maps_no_differences(self, figure1_maps):
        map1, _ = figure1_maps
        space, differences = diff_route_maps(map1, map1)
        assert differences == []


class TestRouteMapDifferential:
    """Randomized soundness/completeness against the concrete oracle."""

    def _random_map(self, name, rng, shared_lists):
        clauses = []
        for index in range(rng.randint(1, 4)):
            matches = []
            if rng.random() < 0.8:
                matches.append(MatchPrefixList(rng.choice(shared_lists["prefix"])))
            if rng.random() < 0.4:
                matches.append(MatchCommunities(rng.choice(shared_lists["community"])))
            action = Action.DENY if rng.random() < 0.5 else Action.PERMIT
            sets = (SetLocalPref(rng.choice([50, 100, 150])),) if (
                action is Action.PERMIT and rng.random() < 0.5
            ) else ()
            clauses.append(
                RouteMapClause(f"{name}-c{index}", action, tuple(matches), sets)
            )
        default = Action.PERMIT if rng.random() < 0.5 else Action.DENY
        return RouteMap(name, tuple(clauses), default_action=default)

    def _shared_lists(self, rng):
        prefix_lists = []
        for index in range(3):
            entries = []
            for _ in range(rng.randint(1, 3)):
                length = rng.choice([8, 12, 16, 24])
                network = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
                high = rng.choice([length, 32])
                action = Action.PERMIT if rng.random() < 0.8 else Action.DENY
                entries.append(
                    PrefixListEntry(
                        action, PrefixRange(Prefix(network, length), length, high)
                    )
                )
            prefix_lists.append(PrefixList(f"PL{index}", tuple(entries)))
        communities = [Community(10, 10), Community(10, 11), Community(20, 1)]
        community_lists = [
            CommunityList(
                "CANY",
                tuple(
                    CommunityListEntry(Action.PERMIT, frozenset({c}))
                    for c in communities[:2]
                ),
            ),
            CommunityList(
                "CALL",
                (CommunityListEntry(Action.PERMIT, frozenset(communities[:2])),),
            ),
        ]
        return {"prefix": prefix_lists, "community": community_lists}

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_no_reported_differences_implies_agreement(self, seed):
        """Completeness: if SemanticDiff reports nothing, the maps agree
        on every sampled concrete route."""
        rng = random.Random(seed)
        lists = self._shared_lists(rng)
        map1 = self._random_map("A", rng, lists)
        map2 = self._random_map("B", rng, lists)
        space, differences = diff_route_maps(map1, map2)
        if differences:
            return  # covered by the soundness test below
        sampler = random.Random(seed + 1)
        communities = list(space.communities)
        for _ in range(40):
            length = sampler.randint(0, 32)
            network = sampler.getrandbits(32) & (
                0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            )
            carried = frozenset(
                c for c in communities if sampler.random() < 0.5
            )
            route = ConcreteRoute(
                prefix=Prefix(network, length),
                communities=carried,
                local_pref=77,
                med=7,
            )
            result1 = evaluate_route_map(map1, route)
            result2 = evaluate_route_map(map2, route)
            assert result1.accepted == result2.accepted
            if result1.accepted:
                assert result1.route == result2.route

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_reported_differences_are_sound(self, seed):
        """Soundness: each reported difference has a disagreeing witness."""
        rng = random.Random(seed)
        lists = self._shared_lists(rng)
        map1 = self._random_map("A", rng, lists)
        map2 = self._random_map("B", rng, lists)
        space, differences = diff_route_maps(map1, map2)
        for difference in differences:
            model = difference.input_set.any_model()
            total = {
                index: model.get(index, False)
                for index in range(space.manager.num_vars)
            }
            example = space.decode(total)
            # Sentinel attribute values expose set-vs-unset action
            # differences that a default-valued route would mask (a map
            # that sets local-pref 100 is NOT the identity, but agrees
            # with it on routes already carrying 100).
            route = ConcreteRoute(
                prefix=example.prefix,
                communities=example.communities,
                local_pref=77,
                med=7,
            )
            result1 = evaluate_route_map(map1, route)
            result2 = evaluate_route_map(map2, route)
            assert (result1.accepted, result1.route) != (
                result2.accepted,
                result2.route,
            )


class TestAclDiff:
    def test_identical_acls_equivalent(self):
        rng = random.Random(5)
        acl = Acl(name="A", lines=tuple(random_rules(40, rng)))
        space, differences = diff_acls(acl, acl)
        assert differences == []

    def test_injected_differences_detected(self):
        pair = generate_acl_pair(150, differences=8, seed=11)
        space, differences = diff_acls(pair.cisco_acl, pair.juniper_acl)
        assert differences, "injected differences must be found"
        # soundness: every reported difference disagrees concretely
        for difference in differences:
            model = difference.input_set.any_model()
            total = {
                index: model.get(index, False)
                for index in range(space.manager.num_vars)
            }
            packet = space.decode(total)
            args = (
                packet.src_ip,
                packet.dst_ip,
                packet.protocol,
                packet.src_port,
                packet.dst_port,
                packet.icmp_type,
            )
            assert pair.cisco_acl.evaluate_concrete(
                *args
            ) != pair.juniper_acl.evaluate_concrete(*args)

    def test_difference_union_equals_disagreement(self):
        """The union of all reported input sets is exactly the set of
        packets on which the ACLs disagree."""
        pair = generate_acl_pair(60, differences=4, seed=3)
        space, differences = diff_acls(pair.cisco_acl, pair.juniper_acl)
        union = space.manager.false
        for difference in differences:
            union = union | difference.input_set
        permit1 = space.acl_permit_pred(pair.cisco_acl)
        permit2 = space.acl_permit_pred(pair.juniper_acl)
        assert union == permit1 ^ permit2

    def test_default_action_difference(self):
        open_acl = Acl(name="A", lines=(), default_action=AclAction.PERMIT)
        closed_acl = Acl(name="A", lines=(), default_action=AclAction.DENY)
        space, differences = diff_acls(open_acl, closed_acl)
        assert len(differences) == 1
        assert differences[0].input_set.is_true()


class TestMetadata:
    def test_router_names_and_context_propagate(self, figure1_maps):
        space, differences = diff_route_maps(
            *figure1_maps, router1="r1", router2="r2", context="export to X"
        )
        assert all(d.router1 == "r1" and d.router2 == "r2" for d in differences)
        assert all(d.context == "export to X" for d in differences)
        assert all(d.kind is ComponentKind.ROUTE_MAP for d in differences)

    def test_set_action_only_difference_detected(self):
        """Two accepting maps that differ only in a set value."""
        map1 = RouteMap("P", (RouteMapClause("c", Action.PERMIT, (), (SetMed(1),)),))
        map2 = RouteMap("P", (RouteMapClause("c", Action.PERMIT, (), (SetMed(2),)),))
        space, differences = diff_route_maps(map1, map2)
        assert len(differences) == 1


class TestCanonicalActionKey:
    """Regression: the pairwise loop must key actions exactly as the
    agreement-region pruning does (by ``canonical_action_key``), or
    actions whose ``describe()`` and ``__eq__`` disagree yield spurious
    differences inside the agreement region."""

    class _IdentityAction:
        """describe()-equal but __eq__-unequal unless the same object."""

        def __init__(self, label):
            self.label = label

        def describe(self):
            return self.label

    def _classes(self, space):
        from repro.encoding.classes import EquivalenceClass

        left = space.range_pred(PrefixRange.parse("10.0.0.0/8 : 8-32"))
        mid = space.range_pred(PrefixRange.parse("20.0.0.0/8 : 8-32"))
        right = space.range_pred(PrefixRange.parse("30.0.0.0/8 : 8-32"))
        accept1 = self._IdentityAction("ACCEPT")
        accept2 = self._IdentityAction("ACCEPT")  # describe-equal twin
        reject = self._IdentityAction("REJECT")
        drop = self._IdentityAction("DROP")
        classes1 = [
            EquivalenceClass(left | right, accept1, "P1", "a1"),
            EquivalenceClass(mid, reject, "P1", "b1"),
        ]
        classes2 = [
            EquivalenceClass(left | mid, accept2, "P2", "a2"),
            EquivalenceClass(right, drop, "P2", "b2"),
        ]
        return left, mid, right, classes1, classes2

    def test_no_spurious_difference_in_agreement_region(self):
        space = RouteSpace([])
        left, mid, right, classes1, classes2 = self._classes(space)
        differences = semantic_diff_classes(
            ComponentKind.ROUTE_MAP, classes1, classes2
        )
        # Both sides ACCEPT on `left`; with the buggy identity comparison
        # the pairwise loop emitted that pure agreement region.
        for difference in differences:
            assert not difference.input_set.intersects(left)
        union = space.manager.disjoin(d.input_set for d in differences)
        assert union == mid | right

    def test_canonical_key_prefers_describe(self):
        from repro.core import canonical_action_key

        assert canonical_action_key(self._IdentityAction("X")) == "X"
        assert canonical_action_key(AclAction.PERMIT) is AclAction.PERMIT


class TestUnionCacheBound:
    """Regression: the per-manager union memo must stay bounded when one
    manager serves many distinct class lists (fleet runs)."""

    def test_lru_evicts_and_counts(self):
        from repro import perf
        from repro.core.semantic_diff import _UNION_CACHE_SIZE, _union_cache

        space = RouteSpace([])
        perf.reset()
        baseline = RouteMap(
            "B", (RouteMapClause("c", Action.PERMIT, (), (SetMed(1),)),)
        )
        classes_b = route_map_equivalence_classes(space, baseline)
        for index in range(_UNION_CACHE_SIZE + 4):
            peer = RouteMap(
                f"P{index}",
                (RouteMapClause("c", Action.PERMIT, (), (SetMed(index + 2),)),),
            )
            semantic_diff_classes(
                ComponentKind.ROUTE_MAP,
                classes_b,
                route_map_equivalence_classes(space, peer),
                backend="bdd",  # the union memo is bdd-backend machinery
            )
        per_manager = _union_cache.get(space.manager)
        assert per_manager is not None
        assert len(per_manager) <= _UNION_CACHE_SIZE
        counters = perf.snapshot()["counters"]
        assert counters.get("semantic_diff.union_cache_evictions", 0) > 0
        perf.reset()
