"""Tests for fleet symmetry compression (fingerprint equivalence classes).

The tentpole invariant under test: ``compare_fleet`` with compression
enabled produces a report — and a serialized form — identical to the
uncompressed run, on templated fleets, clone fleets, and fleets with no
symmetry at all.  The supporting machinery (partition determinism,
representative election, plan expansion, failure expansion, the
``CAMPION_FLEET_COMPRESS`` switch, ``--no-compress``) is covered
alongside.
"""

import json

import pytest

from repro.core import compare_fleet, fleet_report_to_dict
from repro.core import parallel
from repro.core.fleet import COMPRESS_ENV, resolve_compress
from repro.core.parallel import PairOutcome, plan_representative_pairs
from repro.model.fingerprint import partition_by_device_fingerprint
from repro.parsers import parse_cisco
from repro.workloads.datacenter import gateway_fleet, templated_clos_fleet
from repro.workloads.figure1 import CISCO_FIGURE1


def _named(text, hostname):
    return parse_cisco(
        text.replace("hostname cisco_router", f"hostname {hostname}"),
        f"{hostname}.cfg",
    )


class TestPartition:
    def test_clones_share_one_class(self):
        # Hostnames and filenames are deliberately excluded from the
        # fingerprint, so renamed clones land in a single class.
        fleet = [_named(CISCO_FIGURE1, name) for name in ("c", "a", "b")]
        classes = partition_by_device_fingerprint(fleet)
        assert list(classes.values()) == [("a", "b", "c")]

    def test_templated_fleet_has_roles_times_vendors_classes(self):
        devices, _ = templated_clos_fleet(
            count=12, roles=3, rule_count=8, seed=1, vendors=2
        )
        assert len(partition_by_device_fingerprint(devices)) == 6
        devices, _ = templated_clos_fleet(
            count=12, roles=3, rule_count=8, seed=1, vendors=1
        )
        assert len(partition_by_device_fingerprint(devices)) == 3

    def test_partition_independent_of_input_order(self):
        devices, _ = templated_clos_fleet(
            count=6, roles=2, rule_count=6, seed=0, vendors=1
        )
        forward = partition_by_device_fingerprint(devices)
        backward = partition_by_device_fingerprint(list(reversed(devices)))
        assert forward == backward


class TestPlan:
    CLASSES = {"f1": ("b", "a"), "f2": ("c",)}

    def test_representative_is_smallest_hostname(self):
        plan = plan_representative_pairs(self.CLASSES)
        assert plan.representative == {"a": "a", "b": "a", "c": "c"}
        assert plan.members == {"a": ("a", "b"), "c": ("c",)}
        assert plan.class_count == 2

    def test_pair_keys_are_sorted_representative_pairs(self):
        plan = plan_representative_pairs(
            {"f1": ("d", "b"), "f2": ("a",), "f3": ("c",)}
        )
        assert plan.pair_keys == (("a", "b"), ("a", "c"), ("b", "c"))

    def test_expand_intra_class_pairs_to_zero_without_outcomes(self):
        plan = plan_representative_pairs({"f": ("a", "b", "c")})
        # No representative pair exists, so no outcome is ever consulted.
        matrix, failed = plan.expand(["a", "b", "c"], {})
        assert matrix == {("a", "b"): 0, ("a", "c"): 0, ("b", "c"): 0}
        assert failed == {}

    def test_expand_copies_representative_count_across_class(self):
        plan = plan_representative_pairs(self.CLASSES)
        outcome = PairOutcome(index=0, status="ok", result=7)
        matrix, failed = plan.expand(["a", "b", "c"], {("a", "c"): outcome})
        assert matrix == {("a", "b"): 0, ("a", "c"): 7, ("b", "c"): 7}
        assert failed == {}

    def test_expand_copies_representative_failure_verbatim(self):
        plan = plan_representative_pairs(self.CLASSES)
        outcome = PairOutcome(index=0, status="error", error="boom")
        matrix, failed = plan.expand(["a", "b", "c"], {("a", "c"): outcome})
        assert matrix == {("a", "b"): 0}
        assert failed == {
            ("a", "c"): outcome.describe(),
            ("b", "c"): outcome.describe(),
        }


class TestCompressedEqualsUncompressed:
    """The oracle's ``symmetry`` generator checks exactly this identity;
    these are the deterministic fixed-fleet versions."""

    def _identical(self, devices):
        compressed = compare_fleet(devices, compress=True)
        uncompressed = compare_fleet(devices, compress=False)
        assert fleet_report_to_dict(compressed) == fleet_report_to_dict(
            uncompressed
        )
        return compressed, uncompressed

    def test_clone_fleet(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b", "c", "d")]
        compressed, _ = self._identical(fleet)
        stats = compressed.symmetry
        assert stats.classes == 1
        assert stats.analyzed_pairs == 0
        assert stats.expanded_pairs == stats.total_pairs == 6

    def test_templated_cross_vendor_fleet(self):
        devices, _ = templated_clos_fleet(
            count=8, roles=2, rule_count=6, seed=3, vendors=2
        )
        compressed, uncompressed = self._identical(devices)
        assert compressed.symmetry.classes == 4
        assert compressed.symmetry.analyzed_pairs == 6
        assert compressed.symmetry.total_pairs == 28
        assert uncompressed.symmetry is None

    def test_fleet_with_outliers(self):
        devices, expected = gateway_fleet(
            count=5, outliers=2, rule_count=10, seed=4
        )
        compressed, _ = self._identical(devices)
        assert compressed.outliers == expected

    def test_election_matches_uncompressed(self):
        devices, _ = gateway_fleet(count=6, outliers=1, rule_count=8, seed=7)
        compressed, uncompressed = self._identical(devices)
        assert compressed.reference == uncompressed.reference

    def test_use_memo_false_still_identical(self):
        devices, _ = templated_clos_fleet(
            count=6, roles=2, rule_count=6, seed=0, vendors=1
        )
        baseline = fleet_report_to_dict(
            compare_fleet(devices, compress=False, use_memo=False)
        )
        compressed = fleet_report_to_dict(
            compare_fleet(devices, compress=True, use_memo=False)
        )
        assert compressed == baseline


class TestFailureExpansion:
    def test_failed_representative_pair_fails_its_whole_class(
        self, monkeypatch
    ):
        devices, _ = templated_clos_fleet(
            count=3, roles=2, rule_count=6, seed=0, vendors=1
        )
        classes = partition_by_device_fingerprint(devices)
        assert len(classes) == 2
        pair_class = next(g for g in classes.values() if len(g) == 2)
        first, second = pair_class
        (singleton,) = next(g for g in classes.values() if len(g) == 1)

        def boom(task):
            raise RuntimeError("boom")

        monkeypatch.setattr(parallel, "_count_pair", boom)
        # Pinned to exact mode: near-symmetry deliberately does NOT fail
        # the whole class (members fall back to concrete analysis; see
        # tests/core/test_near_symmetry.py).
        report = compare_fleet(devices, workers=1, compress="exact")
        # The intra-class pair never ran _count_pair, so it survives ...
        assert report.matrix[(first, second)] == 0
        # ... which makes `first` the medoid; the reference phase then
        # repairs (first, singleton) via config_diff, leaving exactly
        # the expanded copy (second, singleton) failed with the
        # representative pair's cause.
        assert report.reference == first
        key = (min(second, singleton), max(second, singleton))
        assert set(report.failed_pairs) == {key}
        assert "boom" in report.failed_pairs[key]
        assert report.is_partial()


class TestResolveCompress:
    def test_default_is_near(self, monkeypatch):
        monkeypatch.delenv(COMPRESS_ENV, raising=False)
        assert resolve_compress() == "near"
        assert resolve_compress(None) == "near"

    @pytest.mark.parametrize(
        "raw", ["0", "false", "no", "off", "False", " OFF ", "NO"]
    )
    def test_env_disables(self, monkeypatch, raw):
        monkeypatch.setenv(COMPRESS_ENV, raw)
        assert resolve_compress() == "off"

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "anything"])
    def test_env_enables_near(self, monkeypatch, raw):
        # Historical truthy values select the strongest compression.
        monkeypatch.setenv(COMPRESS_ENV, raw)
        assert resolve_compress() == "near"

    @pytest.mark.parametrize("raw", ["exact", "EXACT", " exact "])
    def test_env_selects_exact(self, monkeypatch, raw):
        monkeypatch.setenv(COMPRESS_ENV, raw)
        assert resolve_compress() == "exact"

    def test_booleans_keep_their_historical_meaning(self):
        assert resolve_compress(True) == "exact"
        assert resolve_compress(False) == "off"

    @pytest.mark.parametrize("mode", ["off", "exact", "near"])
    def test_mode_strings_pass_through(self, mode):
        assert resolve_compress(mode) == mode
        assert resolve_compress(mode.upper()) == mode

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="compress must be one of"):
            resolve_compress("sorta")

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(COMPRESS_ENV, "near")
        assert resolve_compress(False) == "off"
        monkeypatch.setenv(COMPRESS_ENV, "0")
        assert resolve_compress(True) == "exact"
        assert resolve_compress("near") == "near"

    def test_compare_fleet_honors_environment(self, monkeypatch):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b")]
        monkeypatch.setenv(COMPRESS_ENV, "0")
        assert compare_fleet(fleet).symmetry is None
        monkeypatch.setenv(COMPRESS_ENV, "exact")
        assert compare_fleet(fleet).symmetry.mode == "exact"
        monkeypatch.setenv(COMPRESS_ENV, "1")
        assert compare_fleet(fleet).symmetry.mode == "near"


class TestSymmetryStats:
    def test_render_mentions_classes_and_pairs(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b", "c")]
        stats = compare_fleet(fleet, compress="exact").symmetry
        rendered = stats.render()
        assert "3 device(s)" in rendered
        assert "1 fingerprint class(es)" in rendered
        assert "analyzed 0 of 3" in rendered

    def test_near_render_mentions_template_classes(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b", "c")]
        stats = compare_fleet(fleet).symmetry  # default mode is near
        rendered = stats.render()
        assert stats.mode == "near"
        assert "3 device(s)" in rendered
        assert "1 template class(es)" in rendered
        assert "analyzed 0 of 3" in rendered

    def test_stats_not_serialized(self):
        fleet = [_named(CISCO_FIGURE1, name) for name in ("a", "b")]
        data = fleet_report_to_dict(compare_fleet(fleet))
        assert "symmetry" not in json.dumps(data)


class TestCli:
    def _write_fleet(self, tmp_path, devices):
        paths = []
        for device in devices:
            path = tmp_path / f"{device.hostname}.cfg"
            path.write_text("\n".join(device.raw_lines) + "\n")
            paths.append(str(path))
        return paths

    def test_no_compress_flag_prints_identical_json(self, tmp_path, capsys):
        from repro.cli import main

        devices, _ = templated_clos_fleet(
            count=4, roles=1, rule_count=6, seed=0, vendors=1
        )
        paths = self._write_fleet(tmp_path, devices)
        code = main(["fleet", "--json"] + paths)
        compressed_out = capsys.readouterr().out
        code_off = main(["fleet", "--json", "--no-compress"] + paths)
        uncompressed_out = capsys.readouterr().out
        assert code == code_off == 0
        assert compressed_out == uncompressed_out
        assert json.loads(compressed_out)["outliers"] == []

    def test_human_output_shows_symmetry_line_only_when_compressed(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        devices, _ = templated_clos_fleet(
            count=4, roles=1, rule_count=6, seed=0, vendors=1
        )
        paths = self._write_fleet(tmp_path, devices)
        main(["fleet"] + paths)
        assert "symmetry:" in capsys.readouterr().out
        main(["fleet", "--no-compress"] + paths)
        assert "symmetry:" not in capsys.readouterr().out
