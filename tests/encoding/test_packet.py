"""Tests for the packet-space encoding, validated against the concrete
ACL evaluation oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import PacketSpace
from repro.model import (
    Acl,
    AclAction,
    AclLine,
    IpWildcard,
    PortRange,
    Prefix,
    ip_to_int,
)
from repro.workloads.acl_gen import random_rules


@pytest.fixture
def space():
    return PacketSpace()


def _contains(space, predicate, packet):
    return bool(space.encode_concrete(*packet) & predicate)


class TestWildcardPred:
    def test_any(self, space):
        assert space.wildcard_pred(space.src_ip, IpWildcard.any()).is_true()

    def test_host(self, space):
        predicate = space.wildcard_pred(
            space.dst_ip, IpWildcard.host(ip_to_int("1.2.3.4"))
        )
        assert _contains(space, predicate, (0, ip_to_int("1.2.3.4"), 6))
        assert not _contains(space, predicate, (0, ip_to_int("1.2.3.5"), 6))

    def test_prefix(self, space):
        predicate = space.wildcard_pred(
            space.src_ip, IpWildcard.from_prefix(Prefix.parse("10.9.0.0/16"))
        )
        assert _contains(space, predicate, (ip_to_int("10.9.200.1"), 0, 6))
        assert not _contains(space, predicate, (ip_to_int("10.10.0.1"), 0, 6))

    def test_discontiguous(self, space):
        wildcard = IpWildcard(ip_to_int("10.0.3.0"), 0x00FF0000)
        predicate = space.wildcard_pred(space.src_ip, wildcard)
        assert _contains(space, predicate, (ip_to_int("10.200.3.0"), 0, 6))
        assert not _contains(space, predicate, (ip_to_int("10.200.4.0"), 0, 6))

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_matches_oracle(self, wildcard_bits, rng):
        space = PacketSpace()
        address = rng.getrandbits(32) & ~wildcard_bits & 0xFFFFFFFF
        wildcard = IpWildcard(address, wildcard_bits)
        predicate = space.wildcard_pred(space.src_ip, wildcard)
        for _ in range(10):
            candidate = rng.getrandbits(32)
            expected = wildcard.matches(candidate)
            assert _contains(space, predicate, (candidate, 0, 6)) == expected


class TestPortsPred:
    def test_empty_matches_all(self, space):
        assert space.ports_pred(space.dst_port, ()).is_true()

    def test_single_and_range(self, space):
        predicate = space.ports_pred(
            space.dst_port, (PortRange.single(80), PortRange(1000, 1010))
        )
        assert _contains(space, predicate, (0, 0, 6, 0, 80))
        assert _contains(space, predicate, (0, 0, 6, 0, 1005))
        assert not _contains(space, predicate, (0, 0, 6, 0, 81))


class TestLinePred:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_line_pred_matches_oracle(self, seed, rng):
        space = PacketSpace()
        generator = random.Random(seed)
        line = random_rules(1, generator)[0]
        predicate = space.line_pred(line)
        for _ in range(15):
            packet = (
                rng.getrandbits(32),
                rng.getrandbits(32),
                rng.choice([1, 6, 17, 47]),
                rng.randrange(65536),
                rng.choice([22, 53, 80, 443, 8080, rng.randrange(65536)]),
                0,
            )
            assert _contains(space, predicate, packet) == line.matches_concrete(*packet)


class TestAclPermitPred:
    def test_differential_vs_oracle(self):
        """The composed permit set equals first-match evaluation."""
        space = PacketSpace()
        generator = random.Random(1234)
        acl = Acl(name="T", lines=tuple(random_rules(60, generator)))
        permit = space.acl_permit_pred(acl)
        rng = random.Random(99)
        for _ in range(300):
            packet = (
                rng.getrandbits(32),
                rng.getrandbits(32),
                rng.choice([1, 6, 17]),
                rng.randrange(65536),
                rng.choice([22, 53, 80, 443, 8080]),
                0,
            )
            expected = acl.evaluate_concrete(*packet) is AclAction.PERMIT
            assert _contains(space, permit, packet) == expected

    def test_default_permit(self):
        space = PacketSpace()
        acl = Acl(name="open", lines=(), default_action=AclAction.PERMIT)
        assert space.acl_permit_pred(acl).is_true()

    def test_default_deny(self):
        space = PacketSpace()
        acl = Acl(name="closed", lines=())
        assert space.acl_permit_pred(acl).is_false()


class TestDecode:
    def test_roundtrip(self, space):
        packet = (ip_to_int("1.2.3.4"), ip_to_int("5.6.7.8"), 6, 1234, 80, 0)
        encoded = space.encode_concrete(*packet)
        model = encoded.any_model()
        total = {index: model.get(index, False) for index in range(space.manager.num_vars)}
        decoded = space.decode(total)
        assert (
            decoded.src_ip,
            decoded.dst_ip,
            decoded.protocol,
            decoded.src_port,
            decoded.dst_port,
            decoded.icmp_type,
        ) == packet

    def test_describe(self, space):
        packet = space.decode({index: False for index in range(space.manager.num_vars)})
        described = packet.describe()
        assert described["srcIp"] == "0.0.0.0"
        assert described["protocol"] == "0"
