"""Variable-order independence of SemanticDiff results.

The packet-space variable order (protocol first, then contiguous
address blocks — see ``repro/encoding/packet.py``) is a pure
performance knob: equivalence classes, difference lists, counts, and
localizations must come out identical under any order.  Only witness
``example`` packets — one arbitrary model of a set — may decode
differently, because ``any_model`` walks the BDD in variable order.

These tests pin that contract by diffing the same ACL pairs under the
default layout and under the historical address-first layout, then
comparing the serialized differences with the ``example`` field
stripped.
"""

import random

from repro.bdd import BddManager, BitVector
from repro.core.semantic_diff import diff_acls
from repro.core.serialize import semantic_difference_to_dict
from repro.encoding.packet import PacketSpace
from repro.model.acl import Acl
from repro.workloads.acl_gen import generate_acl_pair, random_rules
from repro.workloads.datacenter import gateway_fleet


class AddressFirstPacketSpace(PacketSpace):
    """The pre-seeding default layout: addresses above the protocol."""

    def __init__(self):
        manager = BddManager()
        self.manager = manager
        self.dst_ip = BitVector.allocate(manager, "dstIp", 32)
        self.src_ip = BitVector.allocate(manager, "srcIp", 32)
        self.protocol = BitVector.allocate(manager, "protocol", 8)
        self.src_port = BitVector.allocate(manager, "srcPort", 16)
        self.dst_port = BitVector.allocate(manager, "dstPort", 16)
        self.icmp_type = BitVector.allocate(manager, "icmpType", 8)
        self.fields = (
            self.dst_ip,
            self.src_ip,
            self.protocol,
            self.src_port,
            self.dst_port,
            self.icmp_type,
        )


def _order_free(differences):
    """Serialized differences with the order-dependent witness removed."""
    rendered = []
    for difference in differences:
        entry = semantic_difference_to_dict(difference)
        entry.pop("example", None)
        rendered.append(entry)
    return rendered


def _diff_under_both_orders(acl1, acl2):
    _, default_diffs = diff_acls(acl1, acl2, space=PacketSpace())
    _, addr_diffs = diff_acls(acl1, acl2, space=AddressFirstPacketSpace())
    return default_diffs, addr_diffs


class TestOrderIndependence:
    def test_random_acl_pairs_diff_identically(self):
        for seed in range(4):
            pair = generate_acl_pair(rule_count=30, differences=3, seed=seed)
            acl1, acl2 = pair.cisco_acl, pair.juniper_acl
            default_diffs, addr_diffs = _diff_under_both_orders(acl1, acl2)
            assert len(default_diffs) == len(addr_diffs)
            assert _order_free(default_diffs) == _order_free(addr_diffs)
            # Sanity: the workload actually produced differences to compare.
            assert len(default_diffs) >= 1

    def test_gateway_fleet_acls_diff_identically(self):
        devices, _ = gateway_fleet(count=4, outliers=3, rule_count=16, seed=11)
        acls = [acl for device in devices for acl in device.acls.values()]
        compared = 0
        for i in range(len(acls)):
            for j in range(i + 1, len(acls)):
                default_diffs, addr_diffs = _diff_under_both_orders(
                    acls[i], acls[j]
                )
                assert _order_free(default_diffs) == _order_free(addr_diffs)
                compared += 1
        assert compared == len(acls) * (len(acls) - 1) // 2

    def test_identical_acls_have_no_differences_under_either_order(self):
        rng = random.Random(7)
        acl = Acl(name="A", lines=tuple(random_rules(40, rng)))
        default_diffs, addr_diffs = _diff_under_both_orders(acl, acl)
        assert default_diffs == []
        assert addr_diffs == []

    def test_witness_packets_stay_inside_the_difference_region(self):
        # Witness packets (any_model decodes) ARE allowed to differ
        # between orders — any_model walks the BDD in variable order —
        # but each order's witness must still lie inside that order's
        # own difference region.
        pair = generate_acl_pair(rule_count=30, differences=3, seed=1)
        for space in (PacketSpace(), AddressFirstPacketSpace()):
            _, diffs = diff_acls(pair.cisco_acl, pair.juniper_acl, space=space)
            assert diffs
            for difference in diffs:
                model = space.manager.any_model(difference.input_set)
                assert model is not None
                packet = space.decode(model)
                singleton = space.encode_concrete(
                    src_ip=packet.src_ip,
                    dst_ip=packet.dst_ip,
                    protocol=packet.protocol,
                    src_port=packet.src_port,
                    dst_port=packet.dst_port,
                    icmp_type=packet.icmp_type,
                )
                assert space.manager.intersects(singleton, difference.input_set)
