"""Tests for route-map path equivalence classes, including the Figure 2
partition of the paper's running example."""

import pytest

from repro.encoding import (
    RouteMapAction,
    RouteSpace,
    clause_match_pred,
    route_map_equivalence_classes,
)
from repro.model import (
    Action,
    Community,
    CommunityList,
    CommunityListEntry,
    ConcreteRoute,
    MatchCommunities,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    evaluate_route_map,
)
from repro.workloads.figure1 import figure1_devices


@pytest.fixture(scope="module")
def figure1():
    cisco, juniper = figure1_devices()
    map1 = cisco.route_maps["POL"]
    map2 = juniper.route_maps["POL"]
    space = RouteSpace([map1, map2])
    return space, map1, map2


class TestFigure2Partition:
    def test_three_classes_for_cisco_map(self, figure1):
        space, map1, _ = figure1
        classes = route_map_equivalence_classes(space, map1)
        # Figure 2: NETS / ¬NETS∧COMM / remaining — the catch-all clause
        # covers everything, so no default class appears.
        assert len(classes) == 3
        assert not any(c.is_default for c in classes)

    def test_class_predicates_are_figure2_regions(self, figure1):
        space, map1, _ = figure1
        classes = route_map_equivalence_classes(space, map1)
        nets = space.prefix_list_pred(map1.clauses[0].matches[0].prefix_list)
        comm = space.community_list_pred(map1.clauses[1].matches[0].community_list)
        universe = space.universe
        assert classes[0].predicate == nets & universe
        assert classes[1].predicate == ~nets & comm & universe
        assert classes[2].predicate == ~nets & ~comm & universe

    def test_actions(self, figure1):
        space, map1, _ = figure1
        classes = route_map_equivalence_classes(space, map1)
        assert classes[0].action == RouteMapAction(Action.DENY)
        assert classes[2].action == RouteMapAction(Action.PERMIT, (SetLocalPref(30),))


class TestPartitionInvariants:
    def test_disjoint_and_cover_universe(self, figure1):
        space, map1, map2 = figure1
        for route_map in (map1, map2):
            classes = route_map_equivalence_classes(space, route_map)
            union = space.manager.false
            for index, cls in enumerate(classes):
                for other in classes[index + 1 :]:
                    assert not cls.predicate.intersects(other.predicate)
                union = union | cls.predicate
            assert union == space.universe

    def test_class_action_matches_concrete_oracle(self, figure1):
        space, map1, _ = figure1
        classes = route_map_equivalence_classes(space, map1)
        for cls in classes:
            model = cls.predicate.any_model()
            total = {
                index: model.get(index, False)
                for index in range(space.manager.num_vars)
            }
            example = space.decode(total)
            route = ConcreteRoute(
                prefix=example.prefix, communities=example.communities
            )
            result = evaluate_route_map(map1, route)
            expected_accept = cls.action.action is Action.PERMIT
            assert result.accepted == expected_accept
            if result.accepted:
                assert result.clause.name == cls.step_name


class TestDefaultClass:
    def test_fall_through_class_present_when_reachable(self):
        nets = PrefixList(
            "N",
            (PrefixListEntry(Action.PERMIT, PrefixRange.parse("10.0.0.0/8 : 8-32")),),
        )
        route_map = RouteMap(
            "P",
            (RouteMapClause("c", Action.DENY, (MatchPrefixList(nets),)),),
            default_action=Action.PERMIT,
        )
        space = RouteSpace([route_map])
        classes = route_map_equivalence_classes(space, route_map)
        assert len(classes) == 2
        default = classes[-1]
        assert default.is_default
        assert default.action == RouteMapAction(Action.PERMIT)

    def test_empty_map_is_single_default_class(self):
        route_map = RouteMap("P", ())
        space = RouteSpace([route_map])
        classes = route_map_equivalence_classes(space, route_map)
        assert len(classes) == 1
        assert classes[0].is_default
        assert classes[0].predicate == space.universe


class TestClauseMatchPred:
    def test_empty_clause_matches_everything(self):
        route_map = RouteMap("P", (RouteMapClause("c", Action.PERMIT),))
        space = RouteSpace([route_map])
        assert clause_match_pred(space, route_map.clauses[0]).is_true()

    def test_conditions_conjoin(self):
        community = Community.parse("1:1")
        comm_list = CommunityList(
            "C", (CommunityListEntry(Action.PERMIT, frozenset({community})),)
        )
        nets = PrefixList(
            "N",
            (PrefixListEntry(Action.PERMIT, PrefixRange.parse("10.0.0.0/8 : 8-32")),),
        )
        clause = RouteMapClause(
            "c", Action.PERMIT, (MatchPrefixList(nets), MatchCommunities(comm_list))
        )
        route_map = RouteMap("P", (clause,))
        space = RouteSpace([route_map])
        predicate = clause_match_pred(space, clause)
        inside_with = space.encode_concrete(Prefix.parse("10.1.0.0/16"), {community})
        inside_without = space.encode_concrete(Prefix.parse("10.1.0.0/16"), ())
        outside_with = space.encode_concrete(Prefix.parse("11.1.0.0/16"), {community})
        assert bool(inside_with & predicate)
        assert not bool(inside_without & predicate)
        assert not bool(outside_with & predicate)

    def test_tag_and_protocol_conditions(self):
        clause = RouteMapClause(
            "c", Action.PERMIT, (MatchTag(9), MatchProtocol("static"))
        )
        route_map = RouteMap("P", (clause,))
        space = RouteSpace([route_map])
        predicate = clause_match_pred(space, clause)
        matching = space.encode_concrete(
            Prefix.parse("10.0.0.0/8"), tag=9, protocol="static"
        )
        wrong_tag = space.encode_concrete(
            Prefix.parse("10.0.0.0/8"), tag=8, protocol="static"
        )
        assert bool(matching & predicate)
        assert not bool(wrong_tag & predicate)
