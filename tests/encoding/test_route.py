"""Tests for the route-advertisement encoding, against concrete oracles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import ROUTE_PROTOCOLS, RouteSpace, community_universe
from repro.model import (
    Action,
    AsPathList,
    AsPathListEntry,
    Community,
    CommunityList,
    CommunityListEntry,
    MatchAsPath,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    community_regex_matches,
)


def _empty_space(extra_maps=()):
    return RouteSpace(list(extra_maps))


def _map_with_communities(*communities, regexes=()):
    entries = tuple(
        CommunityListEntry(Action.PERMIT, frozenset({c})) for c in communities
    ) + tuple(CommunityListEntry(Action.PERMIT, regex=r) for r in regexes)
    community_list = CommunityList("C", entries)
    from repro.model import MatchCommunities

    return RouteMap(
        "P", (RouteMapClause("c", Action.PERMIT, (MatchCommunities(community_list),)),)
    )


class TestCommunityUniverse:
    def test_literals_included(self):
        route_map = _map_with_communities(Community.parse("1:1"), Community.parse("2:2"))
        universe = community_universe([route_map])
        assert Community.parse("1:1") in universe
        assert Community.parse("2:2") in universe

    def test_regex_witnesses_generated(self):
        route_map = _map_with_communities(regexes=["^52:1[0-9]$"])
        universe = community_universe([route_map])
        matching = [c for c in universe if community_regex_matches("^52:1[0-9]$", c)]
        assert matching, "regex must contribute at least one witness"

    def test_three_digit_completion_witnesses(self):
        route_map = _map_with_communities(regexes=["_52:2[0-9][0-9]_"])
        universe = community_universe([route_map])
        matching = [
            c for c in universe if community_regex_matches("_52:2[0-9][0-9]_", c)
        ]
        assert matching

    def test_differing_regexes_distinguished(self):
        """Two regexes with different accepted sets must differ on some atom."""
        map1 = _map_with_communities(regexes=["_52:1[0-9]_"])
        map2 = _map_with_communities(regexes=["_52:1[0-5]_"])
        universe = community_universe([map1, map2])
        differs = [
            c
            for c in universe
            if community_regex_matches("_52:1[0-9]_", c)
            != community_regex_matches("_52:1[0-5]_", c)
        ]
        assert differs

    def test_empty_maps(self):
        assert community_universe([]) == []


class TestRangePred:
    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, network, length):
        space = _empty_space()
        prefix_range = PrefixRange.parse("10.0.0.0/8 : 12-24")
        candidate = Prefix(network, length)
        encoded = space.encode_concrete(candidate)
        expected = prefix_range.contains_prefix(candidate)
        assert bool(encoded & space.range_pred(prefix_range)) == expected

    def test_universe_range_covers_universe(self):
        space = _empty_space()
        assert space.universe.implies(space.range_pred(PrefixRange.universe()))
        assert space.range_pred(PrefixRange.universe()) & space.universe == space.universe

    def test_exact_prefix(self):
        space = _empty_space()
        pred = space.exact_prefix_pred(Prefix.parse("10.9.0.0/16"))
        assert bool(space.encode_concrete(Prefix.parse("10.9.0.0/16")) & pred)
        assert not bool(space.encode_concrete(Prefix.parse("10.9.0.0/17")) & pred)


class TestPrefixListPred:
    @given(st.integers(min_value=0, max_value=2**31), st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_first_match_oracle(self, seed, rng):
        generator = random.Random(seed)
        entries = []
        for _ in range(generator.randint(1, 6)):
            length = generator.randint(8, 28)
            network = generator.getrandbits(32) & (
                (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            )
            low = generator.randint(length, 32)
            high = generator.randint(low, 32)
            action = Action.PERMIT if generator.random() < 0.7 else Action.DENY
            entries.append(
                PrefixListEntry(action, PrefixRange(Prefix(network, length), low, high))
            )
        prefix_list = PrefixList("L", tuple(entries))
        space = _empty_space()
        predicate = space.prefix_list_pred(prefix_list)
        for _ in range(20):
            length = rng.randint(0, 32)
            network = rng.getrandbits(32) & (
                0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            )
            candidate = Prefix(network, length)
            symbolic = bool(space.encode_concrete(candidate) & predicate)
            assert symbolic == prefix_list.permits(candidate)


class TestCommunityPreds:
    def test_conjunction_entry(self):
        both = frozenset({Community.parse("1:1"), Community.parse("2:2")})
        route_map = _map_with_communities(Community.parse("1:1"), Community.parse("2:2"))
        space = RouteSpace([route_map])
        entry = CommunityListEntry(Action.PERMIT, both)
        predicate = space.community_entry_pred(entry)
        carrying_both = space.encode_concrete(Prefix.parse("9.9.9.0/24"), both)
        carrying_one = space.encode_concrete(
            Prefix.parse("9.9.9.0/24"), {Community.parse("1:1")}
        )
        assert bool(carrying_both & predicate)
        assert not bool(carrying_one & predicate)

    def test_regex_entry_is_disjunction_over_atoms(self):
        route_map = _map_with_communities(regexes=["_52:1[0-9]_"])
        space = RouteSpace([route_map])
        entry = CommunityListEntry(Action.PERMIT, regex="_52:1[0-9]_")
        predicate = space.community_entry_pred(entry)
        witness = next(
            c for c in space.communities if community_regex_matches("_52:1[0-9]_", c)
        )
        carrying = space.encode_concrete(Prefix.parse("9.9.9.0/24"), {witness})
        empty = space.encode_concrete(Prefix.parse("9.9.9.0/24"), ())
        assert bool(carrying & predicate)
        assert not bool(empty & predicate)

    def test_unknown_community_rejected(self):
        space = _empty_space()
        with pytest.raises(KeyError):
            space.community_pred(Community.parse("9:9"))

    def test_list_first_match(self):
        community = Community.parse("1:1")
        entries = (
            CommunityListEntry(Action.DENY, frozenset({community})),
            CommunityListEntry(Action.PERMIT, frozenset({community})),
        )
        route_map = _map_with_communities(community)
        space = RouteSpace([route_map])
        predicate = space.community_list_pred(CommunityList("C", entries))
        carrying = space.encode_concrete(Prefix.parse("9.9.9.0/24"), {community})
        assert not bool(carrying & predicate)


class TestAsPathPred:
    def test_same_regex_shares_variable(self):
        as_path_list = AsPathList("A", (AsPathListEntry(Action.PERMIT, "_100_"),))
        route_map = RouteMap(
            "P", (RouteMapClause("c", Action.PERMIT, (MatchAsPath(as_path_list),)),)
        )
        space = RouteSpace([route_map, route_map])
        assert len(space.as_path_vars) == 1
        predicate = space.as_path_list_pred(as_path_list)
        assert predicate == space.as_path_vars["_100_"]


class TestProtocolAndTag:
    def test_protocol_pred(self):
        space = _empty_space()
        static = space.protocol_pred("static")
        bgp = space.protocol_pred("bgp")
        assert not static.intersects(bgp)
        with pytest.raises(KeyError):
            space.protocol_pred("rip")

    def test_tag_pred(self):
        space = _empty_space()
        assert not space.tag_pred(7).intersects(space.tag_pred(8))
        assert space.tag_pred(7).intersects(space.universe)


class TestProjection:
    def test_project_to_prefix_drops_other_dims(self):
        community = Community.parse("1:1")
        route_map = _map_with_communities(community)
        space = RouteSpace([route_map])
        mixed = space.range_pred(PrefixRange.parse("10.0.0.0/8 : 8-32")) & space.community_pred(
            community
        )
        projected = space.project_to_prefix(mixed)
        assert projected == space.range_pred(PrefixRange.parse("10.0.0.0/8 : 8-32"))

    def test_prefix_vars_partition(self):
        space = _empty_space()
        prefix_vars = set(space.prefix_var_indices())
        other_vars = set(space.non_prefix_var_indices())
        assert prefix_vars.isdisjoint(other_vars)
        assert prefix_vars | other_vars == set(range(space.manager.num_vars))


class TestDecode:
    def test_masks_bits_beyond_length(self):
        route_map = _map_with_communities(Community.parse("1:1"))
        space = RouteSpace([route_map])
        model = {index: True for index in range(space.manager.num_vars)}
        # force length to 8: length bits 001000
        for position, bit in zip(space.length.var_indices, [0, 0, 1, 0, 0, 0]):
            model[position] = bool(bit)
        decoded = space.decode(model)
        assert decoded.prefix.length == 8
        assert decoded.prefix.network == 0xFF000000
        assert decoded.communities == frozenset({Community.parse("1:1")})

    def test_protocol_decode(self):
        space = _empty_space()
        model = {index: False for index in range(space.manager.num_vars)}
        assert space.decode(model).protocol == ROUTE_PROTOCOLS[0]
