"""Tests for ACL path equivalence classes: the §3.1 partition invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import PacketSpace, acl_equivalence_classes, shadowed_lines
from repro.model import Acl, AclAction, AclLine, IpWildcard, Prefix
from repro.workloads.acl_gen import random_rules


def _random_acl(seed, size):
    generator = random.Random(seed)
    return Acl(name="T", lines=tuple(random_rules(size, generator)))


class TestPartitionInvariants:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=25))
    @settings(max_examples=20, deadline=None)
    def test_disjoint_and_covering(self, seed, size):
        """The class predicates partition the whole packet space (§3.1)."""
        space = PacketSpace()
        classes = acl_equivalence_classes(space, _random_acl(seed, size))
        union = space.manager.false
        for index, cls in enumerate(classes):
            assert not cls.predicate.is_false()
            for other in classes[index + 1 :]:
                assert not cls.predicate.intersects(other.predicate)
            union = union | cls.predicate
        assert union.is_true()

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_class_action_matches_oracle(self, seed):
        """Any packet in a class gets exactly that class's action from the
        concrete first-match evaluation."""
        space = PacketSpace()
        acl = _random_acl(seed, 15)
        classes = acl_equivalence_classes(space, acl)
        for cls in classes:
            model = cls.predicate.any_model()
            total = {
                index: model.get(index, False)
                for index in range(space.manager.num_vars)
            }
            packet = space.decode(total)
            expected = acl.evaluate_concrete(
                packet.src_ip,
                packet.dst_ip,
                packet.protocol,
                packet.src_port,
                packet.dst_port,
                packet.icmp_type,
            )
            assert cls.action is expected


class TestClassStructure:
    def test_one_class_per_reachable_line_plus_default(self):
        space = PacketSpace()
        acl = Acl(
            name="T",
            lines=(
                AclLine(
                    action=AclAction.DENY,
                    src=IpWildcard.from_prefix(Prefix.parse("10.0.0.0/8")),
                ),
                AclLine(action=AclAction.PERMIT, protocol=6),
            ),
        )
        classes = acl_equivalence_classes(space, acl)
        assert len(classes) == 3
        assert [c.index for c in classes] == [0, 1, 2]
        assert classes[2].is_default

    def test_shadowed_line_produces_no_class(self):
        space = PacketSpace()
        acl = Acl(
            name="T",
            lines=(
                AclLine(action=AclAction.PERMIT),  # matches everything
                AclLine(action=AclAction.DENY, protocol=6),  # unreachable
            ),
        )
        classes = acl_equivalence_classes(space, acl)
        assert len(classes) == 1
        assert classes[0].action is AclAction.PERMIT

    def test_no_default_class_when_lines_cover(self):
        space = PacketSpace()
        acl = Acl(name="T", lines=(AclLine(action=AclAction.PERMIT),))
        classes = acl_equivalence_classes(space, acl)
        assert not any(c.is_default for c in classes)

    def test_empty_acl_is_one_default_class(self):
        space = PacketSpace()
        classes = acl_equivalence_classes(space, Acl(name="T"))
        assert len(classes) == 1
        assert classes[0].is_default
        assert classes[0].predicate.is_true()

    def test_classes_carry_policy_and_source(self):
        from repro.model import SourceSpan

        space = PacketSpace()
        line = AclLine(
            action=AclAction.DENY,
            protocol=6,
            source=SourceSpan("f.cfg", 7, 7, ("deny tcp any any",)),
        )
        classes = acl_equivalence_classes(space, Acl(name="FILTER", lines=(line,)))
        assert classes[0].policy_name == "FILTER"
        assert classes[0].source.start_line == 7


class TestShadowedLines:
    def test_reports_shadowed(self):
        space = PacketSpace()
        acl = Acl(
            name="T",
            lines=(
                AclLine(action=AclAction.PERMIT, protocol=6),
                AclLine(action=AclAction.DENY, protocol=6),  # shadowed
                AclLine(action=AclAction.DENY, protocol=17),  # reachable
            ),
        )
        shadowed = shadowed_lines(space, acl)
        assert len(shadowed) == 1
        assert shadowed[0].protocol == 6
        assert shadowed[0].action is AclAction.DENY

    def test_none_shadowed(self):
        space = PacketSpace()
        acl = Acl(name="T", lines=(AclLine(action=AclAction.PERMIT, protocol=6),))
        assert shadowed_lines(space, acl) == []
