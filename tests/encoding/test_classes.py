"""Tests for equivalence-class value types."""

from repro.bdd import BddManager
from repro.encoding import EquivalenceClass, RouteMapAction
from repro.model import Action, SetCommunities, SetLocalPref, SetMed, SourceSpan
from repro.model import Community


class TestRouteMapAction:
    def test_deny_discards_sets(self):
        action = RouteMapAction(Action.DENY, (SetLocalPref(30),))
        assert action.sets == ()
        assert action.describe() == "REJECT"

    def test_permit_keeps_sets(self):
        action = RouteMapAction(Action.PERMIT, (SetLocalPref(30),))
        assert action.describe() == "SET LOCAL PREF 30\nACCEPT"

    def test_set_order_is_canonicalized(self):
        first = RouteMapAction(Action.PERMIT, (SetLocalPref(30), SetMed(5)))
        second = RouteMapAction(Action.PERMIT, (SetMed(5), SetLocalPref(30)))
        assert first == second

    def test_different_values_differ(self):
        assert RouteMapAction(Action.PERMIT, (SetLocalPref(30),)) != RouteMapAction(
            Action.PERMIT, (SetLocalPref(31),)
        )

    def test_deny_actions_equal_regardless_of_sets(self):
        assert RouteMapAction(Action.DENY, (SetLocalPref(1),)) == RouteMapAction(
            Action.DENY, (SetMed(9),)
        )

    def test_permit_vs_deny_differ(self):
        assert RouteMapAction(Action.PERMIT) != RouteMapAction(Action.DENY)

    def test_community_sets_compare_by_value(self):
        one = RouteMapAction(
            Action.PERMIT,
            (SetCommunities(frozenset({Community.parse("1:1")})),),
        )
        other = RouteMapAction(
            Action.PERMIT,
            (SetCommunities(frozenset({Community.parse("1:1")})),),
        )
        assert one == other


class TestEquivalenceClassText:
    def _class(self, **kwargs):
        manager = BddManager()
        defaults = dict(
            predicate=manager.true,
            action=RouteMapAction(Action.PERMIT),
            policy_name="POL",
            step_name="clause 10",
        )
        defaults.update(kwargs)
        return EquivalenceClass(**defaults)

    def test_text_prefers_source(self):
        span = SourceSpan("f.cfg", 1, 2, ("line one", "line two"))
        cls = self._class(source=span)
        assert cls.text() == "line one\nline two"

    def test_text_falls_back_to_step_name(self):
        assert self._class().text() == "clause 10"

    def test_default_class_text(self):
        cls = self._class(is_default=True, step_name="default deny")
        assert "POL" in cls.text()
