"""Tests for the specialized BDD kernels and their compatibility flag.

Covers:

* fast-kernel vs generic-ite equivalence on randomized formulas,
* the cache-statistics API (``BddManager.stats`` / ``reset_stats``),
* commutative cache-key sharing and the bidirectional negation cache,
* the short-circuit intersection kernel,
* direct cube and threshold construction,
* deep-chain regressions: every traversal must survive BDDs far deeper
  than the default Python recursion limit.
"""

import random
import sys

import pytest

from repro.bdd import BddManager, BitVector

DEEP = 2400  # comfortably above the default recursion limit of 1000


def random_formula(manager, variables, rng, depth=0):
    """A random formula over ``variables`` using the public connectives."""
    if depth > 4 or rng.random() < 0.3:
        return rng.choice(variables)
    op = rng.randrange(5)
    left = random_formula(manager, variables, rng, depth + 1)
    if op == 0:
        return ~left
    right = random_formula(manager, variables, rng, depth + 1)
    if op == 1:
        return left & right
    if op == 2:
        return left | right
    if op == 3:
        return left ^ right
    return left - right


class TestFastCompatEquivalence:
    def test_random_formulas_agree(self):
        fast = BddManager(fast_kernels=True)
        compat = BddManager(fast_kernels=False)
        fast_vars = fast.new_vars(8)
        compat_vars = compat.new_vars(8)
        rng = random.Random(42)
        for trial in range(60):
            seed = rng.randrange(1 << 30)
            f = random_formula(fast, fast_vars, random.Random(seed))
            c = random_formula(compat, compat_vars, random.Random(seed))
            assert f.satcount(8) == c.satcount(8)
            # spot-check pointwise on a few assignments
            check = random.Random(seed + 1)
            for _ in range(10):
                model = {i: check.random() < 0.5 for i in range(8)}
                assert fast.restrict(f, model) == fast.constant(
                    compat.restrict(c, model).is_true()
                )

    def test_flag_default_and_compat_mode(self):
        assert BddManager().fast_kernels is True
        compat = BddManager(fast_kernels=False)
        a, b = compat.new_vars(2)
        _ = a & b
        stats = compat.stats()
        assert stats["fast_kernels"] is False
        assert stats["caches"]["and"]["misses"] == 0  # all routed through ite
        assert stats["caches"]["ite"]["misses"] > 0


class TestStats:
    def test_counters_and_entries(self):
        manager = BddManager()
        a, b = manager.new_vars(2)
        first = a & b
        stats = manager.stats()
        assert stats["caches"]["and"]["misses"] == 1
        assert stats["caches"]["and"]["entries"] == 1
        second = a & b  # top-level cache hit
        assert second == first
        stats = manager.stats()
        assert stats["caches"]["and"]["hits"] == 1
        assert stats["caches"]["and"]["misses"] == 1
        assert stats["node_count"] == len(manager._var)
        assert stats["num_vars"] == 2

    def test_reset_stats_keeps_caches(self):
        manager = BddManager()
        a, b = manager.new_vars(2)
        _ = a & b
        manager.reset_stats()
        stats = manager.stats()
        assert stats["caches"]["and"]["hits"] == 0
        assert stats["caches"]["and"]["misses"] == 0
        # cache contents survive: re-asking is a hit, not a recompute
        _ = a & b
        assert manager.stats()["caches"]["and"]["hits"] == 1

    def test_commutative_key_sharing(self):
        manager = BddManager()
        a, b = manager.new_vars(2)
        assert (a & b) == (b & a)
        stats = manager.stats()
        assert stats["caches"]["and"]["misses"] == 1
        assert stats["caches"]["and"]["hits"] == 1
        assert (a | b) == (b | a)
        stats = manager.stats()
        assert stats["caches"]["or"]["misses"] == 1
        assert stats["caches"]["or"]["hits"] == 1

    def test_negation_cache_is_bidirectional(self):
        manager = BddManager()
        a, b = manager.new_vars(2)
        f = a & b
        g = ~f
        assert manager.stats()["caches"]["not"]["misses"] > 0
        manager.reset_stats()
        assert ~g == f  # involution answered from cache
        assert manager.stats()["caches"]["not"]["hits"] == 1
        assert manager.stats()["caches"]["not"]["misses"] == 0


class TestIntersects:
    def test_agrees_with_product_emptiness(self):
        fast = BddManager(fast_kernels=True)
        variables = fast.new_vars(10)
        rng = random.Random(7)
        for _ in range(40):
            f = random_formula(fast, variables, rng)
            g = random_formula(fast, variables, rng)
            assert f.intersects(g) == (not (f & g).is_false())

    def test_terminals(self):
        manager = BddManager()
        (a,) = manager.new_vars(1)
        assert not manager.false.intersects(a)
        assert manager.true.intersects(a)
        assert a.intersects(a)
        assert not a.intersects(~a)

    def test_disjoint_pairs_are_cached(self):
        manager = BddManager()
        a, b = manager.new_vars(2)
        manager.reset_stats()
        assert not (a & b).intersects(~a & ~b)
        before = manager.stats()["caches"]["intersect"]
        assert not (a & b).intersects(~a & ~b)  # answered from disjoint cache
        after = manager.stats()["caches"]["intersect"]
        assert after["hits"] > before["hits"]


class TestCube:
    def test_cube_matches_conjunction(self):
        manager = BddManager()
        variables = manager.new_vars(6)
        expected = variables[0] & ~variables[2] & variables[5]
        built = manager.cube({0: True, 2: False, 5: True})
        assert built == expected

    def test_conflicting_phases_yield_false(self):
        manager = BddManager()
        manager.new_vars(3)
        assert manager.cube([(1, True), (1, False)]).is_false()

    def test_unallocated_variable_rejected(self):
        manager = BddManager()
        manager.new_vars(2)
        with pytest.raises(IndexError):
            manager.cube({5: True})

    def test_compat_mode_agrees(self):
        compat = BddManager(fast_kernels=False)
        variables = compat.new_vars(4)
        assert compat.cube({1: True, 3: False}) == variables[1] & ~variables[3]


class TestThreshold:
    @pytest.mark.parametrize("bound", [0, 1, 7, 8, 200, 255])
    def test_threshold_matches_apply_construction(self, bound):
        fast = BddManager(fast_kernels=True)
        compat = BddManager(fast_kernels=False)
        fv = BitVector.allocate(fast, "x", 8)
        cv = BitVector.allocate(compat, "x", 8)
        assert fv.le_const(bound).satcount(8) == cv.le_const(bound).satcount(8)
        assert fv.ge_const(bound).satcount(8) == cv.ge_const(bound).satcount(8)
        assert fv.le_const(bound).satcount(8) == bound + 1
        assert fv.ge_const(bound).satcount(8) == 256 - bound

    def test_threshold_validates_inputs(self):
        manager = BddManager()
        manager.new_vars(4)
        with pytest.raises(ValueError):
            manager.threshold([0, 1], 4, at_least=True)  # bound too wide
        with pytest.raises(ValueError):
            manager.threshold([1, 0], 1, at_least=True)  # not increasing
        with pytest.raises(IndexError):
            manager.threshold([0, 9], 1, at_least=True)  # unallocated


class TestDeepChains:
    """Regressions: no traversal may recurse per BDD level."""

    @pytest.fixture(scope="class")
    def deep(self):
        manager = BddManager()
        variables = manager.new_vars(DEEP)
        chain = manager.cube({i: True for i in range(DEEP)})
        return manager, variables, chain

    def test_deep_connectives(self, deep):
        manager, variables, chain = deep
        limit = sys.getrecursionlimit()
        assert DEEP > limit  # the regression is meaningful
        shifted = manager.cube({i: True for i in range(1, DEEP)})
        assert (chain & shifted) == chain
        assert (chain | chain) == chain
        assert not (chain ^ chain)
        assert (~chain | chain).is_true()
        assert (chain - shifted).is_false()

    def test_deep_iter_cubes(self, deep):
        manager, variables, chain = deep
        cubes = list(manager.iter_cubes(chain))
        assert len(cubes) == 1
        assert len(cubes[0]) == DEEP
        assert all(cubes[0][i] for i in range(DEEP))

    def test_deep_quantification(self, deep):
        manager, variables, chain = deep
        assert manager.exists(chain, list(range(DEEP))).is_true()
        assert manager.forall(chain, [0]).is_false()

    def test_deep_queries(self, deep):
        manager, variables, chain = deep
        assert chain.satcount(DEEP) == 1
        assert chain.support() == list(range(DEEP))
        assert chain.any_model() is not None
        assert ~chain  # deep negation

    def test_deep_compat_mode(self):
        compat = BddManager(fast_kernels=False)
        compat.new_vars(DEEP)
        chain = compat.cube({i: True for i in range(DEEP)})
        shifted = compat.cube({i: True for i in range(1, DEEP)})
        assert (chain & shifted) == chain
        assert list(compat.iter_cubes(chain))[0][DEEP - 1] is True
