"""Unit + property tests for BitVector predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager, BitVector

WIDTH = 8


@pytest.fixture
def field():
    return BitVector.allocate(BddManager(), "f", WIDTH)


def value_set(field, predicate):
    """Brute-force decode: the set of field values satisfying predicate."""
    manager = field.manager
    result = set()
    for value in range(1 << WIDTH):
        assignment = {
            field.var_indices[i]: bool((value >> (WIDTH - 1 - i)) & 1)
            for i in range(WIDTH)
        }
        if manager.restrict(predicate, assignment).is_true():
            result.add(value)
    return result


class TestConstruction:
    def test_allocate_width(self, field):
        assert field.width == WIDTH
        assert field.max_value == 255

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector.allocate(BddManager(), "bad", 0)

    def test_empty_variables_rejected(self):
        with pytest.raises(ValueError):
            BitVector(BddManager(), "bad", [])


class TestEqConst:
    def test_single_value(self, field):
        assert value_set(field, field.eq_const(37)) == {37}

    def test_extremes(self, field):
        assert value_set(field, field.eq_const(0)) == {0}
        assert value_set(field, field.eq_const(255)) == {255}

    def test_out_of_range_rejected(self, field):
        with pytest.raises(ValueError):
            field.eq_const(256)
        with pytest.raises(ValueError):
            field.eq_const(-1)

    def test_neq(self, field):
        assert value_set(field, field.neq_const(7)) == set(range(256)) - {7}


class TestComparisons:
    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_le_const(self, bound):
        field = BitVector.allocate(BddManager(), "f", WIDTH)
        assert value_set(field, field.le_const(bound)) == set(range(bound + 1))

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_ge_const(self, bound):
        field = BitVector.allocate(BddManager(), "f", WIDTH)
        assert value_set(field, field.ge_const(bound)) == set(range(bound, 256))

    @given(
        st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255)
    )
    @settings(max_examples=40, deadline=None)
    def test_interval(self, a, b):
        low, high = min(a, b), max(a, b)
        field = BitVector.allocate(BddManager(), "f", WIDTH)
        assert value_set(field, field.interval(low, high)) == set(range(low, high + 1))

    def test_empty_interval_rejected(self, field):
        with pytest.raises(ValueError):
            field.interval(5, 4)


class TestPrefixMatch:
    def test_full_width_is_equality(self, field):
        assert field.prefix_match(42, WIDTH) == field.eq_const(42)

    def test_zero_width_matches_all(self, field):
        assert field.prefix_match(0, 0).is_true()

    @given(
        st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=8)
    )
    @settings(max_examples=40, deadline=None)
    def test_prefix_match_semantics(self, value, bits):
        field = BitVector.allocate(BddManager(), "f", WIDTH)
        expected = {
            candidate
            for candidate in range(256)
            if bits == 0 or (candidate >> (WIDTH - bits)) == (value >> (WIDTH - bits))
        }
        assert value_set(field, field.prefix_match(value, bits)) == expected

    def test_bits_out_of_range_rejected(self, field):
        with pytest.raises(ValueError):
            field.prefix_match(0, 9)


class TestVectorEquality:
    def test_eq_same_width(self):
        manager = BddManager()
        a = BitVector.allocate(manager, "a", 3)
        b = BitVector.allocate(manager, "b", 3)
        equal = a.eq(b)
        for value in range(8):
            restricted = manager.restrict(
                equal,
                {
                    **{a.var_indices[i]: bool((value >> (2 - i)) & 1) for i in range(3)},
                    **{b.var_indices[i]: bool((value >> (2 - i)) & 1) for i in range(3)},
                },
            )
            assert restricted.is_true()
        assert equal.satcount(6) == 8

    def test_eq_width_mismatch_rejected(self):
        manager = BddManager()
        a = BitVector.allocate(manager, "a", 3)
        b = BitVector.allocate(manager, "b", 4)
        with pytest.raises(ValueError):
            a.eq(b)


class TestModelDecoding:
    def test_value_of_roundtrip(self, field):
        predicate = field.eq_const(172)
        model = predicate.any_model()
        assert field.value_of(model) == 172

    def test_value_of_defaults(self, field):
        assert field.value_of({}, default_bit=False) == 0
        assert field.value_of({}, default_bit=True) == 255

    def test_free_bits(self, field):
        predicate = field.prefix_match(0b10100000, 3)
        model = predicate.any_model()
        free = field.free_bits(model)
        assert set(free) == set(range(3, WIDTH))
