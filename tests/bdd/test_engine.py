"""Unit tests for the ROBDD engine core."""

import pytest

from repro.bdd import BddManager


@pytest.fixture
def manager():
    return BddManager()


class TestTerminals:
    def test_true_false_distinct(self, manager):
        assert manager.true != manager.false

    def test_truthiness(self, manager):
        assert manager.true
        assert not manager.false

    def test_predicates(self, manager):
        assert manager.true.is_true()
        assert not manager.true.is_false()
        assert manager.false.is_false()
        assert not manager.false.is_true()

    def test_constant(self, manager):
        assert manager.constant(True) == manager.true
        assert manager.constant(False) == manager.false


class TestVariables:
    def test_new_var_allocates_in_order(self, manager):
        x = manager.new_var()
        y = manager.new_var()
        assert x.support() == [0]
        assert y.support() == [1]
        assert manager.num_vars == 2

    def test_new_vars_bulk(self, manager):
        variables = manager.new_vars(5)
        assert [v.support()[0] for v in variables] == [0, 1, 2, 3, 4]

    def test_new_vars_negative_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.new_vars(-1)

    def test_var_literal_is_shared(self, manager):
        x = manager.new_var()
        assert manager.var(0) == x

    def test_nvar_is_negation(self, manager):
        x = manager.new_var()
        assert manager.nvar(0) == ~x

    def test_unallocated_var_rejected(self, manager):
        with pytest.raises(IndexError):
            manager.var(0)
        manager.new_var()
        with pytest.raises(IndexError):
            manager.nvar(3)


class TestConnectives:
    def test_and_truth_table(self, manager):
        x, y = manager.new_vars(2)
        conjunction = x & y
        assert manager.restrict(conjunction, {0: True, 1: True}).is_true()
        assert manager.restrict(conjunction, {0: True, 1: False}).is_false()
        assert manager.restrict(conjunction, {0: False, 1: True}).is_false()
        assert manager.restrict(conjunction, {0: False, 1: False}).is_false()

    def test_or_truth_table(self, manager):
        x, y = manager.new_vars(2)
        disjunction = x | y
        assert manager.restrict(disjunction, {0: False, 1: False}).is_false()
        assert manager.restrict(disjunction, {0: True, 1: False}).is_true()

    def test_xor(self, manager):
        x, y = manager.new_vars(2)
        exclusive = x ^ y
        assert manager.restrict(exclusive, {0: True, 1: True}).is_false()
        assert manager.restrict(exclusive, {0: True, 1: False}).is_true()

    def test_not_involution(self, manager):
        x = manager.new_var()
        assert ~~x == x

    def test_difference(self, manager):
        x, y = manager.new_vars(2)
        assert (x - y) == (x & ~y)

    def test_de_morgan(self, manager):
        x, y = manager.new_vars(2)
        assert ~(x & y) == (~x | ~y)
        assert ~(x | y) == (~x & ~y)

    def test_absorption(self, manager):
        x, y = manager.new_vars(2)
        assert (x & (x | y)) == x
        assert (x | (x & y)) == x

    def test_excluded_middle(self, manager):
        x = manager.new_var()
        assert (x | ~x).is_true()
        assert (x & ~x).is_false()

    def test_ite(self, manager):
        x, y, z = manager.new_vars(3)
        result = manager.ite(x, y, z)
        assert manager.restrict(result, {0: True}) == y
        assert manager.restrict(result, {0: False}) == z

    def test_conjoin_disjoin(self, manager):
        variables = manager.new_vars(4)
        conjunction = manager.conjoin(variables)
        assert conjunction.satcount() == 1
        disjunction = manager.disjoin(variables)
        assert disjunction.satcount() == 15

    def test_conjoin_empty_is_true(self, manager):
        assert manager.conjoin([]).is_true()

    def test_disjoin_empty_is_false(self, manager):
        assert manager.disjoin([]).is_false()

    def test_cross_manager_rejected(self, manager):
        other = BddManager()
        x = manager.new_var()
        y = other.new_var()
        with pytest.raises(ValueError):
            x & y  # noqa: B018 - exercised for the exception


class TestHashConsing:
    def test_equal_functions_share_nodes(self, manager):
        x, y = manager.new_vars(2)
        first = (x & y) | (x & ~y)
        assert first == x

    def test_node_count_grows_monotonically(self, manager):
        before = manager.node_count
        x, y = manager.new_vars(2)
        _ = x & y
        assert manager.node_count > before

    def test_repeated_op_adds_no_nodes(self, manager):
        x, y = manager.new_vars(2)
        _ = x & y
        count = manager.node_count
        _ = x & y
        assert manager.node_count == count


class TestRestrict:
    def test_restrict_to_constant(self, manager):
        x, y = manager.new_vars(2)
        f = x & y
        assert manager.restrict(f, {0: True, 1: True}).is_true()

    def test_restrict_partial(self, manager):
        x, y = manager.new_vars(2)
        f = x & y
        assert manager.restrict(f, {0: True}) == y

    def test_restrict_empty_is_identity(self, manager):
        x = manager.new_var()
        assert manager.restrict(x, {}) == x

    def test_restrict_irrelevant_var(self, manager):
        x, y = manager.new_vars(2)
        assert manager.restrict(x, {1: True}) == x


class TestQuantification:
    def test_exists_removes_var(self, manager):
        x, y = manager.new_vars(2)
        f = x & y
        assert manager.exists(f, [0]) == y

    def test_exists_totally(self, manager):
        x, y = manager.new_vars(2)
        f = x & y
        assert manager.exists(f, [0, 1]).is_true()

    def test_exists_of_false(self, manager):
        manager.new_vars(2)
        assert manager.exists(manager.false, [0]).is_false()

    def test_forall(self, manager):
        x, y = manager.new_vars(2)
        f = x | y
        assert manager.forall(f, [0]) == y
        assert manager.forall(x | ~x, [0]).is_true()

    def test_exists_forall_duality(self, manager):
        x, y, z = manager.new_vars(3)
        f = (x & y) | z
        assert manager.exists(f, [1]) == ~manager.forall(~f, [1])

    def test_quantify_no_vars_is_identity(self, manager):
        x = manager.new_var()
        assert manager.exists(x, []) == x


class TestSatCount:
    def test_terminal_counts(self, manager):
        manager.new_vars(3)
        assert manager.true.satcount() == 8
        assert manager.false.satcount() == 0

    def test_single_var(self, manager):
        x = manager.new_var()
        assert x.satcount() == 1
        manager.new_var()
        assert x.satcount() == 2  # free second variable doubles the count

    def test_xor_half(self, manager):
        x, y = manager.new_vars(2)
        assert (x ^ y).satcount() == 2

    def test_explicit_nvars(self, manager):
        x = manager.new_var()
        assert x.satcount(nvars=4) == 8

    def test_negative_nvars_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.true.satcount(-1)


class TestQueries:
    def test_support(self, manager):
        x, y, z = manager.new_vars(3)
        assert (x & z).support() == [0, 2]
        assert manager.true.support() == []

    def test_any_model_satisfies(self, manager):
        x, y = manager.new_vars(2)
        f = x & ~y
        model = f.any_model()
        assert model is not None
        assert manager.restrict(f, model).is_true()

    def test_any_model_unsat(self, manager):
        assert manager.false.any_model() is None

    def test_any_model_deterministic(self, manager):
        x, y = manager.new_vars(2)
        f = x | y
        assert f.any_model() == f.any_model()

    def test_implies(self, manager):
        x, y = manager.new_vars(2)
        assert (x & y).implies(x)
        assert not x.implies(x & y)

    def test_intersects(self, manager):
        x, y = manager.new_vars(2)
        assert x.intersects(y)
        assert not x.intersects(~x)

    def test_iter_cubes_disjoint_cover(self, manager):
        x, y, z = manager.new_vars(3)
        f = (x & y) | (~x & z)
        cubes = list(manager.iter_cubes(f))
        union = manager.false
        for index, cube in enumerate(cubes):
            as_bdd = manager.conjoin(
                (manager.var(v) if value else manager.nvar(v))
                for v, value in cube.items()
            )
            for other in cubes[index + 1 :]:
                other_bdd = manager.conjoin(
                    (manager.var(v) if value else manager.nvar(v))
                    for v, value in other.items()
                )
                assert not as_bdd.intersects(other_bdd)
            union = union | as_bdd
        assert union == f

    def test_dag_size(self, manager):
        x, y = manager.new_vars(2)
        assert manager.dag_size(manager.true) == 0
        assert manager.dag_size(x) == 1
        assert manager.dag_size(x & y) == 2
