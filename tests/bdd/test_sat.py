"""Tests for witness extraction: complete/uniform/cube models, blocking."""

import random

import pytest

from repro.bdd import (
    BddManager,
    BitVector,
    blocking_clause,
    complete_model,
    cube_count,
    extract_field_values,
)


@pytest.fixture
def manager():
    return BddManager()


class TestCompleteModel:
    def test_totality(self, manager):
        x, y, z = manager.new_vars(3)
        model = complete_model(x & ~z)
        assert set(model) == {0, 1, 2}
        assert model[0] is True
        assert model[2] is False

    def test_unsat_returns_none(self, manager):
        manager.new_vars(2)
        assert complete_model(manager.false) is None

    def test_unconstrained_defaults_false(self, manager):
        x, y = manager.new_vars(2)
        model = complete_model(x)
        assert model[1] is False

    def test_explicit_total_vars(self, manager):
        x = manager.new_var()
        model = complete_model(x, total_vars=5)
        assert set(model) == set(range(5))


class TestExtractFieldValues:
    def test_decode_two_fields(self, manager):
        a = BitVector.allocate(manager, "a", 4)
        b = BitVector.allocate(manager, "b", 4)
        model = complete_model(a.eq_const(9) & b.eq_const(3))
        assert extract_field_values(model, [a, b]) == {"a": 9, "b": 3}


class TestCubeCount:
    def test_counts_paths(self, manager):
        x, y = manager.new_vars(2)
        assert cube_count(x) == 1
        assert cube_count(x ^ y) == 2
        assert cube_count(manager.false) == 0

    def test_limit_stops_early(self, manager):
        variables = manager.new_vars(6)
        parity = variables[0]
        for v in variables[1:]:
            parity = parity ^ v
        assert cube_count(parity, limit=5) == 5


class TestBlockingClause:
    def test_excludes_exactly_that_model(self, manager):
        x, y = manager.new_vars(2)
        f = x | y
        model = complete_model(f)
        blocked = f & blocking_clause(manager, model, [0, 1])
        assert blocked.satcount() == f.satcount() - 1
        assert manager.restrict(blocked, model).is_false()

    def test_exhaustion(self, manager):
        x, y = manager.new_vars(2)
        remaining = x | y
        seen = []
        while remaining:
            model = complete_model(remaining)
            seen.append(tuple(sorted(model.items())))
            remaining = remaining & blocking_clause(manager, model, [0, 1])
        assert len(seen) == 3
        assert len(set(seen)) == 3

    def test_requires_assigned_vars(self, manager):
        manager.new_vars(2)
        with pytest.raises(KeyError):
            blocking_clause(manager, {0: True}, [0, 1])

    def test_requires_some_vars(self, manager):
        with pytest.raises(ValueError):
            blocking_clause(manager, {}, [])


class TestRandomModels:
    def test_uniform_model_is_a_model(self, manager):
        x, y, z = manager.new_vars(3)
        f = (x & y) | z
        rng = random.Random(7)
        for _ in range(50):
            model = manager.uniform_model(f, rng)
            assert manager.restrict(f, model).is_true()
            assert set(model) == {0, 1, 2}

    def test_uniform_model_unsat(self, manager):
        assert manager.uniform_model(manager.false, random.Random(0)) is None

    def test_uniform_model_distribution(self, manager):
        """Over many draws every satisfying point should appear with
        roughly equal frequency (chi-square-free sanity bound)."""
        x, y = manager.new_vars(2)
        f = x | y  # three satisfying points
        rng = random.Random(42)
        counts = {}
        draws = 3000
        for _ in range(draws):
            model = manager.uniform_model(f, rng)
            key = (model[0], model[1])
            counts[key] = counts.get(key, 0) + 1
        assert set(counts) == {(True, True), (True, False), (False, True)}
        for count in counts.values():
            assert abs(count - draws / 3) < draws * 0.08

    def test_random_cube_is_consistent(self, manager):
        x, y, z = manager.new_vars(3)
        f = (x & y) | (~x & z)
        rng = random.Random(3)
        for _ in range(30):
            cube = manager.random_cube(f, rng)
            restricted = manager.restrict(f, cube)
            assert restricted.is_true()

    def test_random_cube_unsat(self, manager):
        assert manager.random_cube(manager.false, random.Random(0)) is None

    def test_random_cube_model_totality(self, manager):
        x, y, z = manager.new_vars(3)
        f = x
        rng = random.Random(5)
        model = manager.random_cube_model(f, rng)
        assert set(model) == {0, 1, 2}
        assert model[0] is True
