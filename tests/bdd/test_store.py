"""Node-store equivalence, growth, budgets, and selection."""

import pytest

from repro.bdd import AnalysisBudgetExceeded, BddManager
from repro.bdd.store import (
    BDD_STORE_ENV,
    DEFAULT_STORE,
    DictNodeStore,
    FlatNodeStore,
    resolve_store,
)


class TestStoreEquivalence:
    """Both stores must assign identical node ids for identical work."""

    def _build(self, manager):
        vars_ = manager.new_vars(8)
        acc = manager.true
        for index, var in enumerate(vars_):
            acc = acc & (var if index % 2 else ~var)
        spread = manager.false
        for index, var in enumerate(vars_):
            spread = spread | (var & vars_[(index + 3) % len(vars_)])
        return [acc, spread, acc ^ spread, spread - acc, ~spread]

    def test_identical_node_ids_across_stores(self):
        flat = BddManager(store="flat")
        dictionary = BddManager(store="dict")
        for from_flat, from_dict in zip(
            self._build(flat), self._build(dictionary)
        ):
            assert from_flat.node == from_dict.node
        assert flat.node_count == dictionary.node_count
        assert flat._store.unique_entries == dictionary._store.unique_entries
        assert flat._store.unique_entries == flat.node_count - 2

    def test_identical_under_compat_kernels(self):
        flat = BddManager(store="flat", fast_kernels=False)
        dictionary = BddManager(store="dict", fast_kernels=False)
        for from_flat, from_dict in zip(
            self._build(flat), self._build(dictionary)
        ):
            assert from_flat.node == from_dict.node

    def test_hash_consing_across_table_growth(self):
        # Push well past the initial table capacity so the flat store
        # rehashes several times; find-or-create must keep returning the
        # original ids afterwards.
        manager = BddManager(store="flat")
        vars_ = manager.new_vars(16)
        seen = {}
        for i in range(16):
            for j in range(16):
                if i == j:
                    continue
                node = (vars_[i] & ~vars_[j] | vars_[j] & ~vars_[i]).node
                seen[(i, j)] = node
        threshold_nodes = [
            manager.threshold(list(range(16)), bound, at_least=True).node
            for bound in range(0, 1 << 16, 257)
        ]
        for (i, j), node in seen.items():
            rebuilt = (vars_[i] & ~vars_[j] | vars_[j] & ~vars_[i]).node
            assert rebuilt == node
        for bound, node in zip(range(0, 1 << 16, 257), threshold_nodes):
            assert (
                manager.threshold(list(range(16)), bound, at_least=True).node
                == node
            )


class TestBudgetHook:
    @pytest.mark.parametrize("kind", ["flat", "dict"])
    def test_node_limit_enforced_inside_kernels(self, kind):
        manager = BddManager(store=kind, node_limit=64)
        vars_ = manager.new_vars(12)
        with pytest.raises(AnalysisBudgetExceeded) as excinfo:
            spread = manager.false
            for index, var in enumerate(vars_):
                spread = spread | (var & vars_[(index + 5) % len(vars_)])
        assert excinfo.value.resource == "nodes"
        # The manager stays usable after the abort.
        manager.set_budget()
        assert (vars_[0] & vars_[1]).satcount(2) == 1

    @pytest.mark.parametrize("kind", ["flat", "dict"])
    def test_no_budget_no_hook(self, kind):
        manager = BddManager(store=kind)
        assert manager._store.budget_check is None
        manager.set_budget(node_limit=1000)
        assert manager._store.budget_check is not None
        manager.set_budget()
        assert manager._store.budget_check is None


class TestResolution:
    def test_default_is_flat(self, monkeypatch):
        monkeypatch.delenv(BDD_STORE_ENV, raising=False)
        assert DEFAULT_STORE == "flat"
        assert isinstance(resolve_store(None), FlatNodeStore)
        assert BddManager().stats()["node_store"] == "flat"

    def test_env_var_selects_store(self, monkeypatch):
        monkeypatch.setenv(BDD_STORE_ENV, "dict")
        assert isinstance(resolve_store(None), DictNodeStore)
        assert BddManager().stats()["node_store"] == "dict"

    def test_names_and_instances(self):
        assert isinstance(resolve_store("flat"), FlatNodeStore)
        assert isinstance(resolve_store("dict"), DictNodeStore)
        store = FlatNodeStore()
        assert resolve_store(store) is store
        with pytest.raises(ValueError, match="unknown BDD node store"):
            resolve_store("btree")
