"""Unit tests for the atomic-predicate partition refinement."""

import pytest

from repro.bdd import (
    ATOM_BUDGET_ENV,
    AtomBudgetExceeded,
    BddManager,
    default_atom_budget,
    refine_partitions,
)
from repro.bdd.atoms import resolve_atom_budget


@pytest.fixture
def manager():
    return BddManager()


def _minterms(manager, variables):
    """All full assignments over ``variables``, as disjoint BDDs."""
    terms = [manager.true]
    for var in variables:
        terms = [t & ~var for t in terms] + [t & var for t in terms]
    return terms


def _grouped(manager, variables, groups):
    """A partition formed by disjoining the given minterm index groups."""
    terms = _minterms(manager, variables)
    return [manager.disjoin([terms[k] for k in group]) for group in groups]


class TestRefinement:
    def test_identical_partitions_resolve_by_node_identity(self, manager):
        preds = _grouped(manager, manager.new_vars(2), [(0, 1), (2,), (3,)])
        refinement = refine_partitions(preds, preds)
        # One atom per class, each the shared predicate itself, found by
        # one dict probe per class — no scanning.
        assert [a.node for a in refinement.atoms] == [p.node for p in preds]
        assert refinement.owner1 == [0, 1, 2]
        assert refinement.owner2 == [0, 1, 2]
        assert refinement.probes == len(preds)
        assert refinement.uncovered == 0

    def test_atoms_are_the_nonempty_cross_intersections(self, manager):
        variables = manager.new_vars(2)
        preds1 = _grouped(manager, variables, [(0, 1), (2, 3)])
        preds2 = _grouped(manager, variables, [(0,), (1, 2), (3,)])
        refinement = refine_partitions(preds1, preds2)
        expected = {
            (i, j): (p & q).node
            for i, p in enumerate(preds1)
            for j, q in enumerate(preds2)
            if not (p & q).is_false()
        }
        got = {
            (refinement.owner1[k], refinement.owner2[k]): atom.node
            for k, atom in enumerate(refinement.atoms)
        }
        assert got == expected

    def test_bitsets_mark_atom_ownership(self, manager):
        variables = manager.new_vars(2)
        preds1 = _grouped(manager, variables, [(0, 1), (2, 3)])
        preds2 = _grouped(manager, variables, [(0,), (1, 2), (3,)])
        refinement = refine_partitions(preds1, preds2)
        for i, bits in enumerate(refinement.bitsets1):
            expected = sum(
                1 << k
                for k, owner in enumerate(refinement.owner1)
                if owner == i
            )
            assert bits == expected
        for j, bits in enumerate(refinement.bitsets2):
            expected = sum(
                1 << k
                for k, owner in enumerate(refinement.owner2)
                if owner == j
            )
            assert bits == expected
        # Each class is exactly the disjunction of its atoms.
        for i, pred in enumerate(preds1):
            owned = [
                atom
                for k, atom in enumerate(refinement.atoms)
                if refinement.owner1[k] == i
            ]
            assert manager.disjoin(owned).node == pred.node

    def test_all_atoms_mask_covers_every_atom(self, manager):
        variables = manager.new_vars(2)
        preds = _grouped(manager, variables, [(0,), (1,), (2, 3)])
        refinement = refine_partitions(preds, preds)
        assert refinement.all_atoms_mask == (1 << len(refinement.atoms)) - 1

    def test_uncovered_remainder_is_counted_not_atomized(self, manager):
        variables = manager.new_vars(1)
        terms = _minterms(manager, variables)
        # Side 2 covers only half the space: the other half of side 1's
        # class cannot belong to any cross pair.
        refinement = refine_partitions([manager.true], [terms[0]])
        assert len(refinement.atoms) == 1
        assert refinement.atoms[0].node == terms[0].node
        assert refinement.uncovered == 1

    def test_false_predicates_are_skipped(self, manager):
        variables = manager.new_vars(1)
        terms = _minterms(manager, variables)
        refinement = refine_partitions(
            [terms[0], manager.false, terms[1]],
            [manager.false, terms[0], terms[1]],
        )
        assert refinement.owner1 == [0, 2]
        assert refinement.owner2 == [1, 2]
        assert refinement.bitsets1[1] == 0
        assert refinement.bitsets2[0] == 0

    def test_deterministic(self, manager):
        variables = manager.new_vars(3)
        preds1 = _grouped(manager, variables, [(0, 1, 2), (3, 4), (5, 6, 7)])
        preds2 = _grouped(manager, variables, [(0,), (1, 2, 3), (4, 5, 6, 7)])
        first = refine_partitions(preds1, preds2)
        second = refine_partitions(preds1, preds2)
        assert [a.node for a in first.atoms] == [a.node for a in second.atoms]
        assert first.owner1 == second.owner1
        assert first.owner2 == second.owner2
        assert first.probes == second.probes

    def test_shifted_partition_scans_stay_local(self, manager):
        # Every class boundary moved by one minterm: no exact matches at
        # all, but alignment still holds, so the cursor keeps the scan
        # linear instead of quadratic.
        variables = manager.new_vars(4)
        count = 8
        groups1 = [(2 * k, 2 * k + 1) for k in range(count)]
        groups2 = [
            ((2 * k + 1) % 16, (2 * k + 2) % 16) for k in range(count)
        ]
        preds1 = _grouped(manager, variables, groups1)
        preds2 = _grouped(manager, variables, groups2)
        refinement = refine_partitions(preds1, preds2)
        assert len(refinement.atoms) == 2 * count
        assert refinement.probes <= 5 * count
        assert refinement.probes < count * count


class TestBudget:
    def test_default_budget(self):
        assert default_atom_budget(2, 2) == 2048
        assert default_atom_budget(1000, 1000) == 8000

    def test_resolve_prefers_argument(self, monkeypatch):
        monkeypatch.setenv(ATOM_BUDGET_ENV, "7")
        assert resolve_atom_budget(3, 10, 10) == 3
        assert resolve_atom_budget(None, 10, 10) == 7
        monkeypatch.delenv(ATOM_BUDGET_ENV)
        assert resolve_atom_budget(None, 10, 10) == 2048

    def test_invalid_env_budget_rejected(self, monkeypatch):
        monkeypatch.setenv(ATOM_BUDGET_ENV, "plenty")
        with pytest.raises(ValueError, match=ATOM_BUDGET_ENV):
            resolve_atom_budget(None, 1, 1)

    def test_quadratic_refinement_trips_the_budget(self, manager):
        # Cross partitions over disjoint variable sets: every pair of
        # classes intersects, so the refinement is genuinely quadratic.
        variables = manager.new_vars(4)
        preds1 = _minterms(manager, variables[:2])
        preds2 = _minterms(manager, variables[2:])
        with pytest.raises(AtomBudgetExceeded) as excinfo:
            refine_partitions(preds1, preds2, atom_budget=8)
        exc = excinfo.value
        assert exc.budget == 8
        assert exc.count1 == 4
        assert exc.count2 == 4
        assert "exceeded the budget of 8 atoms" in str(exc)

    def test_quadratic_refinement_fits_a_large_budget(self, manager):
        variables = manager.new_vars(4)
        preds1 = _minterms(manager, variables[:2])
        preds2 = _minterms(manager, variables[2:])
        refinement = refine_partitions(preds1, preds2, atom_budget=16)
        assert len(refinement.atoms) == 16
        assert refinement.uncovered == 0
