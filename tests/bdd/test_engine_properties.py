"""Property-based tests: the BDD engine against brute-force semantics."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager

NUM_VARS = 5


# A recursive strategy for boolean expression trees over NUM_VARS variables.
def expressions():
    leaves = st.integers(min_value=0, max_value=NUM_VARS - 1).map(lambda i: ("var", i))
    leaves = leaves | st.sampled_from([("const", True), ("const", False)])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        ),
        max_leaves=12,
    )


def build_bdd(manager, variables, expression):
    kind = expression[0]
    if kind == "var":
        return variables[expression[1]]
    if kind == "const":
        return manager.constant(expression[1])
    if kind == "not":
        return ~build_bdd(manager, variables, expression[1])
    left = build_bdd(manager, variables, expression[1])
    right = build_bdd(manager, variables, expression[2])
    if kind == "and":
        return left & right
    if kind == "or":
        return left | right
    return left ^ right


def evaluate(expression, assignment):
    kind = expression[0]
    if kind == "var":
        return assignment[expression[1]]
    if kind == "const":
        return expression[1]
    if kind == "not":
        return not evaluate(expression[1], assignment)
    left = evaluate(expression[1], assignment)
    right = evaluate(expression[2], assignment)
    if kind == "and":
        return left and right
    if kind == "or":
        return left or right
    return left != right


def all_assignments():
    for bits in itertools.product([False, True], repeat=NUM_VARS):
        yield dict(enumerate(bits))


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_bdd_matches_brute_force_semantics(expression):
    manager = BddManager()
    variables = manager.new_vars(NUM_VARS)
    bdd = build_bdd(manager, variables, expression)
    for assignment in all_assignments():
        expected = evaluate(expression, assignment)
        assert manager.restrict(bdd, assignment).is_true() == expected


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_satcount_matches_brute_force(expression):
    manager = BddManager()
    variables = manager.new_vars(NUM_VARS)
    bdd = build_bdd(manager, variables, expression)
    expected = sum(
        1 for assignment in all_assignments() if evaluate(expression, assignment)
    )
    assert bdd.satcount() == expected


@given(expressions(), expressions())
@settings(max_examples=100, deadline=None)
def test_semantic_equality_iff_node_equality(first, second):
    manager = BddManager()
    variables = manager.new_vars(NUM_VARS)
    bdd1 = build_bdd(manager, variables, first)
    bdd2 = build_bdd(manager, variables, second)
    semantically_equal = all(
        evaluate(first, assignment) == evaluate(second, assignment)
        for assignment in all_assignments()
    )
    assert (bdd1 == bdd2) == semantically_equal


@given(expressions(), st.integers(min_value=0, max_value=NUM_VARS - 1))
@settings(max_examples=100, deadline=None)
def test_exists_matches_brute_force(expression, variable):
    manager = BddManager()
    variables = manager.new_vars(NUM_VARS)
    bdd = manager.exists(build_bdd(manager, variables, expression), [variable])
    for assignment in all_assignments():
        low = dict(assignment)
        low[variable] = False
        high = dict(assignment)
        high[variable] = True
        expected = evaluate(expression, low) or evaluate(expression, high)
        assert manager.restrict(bdd, assignment).is_true() == expected


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_any_model_is_a_model(expression):
    manager = BddManager()
    variables = manager.new_vars(NUM_VARS)
    bdd = build_bdd(manager, variables, expression)
    model = bdd.any_model()
    if model is None:
        assert bdd.is_false()
    else:
        assert manager.restrict(bdd, model).is_true()


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_cubes_partition_the_function(expression):
    manager = BddManager()
    variables = manager.new_vars(NUM_VARS)
    bdd = build_bdd(manager, variables, expression)
    covered = set()
    for cube in manager.iter_cubes(bdd):
        free = [v for v in range(NUM_VARS) if v not in cube]
        for bits in itertools.product([False, True], repeat=len(free)):
            assignment = dict(cube)
            assignment.update(zip(free, bits))
            point = tuple(assignment[v] for v in range(NUM_VARS))
            assert point not in covered, "cubes must be disjoint"
            covered.add(point)
    expected = {
        tuple(assignment[v] for v in range(NUM_VARS))
        for assignment in all_assignments()
        if evaluate(expression, assignment)
    }
    assert covered == expected
