"""Shared fixtures for the analysis-service suites.

``http_json`` is a tiny urllib client (no new deps) that returns
``(status, parsed_body)`` and treats HTTP error statuses as data, not
exceptions — backpressure tests assert on 429s.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.workloads.datacenter import gateway_fleet


def http_json(url, body=None, method=None, timeout=30.0):
    """One JSON request; returns (status, decoded body)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        payload = error.read()
        try:
            return error.code, json.loads(payload)
        except ValueError:
            return error.code, {"raw": payload.decode("latin-1")}


def fleet_configs(count=4, outliers=1, rules=6, seed=3):
    """Config texts (wire format) plus the parsed devices behind them."""
    devices, expected_outliers = gateway_fleet(
        count=count, outliers=outliers, rule_count=rules, seed=seed
    )
    configs = [
        {
            "name": f"{device.hostname}.cfg",
            "text": "\n".join(device.raw_lines) + "\n",
        }
        for device in devices
    ]
    return configs, devices, expected_outliers


@pytest.fixture
def small_fleet():
    return fleet_configs()
