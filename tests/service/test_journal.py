"""Journal durability: append/replay round-trips, torn tails, compaction."""

import json

from repro.service.journal import Journal


class TestAppendReplay:
    def test_round_trip_preserves_order(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        records = [{"type": "job", "id": f"j{i}", "seq": i} for i in range(5)]
        for record in records:
            journal.append(record)
        assert journal.replay() == records

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").replay() == []

    def test_append_creates_parent_directories(self, tmp_path):
        journal = Journal(tmp_path / "a" / "b" / "j.jsonl")
        journal.append({"type": "job", "id": "x"})
        assert journal.replay() == [{"type": "job", "id": "x"}]


class TestTornTail:
    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"type": "job", "id": "a"})
        journal.append({"type": "job", "id": "b"})
        # simulate a crash mid-append: half a JSON record, no newline
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "job", "id": "c", "st')
        assert [record["id"] for record in journal.replay()] == ["a", "b"]

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"type": "job", "id": "a"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("!!! not json !!!\n")
        journal.append({"type": "job", "id": "b"})
        assert [record["id"] for record in journal.replay()] == ["a", "b"]

    def test_non_object_lines_are_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('[1, 2]\n"string"\n')
        journal.append({"type": "job", "id": "a"})
        assert [record["id"] for record in journal.replay()] == ["a"]


class TestCompaction:
    def test_compact_replaces_contents(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        for index in range(10):
            journal.append({"type": "job", "id": "a", "attempts": index})
        journal.compact([{"type": "job", "id": "a", "attempts": 9}])
        assert journal.replay() == [{"type": "job", "id": "a", "attempts": 9}]
        # exactly one line on disk
        text = (tmp_path / "j.jsonl").read_text()
        assert len(text.splitlines()) == 1

    def test_compact_to_empty(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"type": "job", "id": "a"})
        journal.compact([])
        assert journal.replay() == []

    def test_records_are_single_line_json(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"type": "job", "id": "a", "payload": {"x": "y\nz"}})
        (line,) = (tmp_path / "j.jsonl").read_text().splitlines()
        assert json.loads(line)["payload"] == {"x": "y\nz"}
