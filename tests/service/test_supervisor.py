"""Supervisor behavior: validation, classification, breaker, quarantine."""

import os
import signal

import pytest

from repro.core import parallel
from repro.service.supervisor import CircuitBreaker, JobError, Supervisor

from .conftest import fleet_configs


def in_worker():
    import multiprocessing

    return multiprocessing.current_process().name != "MainProcess"


class TestPayloadValidation:
    def test_missing_configs_is_permanent(self):
        with pytest.raises(JobError) as excinfo:
            Supervisor.validate_payload({})
        assert excinfo.value.permanent

    def test_single_config_is_permanent(self):
        with pytest.raises(JobError) as excinfo:
            Supervisor.validate_payload({"configs": [{"text": "x"}]})
        assert excinfo.value.permanent

    def test_config_without_text_is_permanent(self):
        with pytest.raises(JobError) as excinfo:
            Supervisor.validate_payload(
                {"configs": [{"text": "hostname a"}, {"name": "b.cfg"}]}
            )
        assert excinfo.value.permanent

    def test_names_defaulted(self):
        pairs = Supervisor.validate_payload(
            {"configs": [{"text": "hostname a"}, {"text": "hostname b"}]}
        )
        assert [name for name, _ in pairs] == ["config-0", "config-1"]


class TestRunJob:
    def test_happy_path_result_document(self, small_fleet):
        configs, _, expected_outliers = small_fleet
        supervisor = Supervisor(cache=None, workers=1)
        result = supervisor.run_job({"configs": configs}, None)
        assert result["report"]["outliers"] == sorted(expected_outliers)
        assert result["supervision"]["mode"] == "serial"
        assert result["supervision"]["quarantined_pairs"] == {}

    def test_duplicate_hostnames_permanent(self, small_fleet):
        configs, _, _ = small_fleet
        supervisor = Supervisor(cache=None, workers=1)
        doubled = [configs[0], configs[0]] + configs[1:]
        with pytest.raises(JobError) as excinfo:
            supervisor.run_job({"configs": doubled}, None)
        assert excinfo.value.permanent

    def test_bad_option_permanent(self, small_fleet):
        configs, _, _ = small_fleet
        supervisor = Supervisor(cache=None, workers=1)
        with pytest.raises(JobError) as excinfo:
            supervisor.run_job(
                {"configs": configs, "timeout": "soon"}, None
            )
        assert excinfo.value.permanent

    def test_crashed_pair_quarantined_not_fatal(self, small_fleet, monkeypatch):
        """A pair whose worker keeps dying (even through the serial
        retry) lands in quarantined_pairs; the job still succeeds."""
        configs, devices, _ = small_fleet
        # the reference device's pairs are healed in-parent by the
        # report phase, so doom a pair that excludes the medoid
        baseline = Supervisor(cache=None, workers=1).run_job(
            {"configs": configs}, None
        )
        reference = baseline["report"]["reference"]
        hostnames = sorted(
            device.hostname
            for device in devices
            if device.hostname != reference
        )
        doomed = {hostnames[0], hostnames[1]}
        real = parallel._count_pair

        def kill_pair(task):
            if {task[0].hostname, task[1].hostname} == doomed:
                if in_worker():
                    os.kill(os.getpid(), signal.SIGKILL)
                raise RuntimeError("worker-crashed: injected parent-side too")
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", kill_pair)
        supervisor = Supervisor(cache=None, workers=2)
        # The fault targets hostnames; symmetry compression would expand
        # the doomed pair from its representatives without running it.
        result = supervisor.run_job(
            {"configs": configs, "compress": False}, None
        )
        (quarantined_key,) = result["supervision"]["quarantined_pairs"]
        assert set(quarantined_key.split("<->")) == doomed
        assert result["supervision"]["worker_crashes"] > 0


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(crash_threshold=2)
        assert breaker.decide_workers(4) == 4
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.state == "closed"
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.state == "open"

    def test_open_degrades_to_serial(self):
        breaker = CircuitBreaker(crash_threshold=1, cooldown=60.0)
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.state == "open"
        assert breaker.decide_workers(4) == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(crash_threshold=2)
        breaker.record(crashed=True, parallel_job=True)
        breaker.record(crashed=False, parallel_job=True)
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self, monkeypatch):
        breaker = CircuitBreaker(crash_threshold=1, cooldown=0.0)
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.state == "open"
        # cooldown of 0: the next decision transitions to half-open and
        # grants one probe the full pool
        assert breaker.decide_workers(4) == 4
        assert breaker.state == "half-open"
        # concurrent jobs stay serial while the probe is in flight
        assert breaker.decide_workers(4) == 1
        breaker.record(crashed=False, parallel_job=True)
        assert breaker.state == "closed"
        assert breaker.decide_workers(4) == 4

    def test_half_open_probe_failure_reopens_with_longer_cooldown(self):
        breaker = CircuitBreaker(crash_threshold=1, cooldown=0.0)
        breaker.record(crashed=True, parallel_job=True)
        before = breaker.snapshot()["cooldown_seconds"]
        breaker.decide_workers(4)  # half-open probe
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.state == "open"
        assert breaker.snapshot()["cooldown_seconds"] >= before

    def test_serial_requests_bypass(self):
        breaker = CircuitBreaker(crash_threshold=1)
        breaker.record(crashed=True, parallel_job=True)
        assert breaker.decide_workers(1) == 1  # no pool involved
