"""HTTP API surface: submit/poll, health, errors, backpressure."""

import json
import time
import urllib.request

import pytest

from repro.service.app import ServiceConfig, ServiceThread

from .conftest import fleet_configs, http_json


def wait_for_job(url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = http_json(f"{url}/v1/jobs/{job_id}")
        assert status == 200
        if body["job"]["state"] in ("done", "failed", "dead-letter"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle within {timeout}s")


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        port=0,
        journal_path=tmp_path / "journal.jsonl",
        no_cache=True,
        workers=1,
        job_concurrency=1,
        queue_limit=4,
    )
    with ServiceThread(config) as thread:
        yield thread


class TestSubmitAndPoll:
    def test_fleet_round_trip(self, service, small_fleet):
        configs, _, expected_outliers = small_fleet
        status, body = http_json(
            f"{service.url}/v1/fleet", {"configs": configs}
        )
        assert status == 202
        assert body["href"] == f"/v1/jobs/{body['job']['id']}"
        final = wait_for_job(service.url, body["job"]["id"])
        assert final["job"]["state"] == "done"
        report = final["result"]["report"]
        assert report["outliers"] == sorted(expected_outliers)

    def test_job_listing(self, service, small_fleet):
        configs, _, _ = small_fleet
        _, body = http_json(f"{service.url}/v1/fleet", {"configs": configs})
        wait_for_job(service.url, body["job"]["id"])
        status, listing = http_json(f"{service.url}/v1/jobs")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [body["job"]["id"]]

    def test_permanent_failure_surfaces_error(self, service):
        status, body = http_json(
            f"{service.url}/v1/fleet",
            {"configs": [{"text": "hostname a\n"}, {"text": "hostname a\n"}]},
        )
        assert status == 202
        final = wait_for_job(service.url, body["job"]["id"])
        assert final["job"]["state"] == "failed"
        assert final["job"]["error"]


class TestHealth:
    def test_healthz_reports_queue_and_workers(self, service):
        status, body = http_json(f"{service.url}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue"]["depth"] == 0
        assert body["workers"]["breaker"]["state"] == "closed"
        assert "counters" in body

    def test_readyz_ready_when_idle(self, service):
        status, body = http_json(f"{service.url}/readyz")
        assert status == 200
        assert body["ready"] is True


class TestProtocolErrors:
    def test_unknown_path_404(self, service):
        status, _ = http_json(f"{service.url}/v1/nope")
        assert status == 404

    def test_unknown_job_404(self, service):
        status, _ = http_json(f"{service.url}/v1/jobs/ffffffffffff")
        assert status == 404

    def test_wrong_method_405(self, service):
        status, _ = http_json(f"{service.url}/healthz", {"x": 1})
        assert status == 405

    def test_malformed_json_400(self, service):
        request = urllib.request.Request(
            f"{service.url}/v1/fleet",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30):
                raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400

    def test_configs_must_be_list_400(self, service):
        status, body = http_json(
            f"{service.url}/v1/fleet", {"configs": "nope"}
        )
        assert status == 400
        assert "configs" in body["error"]

    def test_oversize_body_413(self, tmp_path):
        config = ServiceConfig(
            port=0,
            journal_path=tmp_path / "journal.jsonl",
            no_cache=True,
            max_body=1024,
        )
        with ServiceThread(config) as thread:
            big = {"configs": [{"text": "x" * 4096}, {"text": "y"}]}
            status, _ = http_json(f"{thread.url}/v1/fleet", big)
            assert status == 413


class TestBackpressure:
    def test_queue_overflow_yields_429(self, tmp_path, small_fleet):
        configs, _, _ = small_fleet
        config = ServiceConfig(
            port=0,
            journal_path=tmp_path / "journal.jsonl",
            no_cache=True,
            workers=1,
            job_concurrency=1,
            queue_limit=2,
            tenant_quota=1,
        )
        with ServiceThread(config) as thread:
            statuses = []
            for _ in range(6):
                status, body = http_json(
                    f"{thread.url}/v1/fleet", {"configs": configs}
                )
                statuses.append(status)
            assert 429 in statuses
            # accepted jobs still reach a terminal state
            _, listing = http_json(f"{thread.url}/v1/jobs")
            for job in listing["jobs"]:
                wait_for_job(thread.url, job["id"])

    def test_429_carries_retry_after(self, tmp_path, small_fleet):
        configs, _, _ = small_fleet
        config = ServiceConfig(
            port=0,
            journal_path=tmp_path / "journal.jsonl",
            no_cache=True,
            job_concurrency=1,
            queue_limit=1,
        )
        with ServiceThread(config) as thread:
            seen_429 = None
            for _ in range(4):
                request = urllib.request.Request(
                    f"{thread.url}/v1/fleet",
                    data=json.dumps({"configs": configs}).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                try:
                    urllib.request.urlopen(request, timeout=30).close()
                except urllib.error.HTTPError as error:
                    if error.code == 429:
                        seen_429 = error
                        break
            assert seen_429 is not None
            assert seen_429.headers.get("Retry-After")
