"""End-to-end daemon lifecycle via ``campion serve`` subprocesses.

These are the same scenarios the CI ``service-smoke`` job drives:
graceful SIGTERM drain with exit code 0, and kill -9 crash recovery
over a shared journal.
"""

import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

import pytest

from .conftest import fleet_configs, http_json
from .test_api import wait_for_job

REPO = pathlib.Path(__file__).resolve().parents[2]


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_daemon(tmp_path, port, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "--cache-dir",
        str(tmp_path / "cache"),
        "serve",
        "--port",
        str(port),
        "--journal",
        str(tmp_path / "journal.jsonl"),
        *extra,
    ]
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_ready(port, process, timeout=30.0):
    url = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon exited early: {process.returncode}\n"
                f"{process.stderr.read()}"
            )
        try:
            status, _ = http_json(f"{url}/healthz", timeout=2.0)
            if status == 200:
                return url
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError("daemon did not become ready")


def reap(process):
    if process.poll() is None:
        process.kill()
    process.communicate(timeout=30)


class TestGracefulShutdown:
    def test_sigterm_drains_in_flight_job_and_exits_zero(self, tmp_path):
        configs, _, _ = fleet_configs(count=6, outliers=1, rules=10, seed=5)
        port = free_port()
        process = spawn_daemon(tmp_path, port)
        try:
            url = wait_ready(port, process)
            status, body = http_json(f"{url}/v1/fleet", {"configs": configs})
            assert status == 202
            job_id = body["job"]["id"]
            # SIGTERM while the job is (most likely) still in flight
            process.send_signal(signal.SIGTERM)
            _, err = process.communicate(timeout=120)
            assert process.returncode == 0, err
            assert "drained and stopped" in err
            # the drained daemon journaled a terminal (or requeueable)
            # state: a fresh daemon over the same journal serves it
            port2 = free_port()
            revived = spawn_daemon(tmp_path, port2)
            try:
                url2 = wait_ready(port2, revived)
                final = wait_for_job(url2, job_id, timeout=120)
                assert final["job"]["state"] == "done"
            finally:
                reap(revived)
        finally:
            reap(process)


class TestCrashRecovery:
    def test_kill9_mid_job_recovers_on_restart(self, tmp_path):
        configs, _, expected_outliers = fleet_configs(
            count=8, outliers=2, rules=16, seed=9
        )
        port = free_port()
        process = spawn_daemon(tmp_path, port)
        try:
            url = wait_ready(port, process)
            status, body = http_json(f"{url}/v1/fleet", {"configs": configs})
            assert status == 202
            job_id = body["job"]["id"]
            # wait until the job has been claimed, then kill -9
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, doc = http_json(f"{url}/v1/jobs/{job_id}", timeout=5.0)
                if doc["job"]["state"] != "queued":
                    break
                time.sleep(0.02)
            process.send_signal(signal.SIGKILL)
            process.communicate(timeout=30)
            assert process.returncode != 0

            port2 = free_port()
            revived = spawn_daemon(tmp_path, port2)
            try:
                url2 = wait_ready(port2, revived)
                _, health = http_json(f"{url2}/healthz")
                assert health["recovery"]["replayed"] >= 1
                final = wait_for_job(url2, job_id, timeout=180)
                assert final["job"]["state"] == "done"
                assert (
                    final["result"]["report"]["outliers"]
                    == sorted(expected_outliers)
                )
            finally:
                reap(revived)
        finally:
            reap(process)
