"""Job queue semantics: lifecycle, backoff, quotas, bounds, recovery."""

import pytest

from repro.service.journal import Journal
from repro.service.queue import (
    DEAD_LETTER,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    QueueFull,
)


def make_queue(tmp_path, **kwargs):
    return JobQueue(Journal(tmp_path / "j.jsonl"), **kwargs)


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        queue = make_queue(tmp_path)
        job = queue.submit({"configs": []})
        assert job.state == QUEUED and job.attempts == 0
        claimed = queue.claim()
        assert claimed is job
        assert claimed.state == RUNNING and claimed.attempts == 1
        queue.complete(claimed, {"report": {}})
        assert job.state == DONE and job.result == {"report": {}}
        assert queue.depth() == 0

    def test_fifo_order(self, tmp_path):
        queue = make_queue(tmp_path, tenant_quota=10)
        first = queue.submit({}, tenant="a")
        second = queue.submit({}, tenant="b")
        assert queue.claim() is first
        assert queue.claim() is second

    def test_permanent_failure_goes_to_failed(self, tmp_path):
        queue = make_queue(tmp_path)
        job = queue.submit({})
        queue.claim()
        queue.fail(job, "duplicate hostnames", permanent=True)
        assert job.state == FAILED
        assert job.error == "duplicate hostnames"
        assert queue.claim() is None  # not retried

    def test_transient_failure_retries_with_backoff(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=3)
        job = queue.submit({})
        queue.claim()
        queue.fail(job, "worker hiccup", permanent=False)
        assert job.state == QUEUED
        assert job.not_before > 0  # gated by backoff
        assert queue.claim(now=0.0) is None  # gate closed
        assert queue.claim(now=job.not_before + 1) is job  # gate open

    def test_dead_letter_after_max_attempts(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=2)
        job = queue.submit({})
        for _ in range(2):
            claimed = queue.claim(now=1e12)
            assert claimed is job
            queue.fail(job, "still broken", permanent=False)
        assert job.state == DEAD_LETTER
        assert job.attempts == 2


class TestAdmission:
    def test_queue_full_raises(self, tmp_path):
        queue = make_queue(tmp_path, limit=2)
        queue.submit({})
        queue.submit({})
        with pytest.raises(QueueFull):
            queue.submit({})

    def test_terminal_jobs_free_capacity(self, tmp_path):
        queue = make_queue(tmp_path, limit=1)
        job = queue.submit({})
        queue.claim()
        queue.complete(job, {})
        queue.submit({})  # does not raise

    def test_tenant_quota_skips_but_serves_others(self, tmp_path):
        queue = make_queue(tmp_path, tenant_quota=1)
        first_a = queue.submit({}, tenant="a")
        second_a = queue.submit({}, tenant="a")
        first_b = queue.submit({}, tenant="b")
        assert queue.claim() is first_a
        # tenant a is at quota: b's older-than-nothing job is served
        assert queue.claim() is first_b
        assert queue.claim() is None
        queue.complete(first_a, {})
        assert queue.claim() is second_a


class TestRecovery:
    def test_running_jobs_requeued_with_attempts_kept(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=3)
        job = queue.submit({"configs": [1]})
        queue.claim()
        assert job.state == RUNNING
        # simulate kill -9: new queue over the same journal
        revived = make_queue(tmp_path, max_attempts=3)
        stats = revived.recover()
        assert stats == {"replayed": 1, "requeued": 1, "dead_lettered": 0}
        recovered = revived.get(job.id)
        assert recovered.state == QUEUED
        assert recovered.attempts == 1  # the burned attempt survives
        assert recovered.payload == {"configs": [1]}

    def test_running_job_on_final_attempt_dead_letters(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=1)
        job = queue.submit({})
        queue.claim()
        revived = make_queue(tmp_path, max_attempts=1)
        stats = revived.recover()
        assert stats["dead_lettered"] == 1
        assert revived.get(job.id).state == DEAD_LETTER

    def test_terminal_states_survive_restart(self, tmp_path):
        queue = make_queue(tmp_path)
        done = queue.submit({})
        queue.claim()
        queue.complete(done, {"report": {"ok": True}})
        failed = queue.submit({})
        queue.claim()
        queue.fail(failed, "bad payload", permanent=True)
        revived = make_queue(tmp_path)
        revived.recover()
        assert revived.get(done.id).state == DONE
        assert revived.get(done.id).result == {"report": {"ok": True}}
        assert revived.get(failed.id).state == FAILED

    def test_recovery_compacts_journal(self, tmp_path):
        queue = make_queue(tmp_path)
        job = queue.submit({})
        queue.claim()
        queue.complete(job, {})
        # 3 transition records before recovery, 1 merged record after
        assert len(queue.journal.replay()) == 3
        revived = make_queue(tmp_path)
        revived.recover()
        assert len(revived.journal.replay()) == 1

    def test_torn_tail_does_not_block_recovery(self, tmp_path):
        queue = make_queue(tmp_path)
        job = queue.submit({})
        with open(queue.journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "job", "id": "torn"')
        revived = make_queue(tmp_path)
        stats = revived.recover()
        assert stats["replayed"] == 1
        assert revived.get(job.id) is not None

    def test_sequence_continues_after_recovery(self, tmp_path):
        queue = make_queue(tmp_path)
        old = queue.submit({})
        revived = make_queue(tmp_path)
        revived.recover()
        fresh = revived.submit({})
        assert fresh.seq > old.seq  # FIFO order is preserved across restarts
