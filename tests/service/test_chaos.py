"""Chaos acceptance: the daemon survives worker kills, corrupt cache
entries, malformed pushes, and queue overflow; jobs always reach a
terminal state; a warm re-push after restart reuses cached analysis.
"""

import os
import signal
import time

from repro.core import parallel
from repro.service.app import ServiceConfig, ServiceThread

from .conftest import fleet_configs, http_json
from .test_api import wait_for_job


def in_worker():
    import multiprocessing

    return multiprocessing.current_process().name != "MainProcess"


def service_config(tmp_path, **overrides):
    options = dict(
        port=0,
        journal_path=tmp_path / "journal.jsonl",
        cache_dir=str(tmp_path / "cache"),
        workers=1,
        job_concurrency=1,
        queue_limit=8,
    )
    options.update(overrides)
    return ServiceConfig(**options)


class TestChaosGauntlet:
    def test_daemon_survives_the_gauntlet(self, tmp_path, monkeypatch):
        """Worker kill -9, corrupt cache entry, malformed push, and
        queue overflow, one after another — the daemon keeps serving
        and every accepted job reaches a terminal state."""
        configs, devices, expected_outliers = fleet_configs()
        config = service_config(tmp_path, workers=2, queue_limit=2)
        kill_next = {"armed": False}
        real = parallel._count_pair

        def flaky(task):
            if kill_next["armed"] and in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", flaky)
        with ServiceThread(config) as thread:
            # 1. malformed pushes: protocol errors are rejected at the
            # door; payload errors are accepted and fail permanently
            status, _ = http_json(f"{thread.url}/v1/fleet", {"configs": "x"})
            assert status == 400
            status, body = http_json(
                f"{thread.url}/v1/fleet", {"configs": [{"text": "a"}]}
            )
            assert status == 202
            final = wait_for_job(thread.url, body["job"]["id"], timeout=60)
            assert final["job"]["state"] == "failed"

            # 2. a worker killed mid-job: retry/isolation heals the job
            kill_next["armed"] = True
            status, body = http_json(
                f"{thread.url}/v1/fleet", {"configs": configs}
            )
            assert status == 202
            kill_id = body["job"]["id"]

            # 3. overflow: keep pushing until the queue says 429
            saw_429 = False
            for _ in range(8):
                status, _ = http_json(
                    f"{thread.url}/v1/fleet", {"configs": configs}
                )
                if status == 429:
                    saw_429 = True
                    break
            assert saw_429

            final = wait_for_job(thread.url, kill_id, timeout=120)
            kill_next["armed"] = False
            assert final["job"]["state"] == "done"
            assert final["result"]["supervision"]["worker_crashes"] > 0
            assert (
                final["result"]["report"]["outliers"]
                == sorted(expected_outliers)
            )

            # 4. corrupt a cached artifact, then push again
            cache_root = tmp_path / "cache"
            corrupted = 0
            for path in cache_root.rglob("*"):
                if path.is_file() and path.suffix in (".pickle", ".json"):
                    path.write_bytes(b"\x00garbage\x00")
                    corrupted += 1
            assert corrupted > 0

            # drain whatever the overflow loop admitted first
            _, listing = http_json(f"{thread.url}/v1/jobs")
            for job in listing["jobs"]:
                wait_for_job(thread.url, job["id"], timeout=120)

            status, body = http_json(
                f"{thread.url}/v1/fleet", {"configs": configs}
            )
            assert status == 202
            final = wait_for_job(thread.url, body["job"]["id"], timeout=120)
            assert final["job"]["state"] == "done"
            assert (
                final["result"]["report"]["outliers"]
                == sorted(expected_outliers)
            )

            # 5. the daemon is still healthy and every job is terminal
            status, health = http_json(f"{thread.url}/healthz")
            assert status == 200
            assert health["queue"]["depth"] == 0
            _, listing = http_json(f"{thread.url}/v1/jobs")
            terminal = {"done", "failed", "dead-letter"}
            assert all(job["state"] in terminal for job in listing["jobs"])


class TestWarmRestart:
    def test_warm_repush_reuses_cached_analysis(self, tmp_path):
        """After a restart over the same journal + cache, an identical
        push re-parses nothing and re-diffs nothing; changing one
        device re-analyzes only that device's pairs."""
        configs, devices, _ = fleet_configs(count=5, outliers=1, seed=11)
        config = service_config(tmp_path)

        with ServiceThread(config) as thread:
            _, body = http_json(f"{thread.url}/v1/fleet", {"configs": configs})
            cold = wait_for_job(thread.url, body["job"]["id"], timeout=120)
        assert cold["job"]["state"] == "done"
        cold_cache = cold["result"]["cache"]
        assert cold_cache["memo_misses"] > 0

        # restart: fresh ServiceThread over the same journal and cache
        with ServiceThread(service_config(tmp_path)) as thread:
            recovery_counts = http_json(f"{thread.url}/healthz")[1]["recovery"]
            assert recovery_counts["replayed"] >= 1

            _, body = http_json(f"{thread.url}/v1/fleet", {"configs": configs})
            warm = wait_for_job(thread.url, body["job"]["id"], timeout=120)
            assert warm["job"]["state"] == "done"
            warm_cache = warm["result"]["cache"]
            # identical push: every device parse and every diff is served
            # from the persistent cache
            assert warm_cache["device_hits"] == len(configs)
            assert warm_cache["memo_misses"] == 0
            assert warm["result"]["report"] == cold["result"]["report"]

            # change one non-reference device: only its pairs recompute
            reference = cold["result"]["report"]["reference"]
            changed = [dict(entry) for entry in configs]
            victim = next(
                index
                for index, entry in enumerate(changed)
                if not entry["name"].startswith(reference)
            )
            changed[victim]["text"] += "ip route 10.99.0.0 255.255.255.0 Null0\n"
            _, body = http_json(f"{thread.url}/v1/fleet", {"configs": changed})
            partial = wait_for_job(thread.url, body["job"]["id"], timeout=120)
            assert partial["job"]["state"] == "done"
            partial_cache = partial["result"]["cache"]
            assert partial_cache["device_hits"] == len(configs) - 1
            assert 0 < partial_cache["memo_misses"] < cold_cache["memo_misses"]
            assert partial["result"]["report"] != cold["result"]["report"]
