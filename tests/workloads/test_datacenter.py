"""Tests that the data-center workload reproduces Table 6's counts."""

import pytest

from repro.core import ComponentKind, config_diff
from repro.workloads.datacenter import (
    scenario1_redundant_pairs,
    scenario2_router_replacement,
    scenario3_gateway_acls,
)


def _counts(scenario):
    route_map = acl = static = other = 0
    noisy_clean_pairs = []
    for pair in scenario.pairs:
        report = config_diff(pair.primary, pair.backup)
        rm = [d for d in report.semantic if d.kind is ComponentKind.ROUTE_MAP]
        ac = [d for d in report.semantic if d.kind is ComponentKind.ACL]
        st = [d for d in report.structural if d.kind is ComponentKind.STATIC_ROUTE]
        ot = [
            d for d in report.structural if d.kind is not ComponentKind.STATIC_ROUTE
        ] + report.unmatched
        route_map += len(rm)
        acl += len(ac)
        static += len(st)
        other += len(ot)
        if not pair.seeded_bugs and (rm or ac or st or ot):
            noisy_clean_pairs.append(pair.name)
    return route_map, acl, static, other, noisy_clean_pairs


@pytest.fixture(scope="module")
def scenario1():
    return scenario1_redundant_pairs(seed=0)


@pytest.fixture(scope="module")
def scenario2():
    return scenario2_router_replacement(seed=1)


@pytest.fixture(scope="module")
def scenario3():
    return scenario3_gateway_acls()


class TestScenario1:
    def test_table6_counts(self, scenario1):
        route_map, acl, static, other, noise = _counts(scenario1)
        assert route_map == 5  # Table 6: BGP Semantic = 5
        assert static == 2  # Table 6: Static Routes Structural = 2
        assert acl == 0
        assert other == 0
        assert noise == []

    def test_every_seeded_bug_detected(self, scenario1):
        for pair in scenario1.pairs:
            if not pair.seeded_bugs:
                continue
            report = config_diff(pair.primary, pair.backup)
            assert not report.is_equivalent(), f"{pair.name} bug missed"

    def test_pair_count_parameter(self):
        scenario = scenario1_redundant_pairs(pair_count=8, seed=3)
        assert len(scenario.pairs) == 8


class TestScenario2:
    def test_table6_counts(self, scenario2):
        route_map, acl, static, other, noise = _counts(scenario2)
        assert route_map == 4  # Table 6: BGP Semantic = 4
        assert static == 0 and acl == 0 and other == 0
        assert noise == []

    def test_thirty_replacements(self, scenario2):
        assert len(scenario2.pairs) == 30

    def test_reflector_bug_present(self, scenario2):
        reflector = scenario2.pairs[0]
        assert "reflector" in reflector.name
        assert reflector.seeded_bugs
        report = config_diff(reflector.primary, reflector.backup)
        assert any(
            "LOCAL PREF" in d.action_pair()[0] or "LOCAL PREF" in d.action_pair()[1]
            for d in report.semantic
        )

    def test_community_bug_localized(self, scenario2):
        community_pairs = [
            p for p in scenario2.pairs if any("community" in b for b in p.seeded_bugs)
        ]
        assert len(community_pairs) == 1
        report = config_diff(community_pairs[0].primary, community_pairs[0].backup)
        actions = " ".join(a for d in report.semantic for a in d.action_pair())
        assert "65000:100" in actions and "65000:101" in actions


class TestScenario3:
    def test_table6_counts(self, scenario3):
        route_map, acl, static, other, noise = _counts(scenario3)
        assert acl == 3  # Table 6: ACLs Semantic = 3
        assert route_map == 0 and static == 0 and other == 0

    def test_table7_case_present(self, scenario3):
        """The whitelist-vs-blacklist ICMP difference, with header
        localization to the 9.140.0.0/23 source range."""
        pair = scenario3.pairs[0]
        report = config_diff(pair.primary, pair.backup)
        whitelist = [
            d
            for d in report.semantic
            if "permit_whitelist" in d.class2.step_name
        ]
        assert len(whitelist) == 1
        difference = whitelist[0]
        src_localization = difference.extra_localizations["srcIp"]
        assert [str(p) for p in src_localization.included] == ["9.140.0.0/23"]
        action1, action2 = difference.action_pair()
        assert action1 == "REJECT" and action2 == "ACCEPT"
