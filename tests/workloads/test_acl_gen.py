"""Tests for the Capirca-substitute ACL generator and renderers."""

import random

import pytest

from repro.core import diff_acls
from repro.model import AclAction
from repro.workloads.acl_gen import (
    generate_acl_pair,
    random_rules,
    render_cisco_acl,
    render_juniper_filter,
)
from repro.parsers import parse_cisco, parse_juniper


class TestRandomRules:
    def test_deterministic_by_seed(self):
        assert random_rules(30, random.Random(5)) == random_rules(30, random.Random(5))

    def test_count(self):
        assert len(random_rules(17, random.Random(0))) == 17

    def test_rules_are_specific(self):
        """Generated rules should rarely be fully-wild (see module doc)."""
        rules = random_rules(100, random.Random(1))
        fully_wild = [r for r in rules if r.src.is_any() and r.dst.is_any()]
        assert len(fully_wild) == 0


class TestRendererRoundTrip:
    """Rendering then parsing must reproduce the rule list exactly —
    this is also the fidelity check for the §4 'unparser' path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cisco_roundtrip(self, seed):
        rules = random_rules(40, random.Random(seed))
        text = render_cisco_acl("TEST", rules)
        device = parse_cisco(text)
        parsed = device.acls["TEST"].lines
        assert len(parsed) == len(rules)
        for original, reparsed in zip(rules, parsed):
            assert original.action == reparsed.action
            assert original.src == reparsed.src
            assert original.dst == reparsed.dst
            assert original.protocol == reparsed.protocol
            assert original.dst_ports == reparsed.dst_ports

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_juniper_roundtrip(self, seed):
        rules = random_rules(40, random.Random(seed))
        text = render_juniper_filter("TEST", rules)
        device = parse_juniper(text)
        parsed = device.acls["TEST"].lines
        assert len(parsed) == len(rules)
        for original, reparsed in zip(rules, parsed):
            assert original.action == reparsed.action
            assert original.src == reparsed.src
            assert original.dst == reparsed.dst
            assert original.protocol == reparsed.protocol
            assert original.dst_ports == reparsed.dst_ports

    def test_cross_dialect_equivalence(self):
        """The same rules rendered to both dialects parse to semantically
        equivalent ACLs (zero injected differences)."""
        pair = generate_acl_pair(80, differences=0, seed=9)
        assert pair.injected == []
        space, differences = diff_acls(pair.cisco_acl, pair.juniper_acl)
        assert differences == []


class TestDifferenceInjection:
    def test_injection_descriptions_match_count(self):
        pair = generate_acl_pair(100, differences=6, seed=4)
        assert len(pair.injected) == 6

    def test_injected_differences_are_detectable(self):
        pair = generate_acl_pair(120, differences=10, seed=2)
        space, differences = diff_acls(pair.cisco_acl, pair.juniper_acl)
        assert len(differences) >= 5, (
            "most injected differences must be semantically visible"
        )

    def test_zero_rules(self):
        pair = generate_acl_pair(0, differences=3, seed=0)
        assert pair.injected == []
        assert len(pair.cisco_acl.lines) == 0

    def test_deterministic(self):
        first = generate_acl_pair(50, differences=5, seed=77)
        second = generate_acl_pair(50, differences=5, seed=77)
        assert first.cisco_text == second.cisco_text
        assert first.juniper_text == second.juniper_text
        assert first.injected == second.injected
