"""Tests for the text-level mutation operators."""

import random

import pytest

from repro.workloads.datacenter import _cisco_tor, _juniper_tor
from repro.workloads.mutation import (
    MUTATION_OPERATORS,
    apply_random_mutation,
    change_community,
    change_local_pref,
    change_ospf_cost,
    change_static_next_hop,
    change_static_tag,
    drop_prefix_list_entry,
    flip_acl_action,
    remove_send_community,
)


CISCO = _cisco_tor(1, 2)
JUNIPER = _juniper_tor(1, 2)


class TestIndividualOperators:
    def test_change_local_pref(self):
        mutation = change_local_pref(CISCO, random.Random(0))
        assert mutation is not None
        assert mutation.text != CISCO
        assert "local-preference" in mutation.description

    def test_change_community(self):
        mutation = change_community(JUNIPER, random.Random(0))
        assert mutation is not None
        assert "community" in mutation.description

    def test_drop_prefix_list_entry_cisco(self):
        mutation = drop_prefix_list_entry(CISCO, random.Random(0))
        assert mutation is not None
        assert mutation.text.count("ip prefix-list") == CISCO.count("ip prefix-list") - 1

    def test_drop_prefix_list_entry_juniper(self):
        mutation = drop_prefix_list_entry(JUNIPER, random.Random(0))
        assert mutation is not None
        assert mutation.text != JUNIPER

    def test_change_static_next_hop(self):
        for text in (CISCO, JUNIPER):
            mutation = change_static_next_hop(text, random.Random(0))
            assert mutation is not None
            assert mutation.text != text

    def test_change_static_tag_requires_tags(self):
        assert change_static_tag(CISCO, random.Random(0)) is None
        tagged = CISCO + "ip route 1.0.0.0 255.0.0.0 2.2.2.2 tag 5\n"
        mutation = change_static_tag(tagged, random.Random(0))
        assert mutation is not None
        assert "tag 6" in mutation.text

    def test_remove_send_community(self):
        mutation = remove_send_community(CISCO, random.Random(0))
        assert mutation is not None
        assert mutation.text.count("send-community") == CISCO.count("send-community") - 1

    def test_remove_send_community_inapplicable_on_junos(self):
        assert remove_send_community(JUNIPER, random.Random(0)) is None

    def test_flip_acl_action(self):
        acl_text = (
            "ip access-list extended F\n permit tcp any any eq 80\n!\n"
        )
        mutation = flip_acl_action(acl_text, random.Random(0))
        assert mutation is not None
        assert "deny" in mutation.text

    def test_flip_acl_action_junos(self):
        filter_text = (
            "firewall { family inet { filter F { term t { then accept; } } } }\n"
        )
        mutation = flip_acl_action(filter_text, random.Random(0))
        assert mutation is not None
        assert "discard" in mutation.text

    def test_change_ospf_cost(self):
        text = "interface E1\n ip ospf cost 10\n!\n"
        mutation = change_ospf_cost(text, random.Random(0))
        assert mutation is not None
        assert "cost 15" in mutation.text

    def test_inapplicable_returns_none(self):
        assert change_local_pref("hostname only\n", random.Random(0)) is None
        assert flip_acl_action("hostname only\n", random.Random(0)) is None


class TestApplyRandom:
    def test_applies_some_operator(self):
        mutation = apply_random_mutation(CISCO, seed=1)
        assert mutation is not None
        assert mutation.text != CISCO
        assert mutation.operator in {op.__name__ for op in MUTATION_OPERATORS}

    def test_deterministic_by_seed(self):
        first = apply_random_mutation(CISCO, seed=42)
        second = apply_random_mutation(CISCO, seed=42)
        assert first.text == second.text
        assert first.description == second.description

    def test_none_when_nothing_applies(self):
        assert apply_random_mutation("hostname r\n", seed=0) is None

    def test_mutated_text_still_parses(self):
        from repro.parsers import parse_cisco, parse_juniper

        for seed in range(5):
            cisco_mutation = apply_random_mutation(CISCO, seed=seed)
            parse_cisco(cisco_mutation.text)
            juniper_mutation = apply_random_mutation(JUNIPER, seed=seed)
            parse_juniper(juniper_mutation.text)


class TestOperatorContract:
    """The module's stated contract: every operator's output is flagged by
    ConfigDiff against the original, and operators return None (never
    raise) on texts missing their pattern."""

    ACL_TEXT = (
        "hostname gw\n!\nip access-list extended F\n"
        " permit tcp any any eq 80\n deny udp any 10.0.0.0 0.0.0.255\n!\n"
    )
    TAGGED = CISCO + "ip route 10.99.0.0 255.255.0.0 10.200.2.9 tag 5\n"
    OSPF = CISCO.replace(
        "interface Ethernet1", "interface Ethernet1\n ip ospf cost 10"
    )

    # One applicable Cisco-dialect base text per operator.
    BASE_TEXTS = {
        "change_local_pref": CISCO,
        "change_community": CISCO,
        "drop_prefix_list_entry": CISCO,
        "change_static_next_hop": CISCO,
        "change_static_tag": TAGGED,
        "remove_send_community": CISCO,
        "flip_acl_action": ACL_TEXT,
        "change_ospf_cost": OSPF,
    }

    @pytest.mark.parametrize(
        "operator", MUTATION_OPERATORS, ids=lambda op: op.__name__
    )
    def test_every_operator_flagged_by_config_diff(self, operator):
        from repro.core import config_diff
        from repro.parsers import parse_cisco

        text = self.BASE_TEXTS[operator.__name__]
        mutation = operator(text, random.Random(0))
        assert mutation is not None, f"{operator.__name__} inapplicable"
        report = config_diff(
            parse_cisco(text, "original.cfg"),
            parse_cisco(mutation.text, "mutated.cfg"),
        )
        assert not report.is_equivalent(), (
            f"{operator.__name__} mutated the text "
            f"({mutation.description}) but ConfigDiff saw no difference"
        )

    @pytest.mark.parametrize(
        "operator", MUTATION_OPERATORS, ids=lambda op: op.__name__
    )
    def test_returns_none_on_missing_pattern(self, operator):
        for text in ("", "hostname bare\n", "interface E1\n shutdown\n"):
            assert operator(text, random.Random(0)) is None
