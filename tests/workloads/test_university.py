"""Tests that the university workload reproduces Table 8's counts."""

import pytest

from repro.core import ComponentKind, config_diff, diff_route_maps
from repro.workloads.university import university_network


@pytest.fixture(scope="module")
def network():
    return university_network()


def _outputted(pair, label):
    maps = {**pair.export_maps, **pair.import_maps}
    cisco_name, juniper_name = maps[label]
    _, differences = diff_route_maps(
        pair.cisco.route_maps[cisco_name], pair.juniper.route_maps[juniper_name]
    )
    return differences


class TestTable8a:
    """Outputted Differences column of Table 8(a)."""

    def test_export1_has_five(self, network):
        assert len(_outputted(network.core, "Export 1")) == 5

    def test_export2_has_one(self, network):
        assert len(_outputted(network.core, "Export 2")) == 1

    def test_export3_has_one(self, network):
        assert len(_outputted(network.border, "Export 3")) == 1

    def test_export4_has_one(self, network):
        assert len(_outputted(network.border, "Export 4")) == 1

    def test_export5_has_two(self, network):
        assert len(_outputted(network.border, "Export 5")) == 2

    def test_import_is_clean(self, network):
        assert _outputted(network.border, "Import") == []

    def test_export3_direction_matches_paper(self, network):
        """'accepted in the Cisco router but not the Juniper router'"""
        differences = _outputted(network.border, "Export 3")
        action1, action2 = differences[0].action_pair()
        assert action1 == "ACCEPT"
        assert action2 == "REJECT"

    def test_export5_two_outputs_one_underlying_bug(self, network):
        """One missing prefix splits across two Juniper terms."""
        differences = _outputted(network.border, "Export 5")
        cisco_steps = {d.class1.step_name for d in differences}
        assert len(cisco_steps) == 1, "both outputs stem from the same Cisco clause"


class TestTable8b:
    def test_static_routes_two_classes(self, network):
        report = config_diff(network.core.cisco, network.core.juniper)
        static = [d for d in report.structural if d.kind is ComponentKind.STATIC_ROUTE]
        attribute_class = [d for d in static if not d.is_presence_diff()]
        presence_class = [d for d in static if d.is_presence_diff()]
        # Class 1: same prefix, different next hops + admin distances.
        assert {d.attribute for d in attribute_class} == {"next-hop", "admin-distance"}
        # Class 2: two routes present only on the Cisco router.
        assert len(presence_class) == 2
        assert all(d.value2 is None for d in presence_class)

    def test_bgp_properties_send_community_class(self, network):
        report = config_diff(network.core.cisco, network.core.juniper)
        bgp = [d for d in report.structural if d.kind is ComponentKind.BGP_PROPERTY]
        assert bgp, "the send-community latent difference must be reported"
        assert {d.attribute for d in bgp} == {"send-community"}
        assert all(d.value1 == "false" and d.value2 == "true" for d in bgp)

    def test_border_pair_structurally_clean(self, network):
        report = config_diff(network.border.cisco, network.border.juniper)
        assert [d for d in report.structural] == []


class TestFullPairReports:
    def test_core_report_totals(self, network):
        report = config_diff(network.core.cisco, network.core.juniper)
        route_maps = [d for d in report.semantic if d.kind is ComponentKind.ROUTE_MAP]
        assert len(route_maps) == 6  # Export 1 (5) + Export 2 (1)

    def test_border_report_totals(self, network):
        report = config_diff(network.border.cisco, network.border.juniper)
        route_maps = [d for d in report.semantic if d.kind is ComponentKind.ROUTE_MAP]
        assert len(route_maps) == 4  # Export 3 (1) + Export 4 (1) + Export 5 (2)

    def test_no_unmatched_policies(self, network):
        for pair in network.pairs():
            report = config_diff(pair.cisco, pair.juniper)
            assert report.unmatched == []
