"""Tests that the Figure 1 workload parses to the paper's exact policies."""

from repro.model import Action, Community, Prefix, PrefixRange
from repro.workloads.figure1 import figure1_devices, section2_static_devices


class TestFigure1Parse:
    def test_hostnames(self):
        cisco, juniper = figure1_devices()
        assert cisco.hostname == "cisco_router"
        assert juniper.hostname == "juniper_router"

    def test_cisco_nets_matches_16_to_32(self):
        cisco, _ = figure1_devices()
        ranges = [entry.range for entry in cisco.prefix_lists["NETS"].entries]
        assert ranges == [
            PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 32),
            PrefixRange(Prefix.parse("10.100.0.0/16"), 16, 32),
        ]

    def test_juniper_nets_matches_exactly_16(self):
        _, juniper = figure1_devices()
        ranges = [entry.range for entry in juniper.prefix_lists["NETS"].entries]
        assert ranges == [
            PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 16),
            PrefixRange(Prefix.parse("10.100.0.0/16"), 16, 16),
        ]

    def test_cisco_comm_is_disjunction(self):
        cisco, _ = figure1_devices()
        entries = cisco.community_lists["COMM"].entries
        assert len(entries) == 2
        assert all(len(entry.communities) == 1 for entry in entries)

    def test_juniper_comm_is_conjunction(self):
        _, juniper = figure1_devices()
        entries = juniper.community_lists["COMM"].entries
        assert len(entries) == 1
        assert entries[0].communities == frozenset(
            {Community.parse("10:10"), Community.parse("10:11")}
        )

    def test_both_policies_have_three_clauses(self):
        cisco, juniper = figure1_devices()
        assert len(cisco.route_maps["POL"].clauses) == 3
        assert len(juniper.route_maps["POL"].clauses) == 3

    def test_policies_applied_to_same_neighbor(self):
        cisco, juniper = figure1_devices()
        cisco_neighbor = next(iter(cisco.bgp.neighbors))
        juniper_neighbor = next(iter(juniper.bgp.neighbors))
        assert cisco_neighbor.peer_ip == juniper_neighbor.peer_ip
        assert cisco_neighbor.export_policy == "POL"
        assert juniper_neighbor.export_policy == "POL"


class TestSection2Parse:
    def test_cisco_has_two_routes_juniper_one(self):
        cisco, juniper = section2_static_devices()
        assert len(cisco.static_routes) == 2
        assert len(juniper.static_routes) == 1

    def test_shared_route_identical(self):
        cisco, juniper = section2_static_devices()
        shared_cisco = next(
            r for r in cisco.static_routes if str(r.prefix) == "10.3.0.0/16"
        )
        shared_juniper = juniper.static_routes[0]
        assert shared_cisco.attributes() == shared_juniper.attributes()
