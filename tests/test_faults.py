"""Fault-injection tests for the robustness layer.

Exercises the failure paths the happy-path suites never reach: workers
that crash, workers that hang past the pair timeout, stanzas the
parsers cannot model (strict vs lenient), and BDD analyses that blow
through their node budget.  Worker faults are injected by
monkeypatching the module-level task functions in
:mod:`repro.core.parallel` — the ``fork`` start method hands children
the patched parent module state, and the in-parent retry sees the same
patched function, so one injection point covers both sides.
"""

import multiprocessing
import os
import random
import signal
import time

import pytest

from repro import perf
from repro.bdd import AnalysisBudgetExceeded
from repro.core import compare_fleet, config_diff
from repro.core import parallel
from repro.model.types import ConfigError
from repro.parsers import parse_cisco
from repro.workloads.acl_gen import random_rules, render_cisco_acl
from repro.workloads.datacenter import gateway_fleet
from repro.workloads.figure1 import CISCO_FIGURE1, figure1_devices


def in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def crash_everywhere(task):
    raise RuntimeError("injected crash")


class TestCrashingWorker:
    def test_crash_isolated_per_pair(self, monkeypatch):
        """One poisoned pair fails alone; the rest of the batch survives."""
        real = parallel._count_pair
        devices, _ = gateway_fleet(count=4, outliers=1, rule_count=6, seed=3)

        def poisoned(task):
            if {task[0].hostname, task[1].hostname} == {
                devices[0].hostname,
                devices[1].hostname,
            }:
                raise RuntimeError("injected crash")
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", poisoned)
        pairs = [(devices[0], devices[1]), (devices[1], devices[2]), (devices[2], devices[3])]
        outcomes = parallel.pairwise_count_outcomes(pairs, workers=2)
        assert [o.status for o in outcomes] == ["error", "ok", "ok"]
        assert "injected crash" in outcomes[0].error
        assert outcomes[0].retried  # the automatic retry ran and also failed
        assert all(isinstance(o.result, int) for o in outcomes[1:])

    def test_transient_crash_healed_by_retry(self, monkeypatch):
        """A worker-only crash (e.g. environmental) succeeds on the
        in-parent serial retry."""
        real = parallel._count_pair

        def worker_only_crash(task):
            if in_worker():
                raise RuntimeError("injected crash")
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", worker_only_crash)
        d1, d2 = figure1_devices()
        outcomes = parallel.pairwise_count_outcomes([(d1, d2)] * 2, workers=2)
        assert all(o.ok and o.retried for o in outcomes)
        assert [o.result for o in outcomes] == [
            config_diff(d1, d2).total_differences()
        ] * 2

    def test_retry_disabled(self, monkeypatch):
        monkeypatch.setattr(parallel, "_count_pair", crash_everywhere)
        d1, d2 = figure1_devices()
        outcomes = parallel.pairwise_count_outcomes(
            [(d1, d2)] * 2, workers=2, retry=False
        )
        assert all(o.status == "error" and not o.retried for o in outcomes)

    def test_strict_wrappers_raise(self, monkeypatch):
        monkeypatch.setattr(parallel, "_count_pair", crash_everywhere)
        d1, d2 = figure1_devices()
        with pytest.raises(RuntimeError, match="injected crash"):
            parallel.pairwise_counts([(d1, d2)] * 2, workers=2)

    def test_serial_path_isolates_failures_too(self, monkeypatch):
        monkeypatch.setattr(parallel, "_count_pair", crash_everywhere)
        d1, d2 = figure1_devices()
        outcomes = parallel.pairwise_count_outcomes(
            [(d1, d2)], workers=1, retry=False
        )
        assert outcomes[0].status == "error"


class TestTimeoutWorker:
    def test_hung_worker_times_out_and_pool_is_reaped(self, monkeypatch):
        real = parallel._count_pair

        def hang_in_worker(task):
            if in_worker():
                time.sleep(60)
            raise RuntimeError("retry should not run")

        monkeypatch.setattr(parallel, "_count_pair", hang_in_worker)
        d1, d2 = figure1_devices()
        start = time.monotonic()
        outcomes = parallel.pairwise_count_outcomes(
            [(d1, d2)] * 2, workers=2, timeout=1.0, retry=False
        )
        elapsed = time.monotonic() - start
        assert [o.status for o in outcomes] == ["timeout", "timeout"]
        assert all("1.0s" in o.error for o in outcomes)
        assert elapsed < 30  # terminated, not joined on the 60s sleep
        # deterministic teardown: no fork children left grinding
        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.1)
        assert not multiprocessing.active_children()

    def test_timeout_healed_by_parent_retry(self, monkeypatch):
        real = parallel._count_pair

        def hang_in_worker(task):
            if in_worker():
                time.sleep(60)
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", hang_in_worker)
        d1, d2 = figure1_devices()
        outcomes = parallel.pairwise_count_outcomes(
            [(d1, d2)] * 2, workers=2, timeout=1.0
        )
        assert all(o.ok and o.retried for o in outcomes)

    def test_timeout_env_resolution(self, monkeypatch):
        monkeypatch.setenv(parallel.TIMEOUT_ENV, "2.5")
        assert parallel.resolve_timeout(None) == 2.5
        assert parallel.resolve_timeout(1.0) == 1.0
        monkeypatch.setenv(parallel.TIMEOUT_ENV, "banana")
        with pytest.raises(ValueError):
            parallel.resolve_timeout(None)
        with pytest.raises(ValueError):
            parallel.resolve_timeout(-1.0)
        monkeypatch.delenv(parallel.TIMEOUT_ENV)
        assert parallel.resolve_timeout(None) is None


class TestFleetFaults:
    def test_six_device_fleet_survives_crash_and_timeout(self, monkeypatch):
        """The acceptance scenario: crash + timeout in a 6-device fleet
        still yields a medoid from the surviving pairs and lists the
        failed pairs."""
        real = parallel._count_pair
        devices, expected_outliers = gateway_fleet(
            count=6, outliers=2, rule_count=8, seed=5
        )
        names = sorted(d.hostname for d in devices)
        # Fail the pair between the two lexicographically-last devices:
        # it cannot involve the medoid, so the reference phase never
        # recomputes (and heals) it.
        doomed = {names[-1], names[-2]}

        def faulty(task):
            if {task[0].hostname, task[1].hostname} == doomed:
                raise RuntimeError("injected crash")
            return real(task)

        # compress=False: the injected fault targets *hostnames*, which
        # symmetry compression would reroute through class
        # representatives (gateway clones share a fingerprint class).
        monkeypatch.setattr(parallel, "_count_pair", faulty)
        report = compare_fleet(devices, workers=2, timeout=30.0, compress=False)
        assert report.is_partial()
        assert list(report.failed_pairs) == [tuple(sorted(doomed))]
        assert "injected crash" in next(iter(report.failed_pairs.values()))
        assert report.reference not in doomed
        # every other device still got a full reference report
        assert set(report.reports) == set(names) - {report.reference}
        assert set(report.outliers) == set(expected_outliers)

    def test_fleet_all_pairs_failed(self, monkeypatch):
        monkeypatch.setattr(parallel, "_count_pair", crash_everywhere)
        devices, _ = gateway_fleet(count=3, outliers=0, rule_count=6, seed=1)
        # compress=False: with compression the conforming clones' intra-
        # class pairs expand to 0 without running _count_pair, so not
        # every pair can fail.
        with pytest.raises(RuntimeError, match="all 3 pairwise"):
            compare_fleet(devices, workers=2, compress=False)

    def test_fleet_reference_phase_failure_is_recorded(self, monkeypatch):
        from repro.core import fleet as fleet_module

        devices, _ = gateway_fleet(count=3, outliers=0, rule_count=6, seed=1)
        names = sorted(d.hostname for d in devices)
        real = fleet_module.config_diff

        def faulty(d1, d2, **kwargs):
            if d2.hostname == names[-1]:
                raise RuntimeError("reference diff crashed")
            return real(d1, d2, **kwargs)

        monkeypatch.setattr(fleet_module, "config_diff", faulty)
        report = compare_fleet(devices, workers=1)
        assert report.failed == [names[-1]]
        assert "reference diff crashed" in report.failed_reports[names[-1]]
        assert report.is_partial()
        assert names[-1] not in report.outliers + report.conforming
        assert "comparison failed" in report.render_summary()


class TestLenientParsing:
    BROKEN = CISCO_FIGURE1 + "\nroute-map BROKEN permit\n match ip address prefix-list\n"

    def test_strict_raises(self):
        with pytest.raises(ConfigError, match="route-map"):
            parse_cisco(self.BROKEN, "r.cfg", strict=True)

    def test_lenient_records_and_skips(self):
        device = parse_cisco(self.BROKEN, "r.cfg", strict=False)
        assert device.parse_degraded()
        assert "BROKEN" not in device.route_maps
        assert "POL" in device.route_maps  # healthy stanzas unaffected
        (diagnostic,) = device.parse_errors()
        assert diagnostic.span.start_line > 0
        assert diagnostic.span.filename == "r.cfg"
        assert "route-map" in diagnostic.reason

    def test_lenient_pair_report_flags_degraded(self):
        device1 = parse_cisco(self.BROKEN, "r1.cfg")
        device2 = parse_cisco(
            self.BROKEN.replace("hostname cisco_router", "hostname other"),
            "r2.cfg",
        )
        report = config_diff(device1, device2)
        assert report.is_degraded()
        assert set(report.parse_diagnostics) == {"cisco_router", "other"}


class TestNodeLimit:
    def _big_acl_device(self, hostname, seed, rules=10_000):
        text = render_cisco_acl(
            "GW_POLICY", random_rules(rules, random.Random(seed)), hostname=hostname
        )
        return parse_cisco(text, f"{hostname}.cfg")

    def test_engine_raises_structured_error(self):
        device1 = self._big_acl_device("gw1", seed=1)
        device2 = self._big_acl_device("gw2", seed=2)
        from repro.core import diff_acls

        with pytest.raises(AnalysisBudgetExceeded) as excinfo:
            diff_acls(
                device1.acls["GW_POLICY"],
                device2.acls["GW_POLICY"],
                "gw1",
                "gw2",
                node_limit=2_000,
            )
        assert excinfo.value.resource == "nodes"
        assert excinfo.value.limit == 2_000

    def test_config_diff_aborts_only_offending_component(self):
        device1 = self._big_acl_device("gw1", seed=1)
        device2 = self._big_acl_device("gw2", seed=2)
        report = config_diff(device1, device2, node_limit=2_000)
        assert report.is_degraded()
        (aborted,) = report.aborted
        assert "GW_POLICY" in aborted.component
        assert aborted.resource == "nodes"
        assert not report.is_equivalent()  # verdict unknown, not "equivalent"

    def test_generous_limit_does_not_trip(self):
        d1, d2 = figure1_devices()
        unbudgeted = config_diff(d1, d2)
        budgeted = config_diff(d1, d2, node_limit=1_000_000)
        assert not budgeted.aborted
        assert budgeted.total_differences() == unbudgeted.total_differences()


class TestWorkerDeath:
    """A worker process dying outright (SIGKILL — OOM killer, segfault)
    is classified per-pair, the pool respawns, and the in-parent retry
    still gets a shot."""

    @staticmethod
    def _kill_in_worker_factory(real):
        def kill_in_worker(task):
            if in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            return real(task)

        return kill_in_worker

    def test_killed_worker_classified_and_healed_by_retry(self, monkeypatch):
        real = parallel._count_pair
        monkeypatch.setattr(
            parallel, "_count_pair", self._kill_in_worker_factory(real)
        )
        d1, d2 = figure1_devices()
        base = perf.REGISTRY.counters.get("parallel.pool_respawns", 0)
        outcomes = parallel.pairwise_count_outcomes([(d1, d2)] * 2, workers=2)
        # every worker attempt died; the in-parent serial retry healed it
        assert all(o.ok and o.retried for o in outcomes)
        assert [o.result for o in outcomes] == [
            config_diff(d1, d2).total_differences()
        ] * 2
        assert perf.REGISTRY.counters.get("parallel.pool_respawns", 0) > base

    def test_killed_worker_without_retry_reports_crashed(self, monkeypatch):
        real = parallel._count_pair
        monkeypatch.setattr(
            parallel, "_count_pair", self._kill_in_worker_factory(real)
        )
        d1, d2 = figure1_devices()
        outcomes = parallel.pairwise_count_outcomes(
            [(d1, d2)] * 2, workers=2, retry=False
        )
        assert [o.status for o in outcomes] == ["crashed", "crashed"]
        assert all("worker-crashed" in o.error for o in outcomes)
        # deterministic teardown even after SIGKILLs
        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.1)
        assert not multiprocessing.active_children()

    def test_completed_results_harvested_from_broken_generation(
        self, monkeypatch
    ):
        """One poison pair must not discard its generation's finished
        work: the healthy pair's result is harvested, not recomputed."""
        real = parallel._count_pair
        devices, _ = gateway_fleet(count=3, outliers=0, rule_count=6, seed=9)
        doomed = {devices[0].hostname, devices[1].hostname}

        def kill_one_pair(task):
            if (
                in_worker()
                and {task[0].hostname, task[1].hostname} == doomed
            ):
                os.kill(os.getpid(), signal.SIGKILL)
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", kill_one_pair)
        pairs = [
            (devices[0], devices[1]),
            (devices[1], devices[2]),
            (devices[0], devices[2]),
        ]
        outcomes = parallel.pairwise_count_outcomes(
            pairs, workers=2, retry=False
        )
        assert outcomes[0].status == "crashed"
        assert [o.status for o in outcomes[1:]] == ["ok", "ok"]

    def test_fleet_survives_killed_worker(self, monkeypatch):
        """End to end: a worker SIGKILL during the fleet matrix leaves
        the report intact (healed by the serial retry)."""
        real = parallel._count_pair
        monkeypatch.setattr(
            parallel, "_count_pair", self._kill_in_worker_factory(real)
        )
        devices, expected = gateway_fleet(
            count=4, outliers=1, rule_count=6, seed=5
        )
        report = compare_fleet(devices, workers=2)
        assert not report.failed_pairs
        assert set(report.outliers) == set(expected)


def _sans_notes(serialized: dict) -> dict:
    """A serialized fleet report minus its (schema v4) ``notes`` field."""
    return {key: value for key, value in serialized.items() if key != "notes"}


class TestFleetAtomsFaults:
    """Fault paths of the fleet-scale shared-atom backend: per-group
    fallbacks must degrade, never corrupt the report."""

    def _fleet(self, seed=7):
        return gateway_fleet(count=4, outliers=1, rule_count=8, seed=seed)

    def test_atom_budget_fallback_keeps_report_intact(self, monkeypatch):
        from repro.bdd.atoms import ATOM_BUDGET_ENV
        from repro.core.serialize import fleet_report_to_dict

        devices, expected = self._fleet()
        baseline = fleet_report_to_dict(
            compare_fleet(devices, workers=1, set_backend="atoms")
        )
        monkeypatch.setenv(ATOM_BUDGET_ENV, "2")
        base = perf.REGISTRY.counters.get("fleet_atoms.budget_fallbacks", 0)
        report = compare_fleet(devices, workers=1, set_backend="fleet-atoms")
        assert (
            perf.REGISTRY.counters.get("fleet_atoms.budget_fallbacks", 0)
            > base
        )
        assert any(
            "falling back to per-pair atoms" in note for note in report.notes
        )
        # The fallback note is *supposed* to appear in the serialized
        # form (schema v4); everything else must match the baseline.
        assert _sans_notes(fleet_report_to_dict(report)) == _sans_notes(baseline)
        assert set(report.outliers) == set(expected)

    def test_coverage_guard_fallback_keeps_report_intact(self, monkeypatch):
        from repro.bdd.fleet_atoms import UniverseCoverageError
        from repro.core import fleet_atoms as fleet_atoms_module
        from repro.core.serialize import fleet_report_to_dict

        devices, expected = self._fleet()
        baseline = fleet_report_to_dict(
            compare_fleet(devices, workers=1, set_backend="atoms")
        )

        def tripped(self, fp_to_acl):
            raise UniverseCoverageError("injected coverage hole")

        monkeypatch.setattr(
            fleet_atoms_module.FleetAtomizer, "_acl_vectors", tripped
        )
        report = compare_fleet(devices, workers=1, set_backend="fleet-atoms")
        assert any(
            "injected coverage hole" in note for note in report.notes
        )
        assert _sans_notes(fleet_report_to_dict(report)) == _sans_notes(baseline)
        assert set(report.outliers) == set(expected)

    def test_worker_crash_under_fleet_atoms(self, monkeypatch):
        """SIGKILLed workers + fleet-atoms seeding: the memo-seeded
        matrix still completes (serial retry) with an intact report."""
        from repro.core.serialize import fleet_report_to_dict

        devices, expected = self._fleet()
        baseline = fleet_report_to_dict(
            compare_fleet(devices, workers=1, set_backend="atoms")
        )
        real = parallel._count_pair

        def kill_in_worker(task):
            if in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            return real(task)

        monkeypatch.setattr(parallel, "_count_pair", kill_in_worker)
        report = compare_fleet(
            devices, workers=2, set_backend="fleet-atoms"
        )
        assert not report.failed_pairs
        assert fleet_report_to_dict(report) == baseline
        assert set(report.outliers) == set(expected)
