"""Tests for the Minesweeper-style monolithic baseline (Tables 3 and 5)."""

import pytest

from repro.baseline import (
    monolithic_acl_check,
    monolithic_route_map_check,
    monolithic_static_route_check,
    route_map_difference_set,
)
from repro.encoding import RouteSpace
from repro.model import Acl, AclAction, AclLine, DeviceConfig, Prefix, StaticRoute, ip_to_int
from repro.workloads.figure1 import figure1_devices, section2_static_devices


@pytest.fixture(scope="module")
def figure1_maps():
    cisco, juniper = figure1_devices()
    return cisco.route_maps["POL"], juniper.route_maps["POL"]


class TestRouteMapCheck:
    def test_single_counterexample_for_figure1(self, figure1_maps):
        counterexample = monolithic_route_map_check(
            *figure1_maps, router1="cisco_router", router2="juniper_router"
        )
        assert counterexample is not None
        # Table 3: the witness is a sub-prefix of a NETS network that the
        # Juniper map accepts and the Cisco map rejects.
        prefix = counterexample.route.prefix
        assert 16 < prefix.length <= 32
        assert Prefix.parse("10.9.0.0/16").contains_prefix(prefix) or Prefix.parse(
            "10.100.0.0/16"
        ).contains_prefix(prefix)

    def test_table3_rendering(self, figure1_maps):
        counterexample = monolithic_route_map_check(
            *figure1_maps, router1="cisco_router", router2="juniper_router"
        )
        rendered = counterexample.render()
        assert "Route received (cisco_router)" in rendered
        assert "Packet" in rendered and "dstIp" in rendered
        assert "juniper_router forwards (BGP)" in rendered
        assert "cisco_router does not forward" in rendered

    def test_equivalent_maps_return_none(self, figure1_maps):
        map1, _ = figure1_maps
        assert monolithic_route_map_check(map1, map1) is None

    def test_deterministic(self, figure1_maps):
        first = monolithic_route_map_check(*figure1_maps)
        second = monolithic_route_map_check(*figure1_maps)
        assert first.route == second.route

    def test_difference_set_union_nonempty(self, figure1_maps):
        space = RouteSpace(list(figure1_maps))
        pieces = route_map_difference_set(space, *figure1_maps)
        assert pieces
        assert all(not piece.is_false() for piece, _, _ in pieces)
        assert all(action1 != action2 for _, action1, action2 in pieces)


class TestStaticRouteCheck:
    def test_table5_output(self):
        cisco, juniper = section2_static_devices()
        counterexample = monolithic_static_route_check(cisco, juniper)
        assert counterexample is not None
        assert counterexample.forwards1 != counterexample.forwards2
        rendered = counterexample.render()
        assert "dstIp: 10.1.1.2" in rendered
        assert "cisco_router forwards (static)" in rendered
        assert "juniper_router does not forward" in rendered

    def test_equal_static_sets(self):
        route = StaticRoute(prefix=Prefix.parse("10.0.0.0/24"), next_hop=1)
        d1 = DeviceConfig(hostname="a", static_routes=[route])
        d2 = DeviceConfig(hostname="b", static_routes=[route])
        assert monolithic_static_route_check(d1, d2) is None

    def test_next_hop_difference_same_coverage(self):
        d1 = DeviceConfig(
            hostname="a",
            static_routes=[
                StaticRoute(prefix=Prefix.parse("10.0.0.0/24"), next_hop=ip_to_int("1.1.1.1"))
            ],
        )
        d2 = DeviceConfig(
            hostname="b",
            static_routes=[
                StaticRoute(prefix=Prefix.parse("10.0.0.0/24"), next_hop=ip_to_int("2.2.2.2"))
            ],
        )
        counterexample = monolithic_static_route_check(d1, d2)
        assert counterexample is not None
        assert counterexample.forwards1 and counterexample.forwards2
        assert "different next hops" in counterexample.render()

    def test_lpm_respected(self):
        """A more-specific covering route hides a next-hop difference on
        the less-specific one only where it overlaps."""
        shared_specific = StaticRoute(
            prefix=Prefix.parse("10.0.0.0/24"), next_hop=ip_to_int("9.9.9.9")
        )
        d1 = DeviceConfig(
            hostname="a",
            static_routes=[
                shared_specific,
                StaticRoute(prefix=Prefix.parse("10.0.0.0/8"), next_hop=ip_to_int("1.1.1.1")),
            ],
        )
        d2 = DeviceConfig(
            hostname="b",
            static_routes=[
                shared_specific,
                StaticRoute(prefix=Prefix.parse("10.0.0.0/8"), next_hop=ip_to_int("2.2.2.2")),
            ],
        )
        counterexample = monolithic_static_route_check(d1, d2)
        assert counterexample is not None
        # the witness must fall outside the shared /24
        assert not Prefix.parse("10.0.0.0/24").contains_address(counterexample.dst_ip)


class TestAclCheck:
    def test_difference_found(self):
        acl1 = Acl(name="F", lines=(AclLine(action=AclAction.PERMIT, protocol=6),))
        acl2 = Acl(name="F", lines=())
        counterexample = monolithic_acl_check(acl1, acl2, "r1", "r2")
        assert counterexample is not None
        assert counterexample.packet["protocol"] == "tcp"
        assert counterexample.action1 == "ACCEPT"
        assert counterexample.action2 == "REJECT"
        assert "r1: ACCEPT" in counterexample.render()

    def test_equivalent_acls(self):
        acl = Acl(name="F", lines=(AclLine(action=AclAction.PERMIT, protocol=6),))
        assert monolithic_acl_check(acl, acl) is None

    def test_structurally_different_but_equivalent(self):
        """The monolithic check is semantic: reordered disjoint rules
        compare equal."""
        line_a = AclLine(action=AclAction.PERMIT, protocol=6)
        line_b = AclLine(action=AclAction.PERMIT, protocol=17)
        acl1 = Acl(name="F", lines=(line_a, line_b))
        acl2 = Acl(name="F", lines=(line_b, line_a))
        assert monolithic_acl_check(acl1, acl2) is None
