"""Tests for the iterated-counterexample loop (§2.1)."""

import pytest

from repro.baseline import count_to_cover, iterate_route_map_counterexamples
from repro.encoding import RouteSpace
from repro.model import (
    Action,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    MatchPrefixList,
    RouteMap,
    RouteMapClause,
)
from repro.workloads.figure1 import figure1_devices


@pytest.fixture(scope="module")
def figure1_maps():
    cisco, juniper = figure1_devices()
    return cisco.route_maps["POL"], juniper.route_maps["POL"]


def _small_pair():
    """Maps whose difference region is tiny, for exhaustion tests:
    disagree exactly on prefixes in (10.0.0.0/8, 8-8) — a single point
    in prefix space (times the free non-prefix dimensions)."""
    target = PrefixList(
        "T",
        (PrefixListEntry(Action.PERMIT, PrefixRange(Prefix.parse("10.0.0.0/8"), 8, 8)),),
    )
    map1 = RouteMap(
        "A",
        (RouteMapClause("c", Action.DENY, (MatchPrefixList(target),)),),
        default_action=Action.PERMIT,
    )
    map2 = RouteMap("B", (), default_action=Action.PERMIT)
    return map1, map2


class TestIterationLoop:
    def test_examples_are_distinct_with_point_blocking(self, figure1_maps):
        result = iterate_route_map_counterexamples(
            *figure1_maps, stop=lambda examples: len(examples) >= 10, seed=1
        )
        assert len(result) == 10
        # Point blocking guarantees pairwise-distinct total models; the
        # decoded views may coincide only if don't-care bits differed,
        # which decode masks — so require at least 2 distinct routes.
        assert len({(e.prefix, e.communities) for e in result.examples}) >= 2

    def test_stop_condition_honored(self, figure1_maps):
        result = iterate_route_map_counterexamples(
            *figure1_maps, stop=lambda examples: True, seed=0
        )
        assert len(result) == 1

    def test_every_example_is_a_real_difference(self, figure1_maps):
        from repro.model import ConcreteRoute, evaluate_route_map

        map1, map2 = figure1_maps
        result = iterate_route_map_counterexamples(
            map1, map2, stop=lambda examples: len(examples) >= 8, seed=3
        )
        for example in result.examples:
            route = ConcreteRoute(
                prefix=example.prefix,
                communities=example.communities,
                local_pref=77,
            )
            result1 = evaluate_route_map(map1, route)
            result2 = evaluate_route_map(map2, route)
            assert (result1.accepted, result1.route) != (result2.accepted, result2.route)

    def test_equivalent_maps_exhaust_immediately(self):
        map2 = RouteMap("B", (), default_action=Action.PERMIT)
        result = iterate_route_map_counterexamples(
            map2, map2, stop=lambda examples: False, max_iterations=5
        )
        assert result.exhausted
        assert len(result) == 0

    def test_cube_blocking_exhausts_small_space(self):
        map1, map2 = _small_pair()
        result = iterate_route_map_counterexamples(
            map1,
            map2,
            stop=lambda examples: False,
            max_iterations=50,
            block_mode="cube",
        )
        assert result.exhausted
        assert len(result) >= 1

    def test_invalid_block_mode_rejected(self, figure1_maps):
        with pytest.raises(ValueError):
            iterate_route_map_counterexamples(
                *figure1_maps, stop=lambda examples: True, block_mode="bogus"
            )


class TestCountToCover:
    def test_figure1_coverage_counts(self, figure1_maps):
        """The §2.1 experiment: several counterexamples are needed before
        both Difference-1 prefix ranges have a witness."""
        map1, map2 = figure1_maps
        space = RouteSpace([map1, map2])
        targets = [
            space.range_pred(PrefixRange(Prefix.parse("10.9.0.0/16"), 17, 32)),
            space.range_pred(PrefixRange(Prefix.parse("10.100.0.0/16"), 17, 32)),
        ]
        count = count_to_cover(
            map1, map2, targets, space, seed=0, max_iterations=400, block_mode="cube"
        )
        assert count is not None
        assert count >= 2, "one counterexample cannot cover two disjoint ranges"

    def test_single_target_immediate_when_it_is_whole_diff(self):
        map1, map2 = _small_pair()
        space = RouteSpace([map1, map2])
        target = space.range_pred(PrefixRange(Prefix.parse("10.0.0.0/8"), 8, 8))
        count = count_to_cover(map1, map2, [target], space, seed=0)
        assert count == 1

    def test_unreachable_target_returns_none(self, figure1_maps):
        map1, map2 = figure1_maps
        space = RouteSpace([map1, map2])
        # 10.9.0.0/16 exact is treated identically (both reject), so no
        # counterexample can ever land there.
        unreachable = space.range_pred(PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 16))
        count = count_to_cover(
            map1,
            map2,
            [unreachable],
            space,
            seed=0,
            max_iterations=30,
            block_mode="cube",
        )
        assert count is None
