"""Tests for the lightweight perf-telemetry registry."""

import json

import pytest

from repro import perf
from repro.perf import PerfRegistry


@pytest.fixture(autouse=True)
def clean_registry():
    perf.reset()
    yield
    perf.reset()


class TestRegistry:
    def test_counters_accumulate(self):
        registry = PerfRegistry()
        registry.add("widgets")
        registry.add("widgets", 4)
        assert registry.snapshot()["counters"]["widgets"] == 5

    def test_timer_records_calls(self):
        registry = PerfRegistry()
        with registry.timer("phase"):
            pass
        with registry.timer("phase"):
            pass
        timers = registry.snapshot()["timers"]
        assert timers["phase"]["calls"] == 2
        assert timers["phase"]["total_s"] >= 0.0
        assert timers["phase"]["max_s"] >= timers["phase"]["mean_s"]

    def test_record_direct(self):
        registry = PerfRegistry()
        registry.record("io", 0.25)
        registry.record("io", 0.75)
        timers = registry.snapshot()["timers"]
        assert timers["io"]["calls"] == 2
        assert timers["io"]["total_s"] == pytest.approx(1.0)
        assert timers["io"]["max_s"] == pytest.approx(0.75)

    def test_reset(self):
        registry = PerfRegistry()
        registry.add("x")
        registry.record("t", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["timers"] == {}

    def test_dump_json(self, tmp_path):
        registry = PerfRegistry()
        registry.add("events", 3)
        path = tmp_path / "perf.json"
        registry.dump_json(path)
        data = json.loads(path.read_text())
        assert data["counters"]["events"] == 3


class TestModuleLevelRegistry:
    def test_global_conveniences(self):
        perf.add("global.counter", 2)
        with perf.timer("global.timer"):
            pass
        snapshot = perf.snapshot()
        assert snapshot["counters"]["global.counter"] == 2
        assert snapshot["timers"]["global.timer"]["calls"] == 1


class TestInstrumentation:
    def test_semantic_diff_reports(self):
        from repro.workloads.university import university_network

        network = university_network()
        from repro.core import config_diff

        config_diff(network.core.cisco, network.core.juniper)
        snapshot = perf.snapshot()
        assert "semantic_diff" in snapshot["timers"]
        assert snapshot["counters"].get("semantic_diff.classes", 0) > 0

    def test_parsers_report(self):
        from repro.parsers import parse_config

        parse_config("ip access-list extended DEMO\n permit ip any any\n")
        snapshot = perf.snapshot()
        assert snapshot["timers"]["parse.cisco"]["calls"] == 1
        assert snapshot["counters"]["parse.cisco.lines"] > 0

    def test_union_memoization_counter(self):
        from repro.core.results import ComponentKind
        from repro.core.semantic_diff import semantic_diff_classes
        from repro.encoding import PacketSpace, acl_equivalence_classes
        from repro.parsers import parse_config

        device = parse_config(
            "ip access-list extended DEMO\n"
            " permit tcp any any eq 80\n"
            " deny ip any any\n"
        )
        acl = next(iter(device.acls.values()))
        space = PacketSpace()
        classes = acl_equivalence_classes(space, acl)
        # The union memo belongs to the "bdd" set-algebra backend; pin
        # it so the default ("atoms") backend doesn't bypass the memo.
        semantic_diff_classes(ComponentKind.ACL, classes, classes, backend="bdd")
        first = perf.snapshot()["counters"].get("semantic_diff.union_cache_hits", 0)
        semantic_diff_classes(ComponentKind.ACL, classes, classes, backend="bdd")
        second = perf.snapshot()["counters"]["semantic_diff.union_cache_hits"]
        assert second > first
