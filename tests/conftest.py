"""Shared fixtures: keep tests hermetic against the user's real cache.

Any test that exercises the CLI without ``--no-cache`` would otherwise
read and write ``~/.cache/campion``; pointing ``CAMPION_CACHE_DIR`` at
a per-test temporary directory isolates every test run (and tests that
pass an explicit ``--cache-dir`` still win over the environment).
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("CAMPION_CACHE_DIR", str(tmp_path / "campion-cache"))
