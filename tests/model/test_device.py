"""Tests for the device container and the remaining component models."""

from repro.model import (
    BgpNeighbor,
    BgpProcess,
    ConnectedRoute,
    DEFAULT_ADMIN_DISTANCES,
    DeviceConfig,
    Interface,
    OspfInterfaceSettings,
    OspfProcess,
    Prefix,
    Redistribution,
    SourceSpan,
    StaticRoute,
    ip_to_int,
)


class TestInterface:
    def test_connected_route_masks_host_bits(self):
        interface = Interface(name="e0", address=Prefix.parse("10.0.0.0/24"))
        route = interface.connected_route()
        assert route == ConnectedRoute(Prefix.parse("10.0.0.0/24"), "e0")

    def test_shutdown_contributes_nothing(self):
        interface = Interface(
            name="e0", address=Prefix.parse("10.0.0.0/24"), shutdown=True
        )
        assert interface.connected_route() is None

    def test_unaddressed_contributes_nothing(self):
        assert Interface(name="e0").connected_route() is None
        assert Interface(name="e0").subnet() is None


class TestStaticRoute:
    def test_attributes_tuple(self):
        route = StaticRoute(
            prefix=Prefix.parse("10.0.0.0/24"), next_hop=1, admin_distance=5, tag=9
        )
        assert route.attributes() == (Prefix.parse("10.0.0.0/24"), 1, None, 5, 9)

    def test_source_not_compared(self):
        first = StaticRoute(
            prefix=Prefix.parse("10.0.0.0/24"),
            next_hop=1,
            source=SourceSpan("a", 1, 1, ("x",)),
        )
        second = StaticRoute(
            prefix=Prefix.parse("10.0.0.0/24"),
            next_hop=1,
            source=SourceSpan("b", 2, 2, ("y",)),
        )
        assert first == second

    def test_describe(self):
        route = StaticRoute(
            prefix=Prefix.parse("10.0.0.0/24"), next_hop=ip_to_int("1.2.3.4"), tag=7
        )
        text = route.describe()
        assert "10.0.0.0/24" in text and "1.2.3.4" in text and "tag 7" in text


class TestBgpModel:
    def test_neighbor_map(self):
        process = BgpProcess(
            asn=1,
            neighbors=(
                BgpNeighbor(peer_ip=10, remote_as=2),
                BgpNeighbor(peer_ip=20, remote_as=3),
            ),
        )
        assert set(process.neighbor_map()) == {10, 20}

    def test_neighbor_attributes_hide_policy_names(self):
        neighbor = BgpNeighbor(peer_ip=1, remote_as=2, import_policy="ANY-NAME")
        attributes = neighbor.attributes()
        assert attributes["has-import-policy"] is True
        assert "ANY-NAME" not in str(attributes.values())

    def test_redistribution_key(self):
        redistribution = Redistribution(from_protocol="static", route_map="RM")
        assert redistribution.key() == "static"
        assert redistribution.attributes()["has-route-map"] is True


class TestOspfModel:
    def test_interface_map(self):
        process = OspfProcess(
            interfaces=(
                OspfInterfaceSettings(interface="e0", area=0, cost=10),
                OspfInterfaceSettings(interface="e1", area=1),
            )
        )
        assert process.interface_map()["e0"].cost == 10

    def test_attributes(self):
        settings = OspfInterfaceSettings(interface="e0", area=2, cost=5, passive=True)
        attributes = settings.attributes()
        assert attributes["area"] == 2
        assert attributes["cost"] == 5
        assert attributes["passive"] is True


class TestDeviceConfig:
    def test_connected_routes_sorted_and_filtered(self):
        device = DeviceConfig(hostname="r1")
        device.interfaces["b"] = Interface("b", address=Prefix.parse("10.2.0.0/24"))
        device.interfaces["a"] = Interface("a", address=Prefix.parse("10.1.0.0/24"))
        device.interfaces["down"] = Interface(
            "down", address=Prefix.parse("10.3.0.0/24"), shutdown=True
        )
        routes = device.connected_routes()
        assert [str(r.prefix) for r in routes] == ["10.1.0.0/24", "10.2.0.0/24"]

    def test_default_admin_distances_copied(self):
        device1 = DeviceConfig(hostname="r1")
        device2 = DeviceConfig(hostname="r2")
        device1.admin_distances["static"] = 77
        assert device2.admin_distances["static"] == DEFAULT_ADMIN_DISTANCES["static"]

    def test_span_for_clips_to_file(self):
        device = DeviceConfig(hostname="r1", raw_lines=("a", "b", "c"))
        span = device.span_for(2, 5)
        assert span.text == ("b", "c")
        assert device.line_count() == 3
