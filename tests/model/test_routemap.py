"""Tests for routing-policy model types: lists, matches, sets, route maps."""

import pytest

from repro.model import (
    Action,
    AsPathList,
    AsPathListEntry,
    Community,
    CommunityList,
    CommunityListEntry,
    ConfigError,
    MatchCommunities,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetCommunities,
    SetLocalPref,
    community_regex_matches,
)


def _range(text):
    return PrefixRange.parse(text)


class TestPrefixList:
    def test_first_match_permit(self):
        prefix_list = PrefixList(
            "L",
            (
                PrefixListEntry(Action.DENY, _range("10.9.0.0/16 : 16-24")),
                PrefixListEntry(Action.PERMIT, _range("10.0.0.0/8 : 8-32")),
            ),
        )
        assert not prefix_list.permits(Prefix.parse("10.9.1.0/24"))  # deny first
        assert prefix_list.permits(Prefix.parse("10.8.0.0/16"))

    def test_default_deny(self):
        prefix_list = PrefixList("L", ())
        assert not prefix_list.permits(Prefix.parse("10.0.0.0/8"))

    def test_ranges_extraction(self):
        prefix_list = PrefixList(
            "L", (PrefixListEntry(Action.PERMIT, _range("10.9.0.0/16 : 16-32")),)
        )
        assert prefix_list.ranges() == [_range("10.9.0.0/16 : 16-32")]


class TestCommunityList:
    def test_single_community_any_semantics(self):
        """Cisco style: two entries, either community matches."""
        community_list = CommunityList(
            "C",
            (
                CommunityListEntry(Action.PERMIT, frozenset({Community.parse("10:10")})),
                CommunityListEntry(Action.PERMIT, frozenset({Community.parse("10:11")})),
            ),
        )
        assert community_list.matches(frozenset({Community.parse("10:10")}))
        assert community_list.matches(frozenset({Community.parse("10:11")}))
        assert not community_list.matches(frozenset({Community.parse("10:12")}))

    def test_conjunction_all_semantics(self):
        """Juniper style: one entry with two members requires both."""
        both = frozenset({Community.parse("10:10"), Community.parse("10:11")})
        community_list = CommunityList(
            "C", (CommunityListEntry(Action.PERMIT, both),)
        )
        assert community_list.matches(both)
        assert not community_list.matches(frozenset({Community.parse("10:10")}))

    def test_deny_entry_shadows(self):
        community_list = CommunityList(
            "C",
            (
                CommunityListEntry(Action.DENY, frozenset({Community.parse("1:1")})),
                CommunityListEntry(Action.PERMIT, frozenset({Community.parse("1:1")})),
            ),
        )
        assert not community_list.matches(frozenset({Community.parse("1:1")}))

    def test_regex_entry(self):
        community_list = CommunityList(
            "C", (CommunityListEntry(Action.PERMIT, regex="_52:1[0-9]_"),)
        )
        assert community_list.matches(frozenset({Community.parse("52:15")}))
        assert not community_list.matches(frozenset({Community.parse("52:25")}))

    def test_entry_needs_exactly_one_kind(self):
        with pytest.raises(ConfigError):
            CommunityListEntry(Action.PERMIT)  # neither members nor regex
        with pytest.raises(ConfigError):
            CommunityListEntry(
                Action.PERMIT,
                communities=frozenset({Community.parse("1:1")}),
                regex="x",
            )

    def test_mentioned_communities(self):
        community_list = CommunityList(
            "C",
            (
                CommunityListEntry(Action.PERMIT, frozenset({Community.parse("1:1")})),
                CommunityListEntry(Action.PERMIT, regex="_2:2_"),
            ),
        )
        assert community_list.mentioned_communities() == frozenset(
            {Community.parse("1:1")}
        )


class TestCommunityRegex:
    def test_underscore_delimits(self):
        assert community_regex_matches("_10:10_", Community.parse("10:10"))
        assert not community_regex_matches("_0:10_", Community.parse("10:10"))

    def test_anchored(self):
        assert community_regex_matches("^52:1[0-5]$", Community.parse("52:13"))
        assert not community_regex_matches("^52:1[0-5]$", Community.parse("52:16"))

    def test_unanchored_substring(self):
        assert community_regex_matches("2:1", Community.parse("52:13"))

    def test_bad_regex_raises(self):
        with pytest.raises(ConfigError):
            community_regex_matches("[", Community.parse("1:1"))


class TestAsPathList:
    def test_permit_regex(self):
        as_path_list = AsPathList(
            "A", (AsPathListEntry(Action.PERMIT, "_100_"),)
        )
        assert as_path_list.permits((200, 100, 300))
        assert not as_path_list.permits((200, 1001))

    def test_default_deny(self):
        assert not AsPathList("A", ()).permits((1, 2))

    def test_first_match(self):
        as_path_list = AsPathList(
            "A",
            (
                AsPathListEntry(Action.DENY, "^100"),
                AsPathListEntry(Action.PERMIT, "_100_"),
            ),
        )
        assert not as_path_list.permits((100, 200))
        assert as_path_list.permits((200, 100))

    def test_bad_regex_raises(self):
        entry = AsPathListEntry(Action.PERMIT, "[")
        with pytest.raises(ConfigError):
            entry.matches((1,))


class TestRouteMapStructure:
    def _map(self):
        nets = PrefixList(
            "NETS", (PrefixListEntry(Action.PERMIT, _range("10.9.0.0/16 : 16-32")),)
        )
        comm = CommunityList(
            "COMM",
            (CommunityListEntry(Action.PERMIT, frozenset({Community.parse("1:1")})),),
        )
        return RouteMap(
            "POL",
            (
                RouteMapClause("c1", Action.DENY, (MatchPrefixList(nets),)),
                RouteMapClause(
                    "c2",
                    Action.PERMIT,
                    (MatchCommunities(comm),),
                    (SetCommunities(frozenset({Community.parse("2:2")})),),
                ),
            ),
        )

    def test_prefix_ranges(self):
        assert self._map().prefix_ranges() == [_range("10.9.0.0/16 : 16-32")]

    def test_mentioned_communities_includes_sets(self):
        communities = self._map().mentioned_communities()
        assert Community.parse("1:1") in communities
        assert Community.parse("2:2") in communities

    def test_community_regexes(self):
        regex_list = CommunityList(
            "R", (CommunityListEntry(Action.PERMIT, regex="_5:5_"),)
        )
        route_map = RouteMap(
            "P",
            (RouteMapClause("c", Action.PERMIT, (MatchCommunities(regex_list),)),),
        )
        assert route_map.community_regexes() == ["_5:5_"]

    def test_clause_action_summary(self):
        clause = RouteMapClause(
            "c", Action.PERMIT, (), (SetLocalPref(30),)
        )
        assert clause.action_summary() == "SET LOCAL PREF 30\nACCEPT"
        deny = RouteMapClause("d", Action.DENY, (), (SetLocalPref(30),))
        assert deny.action_summary() == "REJECT"

    def test_set_action_equality_ignores_source(self):
        from repro.model import SourceSpan

        first = SetLocalPref(30, SourceSpan("a.cfg", 1, 1, ("x",)))
        second = SetLocalPref(30, SourceSpan("b.cfg", 9, 9, ("y",)))
        assert first == second
