"""Tests for concrete route-map evaluation (the oracle semantics)."""

import pytest

from repro.model import (
    Action,
    Community,
    CommunityList,
    CommunityListEntry,
    ConcreteRoute,
    MatchCommunities,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
    evaluate_route_map,
)


def _nets():
    return PrefixList(
        "NETS",
        (
            PrefixListEntry(
                Action.PERMIT, PrefixRange(Prefix.parse("10.9.0.0/16"), 16, 32)
            ),
        ),
    )


def _route(prefix="10.9.1.0/24", **kwargs):
    return ConcreteRoute(prefix=Prefix.parse(prefix), **kwargs)


class TestFirstMatch:
    def test_first_matching_clause_decides(self):
        route_map = RouteMap(
            "P",
            (
                RouteMapClause("deny-nets", Action.DENY, (MatchPrefixList(_nets()),)),
                RouteMapClause("allow", Action.PERMIT),
            ),
        )
        assert not evaluate_route_map(route_map, _route()).accepted
        assert evaluate_route_map(route_map, _route("11.0.0.0/8")).accepted

    def test_default_deny(self):
        route_map = RouteMap(
            "P", (RouteMapClause("c", Action.PERMIT, (MatchPrefixList(_nets()),)),)
        )
        result = evaluate_route_map(route_map, _route("11.0.0.0/8"))
        assert not result.accepted
        assert result.clause is None

    def test_default_permit(self):
        route_map = RouteMap("P", (), default_action=Action.PERMIT)
        result = evaluate_route_map(route_map, _route())
        assert result.accepted
        assert result.route == _route()

    def test_result_names_the_clause(self):
        route_map = RouteMap(
            "P", (RouteMapClause("only", Action.DENY, (MatchPrefixList(_nets()),)),)
        )
        result = evaluate_route_map(route_map, _route())
        assert result.clause.name == "only"
        assert "only" in result.describe()


class TestConditionConjunction:
    def test_all_conditions_must_hold(self):
        comm = CommunityList(
            "C",
            (CommunityListEntry(Action.PERMIT, frozenset({Community.parse("1:1")})),),
        )
        clause = RouteMapClause(
            "c", Action.PERMIT, (MatchPrefixList(_nets()), MatchCommunities(comm))
        )
        route_map = RouteMap("P", (clause,))
        with_comm = _route(communities=frozenset({Community.parse("1:1")}))
        without = _route()
        assert evaluate_route_map(route_map, with_comm).accepted
        assert not evaluate_route_map(route_map, without).accepted

    def test_tag_and_protocol(self):
        clause = RouteMapClause(
            "c", Action.PERMIT, (MatchTag(7), MatchProtocol("static"))
        )
        route_map = RouteMap("P", (clause,))
        assert evaluate_route_map(
            route_map, _route(tag=7, protocol="static")
        ).accepted
        assert not evaluate_route_map(route_map, _route(tag=7)).accepted
        assert not evaluate_route_map(
            route_map, _route(tag=8, protocol="static")
        ).accepted


class TestSetActions:
    def _accepting(self, *sets):
        return RouteMap("P", (RouteMapClause("c", Action.PERMIT, (), tuple(sets)),))

    def test_local_pref(self):
        result = evaluate_route_map(self._accepting(SetLocalPref(200)), _route())
        assert result.route.local_pref == 200

    def test_med(self):
        result = evaluate_route_map(self._accepting(SetMed(55)), _route())
        assert result.route.med == 55

    def test_tag_and_next_hop(self):
        result = evaluate_route_map(
            self._accepting(SetTag(9), SetNextHop(0x01020304)), _route()
        )
        assert result.route.tag == 9
        assert result.route.next_hop == 0x01020304

    def test_community_replace(self):
        new = frozenset({Community.parse("5:5")})
        result = evaluate_route_map(
            self._accepting(SetCommunities(new)),
            _route(communities=frozenset({Community.parse("1:1")})),
        )
        assert result.route.communities == new

    def test_community_additive(self):
        extra = frozenset({Community.parse("5:5")})
        original = frozenset({Community.parse("1:1")})
        result = evaluate_route_map(
            self._accepting(SetCommunities(extra, additive=True)),
            _route(communities=original),
        )
        assert result.route.communities == original | extra

    def test_as_path_prepend(self):
        result = evaluate_route_map(
            self._accepting(SetAsPathPrepend((100, 100))), _route(as_path=(7,))
        )
        assert result.route.as_path == (100, 100, 7)

    def test_sets_ignored_on_deny(self):
        route_map = RouteMap(
            "P", (RouteMapClause("c", Action.DENY, (), (SetLocalPref(999),)),)
        )
        result = evaluate_route_map(route_map, _route())
        assert not result.accepted
        assert result.route is None


class TestRouteImmutability:
    def test_with_updates_copies(self):
        route = _route()
        updated = route.with_updates(local_pref=7)
        assert route.local_pref == 100
        assert updated.local_pref == 7
