"""Tests for canonical component fingerprints."""

import pickle

import pytest

from repro.model import fingerprint as fp_module
from repro.model.fingerprint import (
    ComponentFingerprints,
    DeviceTemplate,
    canonical_form,
    compute_fingerprints,
    compute_template,
    fingerprint_value,
    partition_by_template_fingerprint,
)
from repro.model.types import SourceSpan
from repro.parsers import parse_cisco
from repro.workloads.datacenter import parameterized_clos_fleet
from repro.workloads.figure1 import CISCO_FIGURE1


def _named(hostname, filename=None, text=CISCO_FIGURE1):
    renamed = text.replace("hostname cisco_router", f"hostname {hostname}")
    return parse_cisco(renamed, filename or f"{hostname}.cfg")


class TestCanonicalForm:
    def test_spans_are_erased(self):
        span = SourceSpan("a.cfg", 1, 2, ("line",))
        assert canonical_form(span) == ("<span>",)

    def test_dict_order_does_not_leak(self):
        assert canonical_form({"b": 2, "a": 1}) == canonical_form(
            {"a": 1, "b": 2}
        )

    def test_set_order_does_not_leak(self):
        assert canonical_form({3, 1, 2}) == canonical_form({2, 3, 1})

    def test_sequence_order_matters(self):
        assert canonical_form([1, 2]) != canonical_form([2, 1])


class TestDeviceFingerprints:
    def test_computed_at_parse_time(self):
        device = _named("r1")
        assert "_fingerprints" in device.__dict__
        assert isinstance(device.fingerprints, ComponentFingerprints)

    def test_identity_changes_do_not_change_fingerprints(self):
        # Same content under a different hostname and filename: every
        # component fingerprint (and the whole-device one) is equal.
        one = _named("r1", "one.cfg")
        two = _named("r2", "subdir/two.cfg")
        assert one.fingerprints == two.fingerprints

    def test_line_numbers_do_not_change_fingerprints(self):
        shifted = "!\n!\n!\n" + CISCO_FIGURE1
        assert (
            _named("r1").fingerprints == _named("r1", text=shifted).fingerprints
        )

    def test_semantic_change_changes_fingerprints(self):
        base = _named("r1")
        changed = _named("r1", text=CISCO_FIGURE1.replace("deny", "permit", 1))
        assert base.fingerprints != changed.fingerprints
        assert base.fingerprints.device != changed.fingerprints.device

    def test_component_accessors(self):
        fps = _named("r1").fingerprints
        for name, digest in fps.route_maps.items():
            assert fps.route_map(name) == digest
        for name, digest in fps.acls.items():
            assert fps.acl(name) == digest

    def test_fingerprints_survive_pickling(self):
        device = _named("r1")
        expected = device.fingerprints
        clone = pickle.loads(pickle.dumps(device))
        assert "_fingerprints" in clone.__dict__
        assert clone.fingerprints == expected

    def test_fingerprints_are_deterministic(self):
        assert (
            compute_fingerprints(_named("r1"))
            == compute_fingerprints(_named("r1"))
        )


class TestDeviceTemplate:
    def test_cached_on_first_access(self):
        device = _named("r1")
        assert "_template" not in device.__dict__
        assert isinstance(device.template, DeviceTemplate)
        assert "_template" in device.__dict__
        assert device.template is device.template

    def test_renamed_clone_has_identical_template(self):
        one = _named("r1", "one.cfg")
        two = _named("r2", "two.cfg")
        assert one.template.fingerprint == two.template.fingerprint
        assert one.template.substitution == two.template.substitution

    def test_same_role_devices_share_template_with_distinct_substitutions(
        self,
    ):
        devices, role_of = parameterized_clos_fleet(
            count=6, roles=2, rule_count=6, seed=0
        )
        same_role = [
            d for d in devices if role_of[d.hostname] == role_of[devices[0].hostname]
        ]
        first, second = same_role[0], same_role[1]
        assert first.fingerprints.device != second.fingerprints.device
        assert first.template.fingerprint == second.template.fingerprint
        assert first.template.substitution != second.template.substitution
        assert first.template.kind_sequence == second.template.kind_sequence

    def test_partition_groups_by_role(self):
        devices, role_of = parameterized_clos_fleet(
            count=6, roles=2, rule_count=6, seed=0
        )
        classes = partition_by_template_fingerprint(devices)
        assert len(classes) == 2
        for group in classes.values():
            assert len({role_of[h] for h in group}) == 1
            assert group == tuple(sorted(group))

    def test_acl_literal_change_changes_template(self):
        # ACL match semantics are never holed: a changed address there
        # is a changed answer, so the template must diverge.
        base = _named("r1")
        changed = _named(
            "r1", text=CISCO_FIGURE1.replace("deny", "permit", 1)
        )
        assert base.template.fingerprint != changed.template.fingerprint

    def test_interface_hole_atom_is_masked_subnet(self):
        # The hole *value* keeps the host form (substitution replay
        # rewrites raw text) while the equality *atom* is the masked
        # subnet — the only form the diff's connected routes consult.
        devices, _ = parameterized_clos_fleet(
            count=2, roles=1, rule_count=4, seed=0, uplinks=1
        )
        template = devices[0].template
        holes = [
            h for h in template.holes if h.kind == "interface-address"
        ]
        assert holes
        uplink = next(h for h in holes if h.value.endswith("/30"))
        ((tag, subnet),) = uplink.atoms
        assert tag == "subnet"
        assert subnet.endswith("/30")
        assert subnet != uplink.value  # host bits masked away

    def test_free_holes_carry_no_atoms(self):
        devices, _ = parameterized_clos_fleet(
            count=2, roles=1, rule_count=4, seed=0
        )
        template = devices[0].template
        kinds = set(template.kind_sequence)
        assert "router-id" in kinds
        assert "bgp-update-source" in kinds
        for hole in template.holes:
            if hole.kind in ("router-id", "bgp-update-source"):
                assert hole.atoms == ()
            elif hole.kind == "bgp-peer":
                assert hole.atoms == (("peer", hole.value),)

    def test_template_is_deterministic(self):
        device = _named("r1")
        assert compute_template(device) == compute_template(_named("r1"))


class TestSchemaVersion:
    def test_schema_bump_changes_every_digest(self, monkeypatch):
        before = fingerprint_value(("payload",), kind="test")
        monkeypatch.setattr(
            fp_module,
            "FINGERPRINT_SCHEMA_VERSION",
            fp_module.FINGERPRINT_SCHEMA_VERSION + 1,
        )
        assert fingerprint_value(("payload",), kind="test") != before

    def test_kind_separates_digests(self):
        assert fingerprint_value((), kind="acl") != fingerprint_value(
            (), kind="route_map"
        )
