"""Tests for canonical component fingerprints."""

import pickle

import pytest

from repro.model import fingerprint as fp_module
from repro.model.fingerprint import (
    ComponentFingerprints,
    canonical_form,
    compute_fingerprints,
    fingerprint_value,
)
from repro.model.types import SourceSpan
from repro.parsers import parse_cisco
from repro.workloads.figure1 import CISCO_FIGURE1


def _named(hostname, filename=None, text=CISCO_FIGURE1):
    renamed = text.replace("hostname cisco_router", f"hostname {hostname}")
    return parse_cisco(renamed, filename or f"{hostname}.cfg")


class TestCanonicalForm:
    def test_spans_are_erased(self):
        span = SourceSpan("a.cfg", 1, 2, ("line",))
        assert canonical_form(span) == ("<span>",)

    def test_dict_order_does_not_leak(self):
        assert canonical_form({"b": 2, "a": 1}) == canonical_form(
            {"a": 1, "b": 2}
        )

    def test_set_order_does_not_leak(self):
        assert canonical_form({3, 1, 2}) == canonical_form({2, 3, 1})

    def test_sequence_order_matters(self):
        assert canonical_form([1, 2]) != canonical_form([2, 1])


class TestDeviceFingerprints:
    def test_computed_at_parse_time(self):
        device = _named("r1")
        assert "_fingerprints" in device.__dict__
        assert isinstance(device.fingerprints, ComponentFingerprints)

    def test_identity_changes_do_not_change_fingerprints(self):
        # Same content under a different hostname and filename: every
        # component fingerprint (and the whole-device one) is equal.
        one = _named("r1", "one.cfg")
        two = _named("r2", "subdir/two.cfg")
        assert one.fingerprints == two.fingerprints

    def test_line_numbers_do_not_change_fingerprints(self):
        shifted = "!\n!\n!\n" + CISCO_FIGURE1
        assert (
            _named("r1").fingerprints == _named("r1", text=shifted).fingerprints
        )

    def test_semantic_change_changes_fingerprints(self):
        base = _named("r1")
        changed = _named("r1", text=CISCO_FIGURE1.replace("deny", "permit", 1))
        assert base.fingerprints != changed.fingerprints
        assert base.fingerprints.device != changed.fingerprints.device

    def test_component_accessors(self):
        fps = _named("r1").fingerprints
        for name, digest in fps.route_maps.items():
            assert fps.route_map(name) == digest
        for name, digest in fps.acls.items():
            assert fps.acl(name) == digest

    def test_fingerprints_survive_pickling(self):
        device = _named("r1")
        expected = device.fingerprints
        clone = pickle.loads(pickle.dumps(device))
        assert "_fingerprints" in clone.__dict__
        assert clone.fingerprints == expected

    def test_fingerprints_are_deterministic(self):
        assert (
            compute_fingerprints(_named("r1"))
            == compute_fingerprints(_named("r1"))
        )


class TestSchemaVersion:
    def test_schema_bump_changes_every_digest(self, monkeypatch):
        before = fingerprint_value(("payload",), kind="test")
        monkeypatch.setattr(
            fp_module,
            "FINGERPRINT_SCHEMA_VERSION",
            fp_module.FINGERPRINT_SCHEMA_VERSION + 1,
        )
        assert fingerprint_value(("payload",), kind="test") != before

    def test_kind_separates_digests(self):
        assert fingerprint_value((), kind="acl") != fingerprint_value(
            (), kind="route_map"
        )
