"""Tests for core value types: IPs, prefixes, ranges, communities, spans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    Community,
    ConfigError,
    Prefix,
    PrefixRange,
    SourceSpan,
    int_to_ip,
    ip_to_int,
    wildcard_to_prefix_len,
)


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("10.9.0.0") == 0x0A090000
        assert int_to_ip(0x0A090000) == "10.9.0.0"

    def test_extremes(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigError):
            ip_to_int(bad)

    def test_int_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestWildcardConversion:
    def test_contiguous(self):
        assert wildcard_to_prefix_len(0x000000FF) == 24
        assert wildcard_to_prefix_len(0) == 32
        assert wildcard_to_prefix_len(0xFFFFFFFF) == 0

    def test_discontiguous_returns_none(self):
        assert wildcard_to_prefix_len(0x00FF00FF) is None


class TestPrefix:
    def test_parse_and_str(self):
        assert str(Prefix.parse("10.9.0.0/16")) == "10.9.0.0/16"

    def test_canonicalizes_host_bits(self):
        assert str(Prefix.parse("10.9.1.1/16")) == "10.9.0.0/16"

    def test_bare_address_is_host(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_from_address_mask(self):
        prefix = Prefix.from_address_mask("10.1.1.2", "255.255.255.254")
        assert str(prefix) == "10.1.1.2/31"

    def test_discontiguous_mask_rejected(self):
        with pytest.raises(ConfigError):
            Prefix.from_address_mask("10.0.0.0", "255.0.255.0")

    def test_bad_length_rejected(self):
        with pytest.raises(ConfigError):
            Prefix(0, 33)

    def test_containment(self):
        outer = Prefix.parse("10.9.0.0/16")
        inner = Prefix.parse("10.9.1.0/24")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_disjoint_not_contained(self):
        assert not Prefix.parse("10.9.0.0/16").contains_prefix(
            Prefix.parse("10.8.0.0/16")
        )

    def test_contains_address(self):
        prefix = Prefix.parse("10.9.0.0/16")
        assert prefix.contains_address(ip_to_int("10.9.200.7"))
        assert not prefix.contains_address(ip_to_int("10.10.0.0"))

    def test_zero_prefix_contains_everything(self):
        universe = Prefix(0, 0)
        assert universe.contains_address(0xFFFFFFFF)
        assert universe.contains_prefix(Prefix.parse("1.2.3.4/32"))

    def test_mask_int(self):
        assert Prefix(0, 0).mask_int() == 0
        assert Prefix.parse("10.0.0.0/8").mask_int() == 0xFF000000
        assert Prefix.parse("1.2.3.4/32").mask_int() == 0xFFFFFFFF

    def test_ordering_is_total(self):
        prefixes = [Prefix.parse(p) for p in ["10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/16"]]
        assert sorted(prefixes) == sorted(prefixes, key=lambda p: (p.network, p.length))


class TestPrefixRange:
    def test_parse_display_form(self):
        prefix_range = PrefixRange.parse("10.9.0.0/16 : 16-32")
        assert prefix_range.low == 16 and prefix_range.high == 32

    def test_parse_without_range_is_exact(self):
        prefix_range = PrefixRange.parse("10.9.0.0/16")
        assert prefix_range.low == prefix_range.high == 16

    def test_universe(self):
        universe = PrefixRange.universe()
        assert universe.is_universe()
        assert universe.contains_prefix(Prefix.parse("1.2.3.4/32"))
        assert universe.contains_prefix(Prefix(0, 0))

    def test_membership_requires_length_and_address(self):
        prefix_range = PrefixRange.parse("10.9.0.0/16 : 16-24")
        assert prefix_range.contains_prefix(Prefix.parse("10.9.1.0/24"))
        assert not prefix_range.contains_prefix(Prefix.parse("10.9.1.0/25"))
        assert not prefix_range.contains_prefix(Prefix.parse("10.8.0.0/16"))
        assert not prefix_range.contains_prefix(Prefix.parse("10.0.0.0/8"))

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigError):
            PrefixRange(Prefix.parse("10.0.0.0/16"), 8, 32)  # low < prefix length
        with pytest.raises(ConfigError):
            PrefixRange(Prefix.parse("10.0.0.0/16"), 24, 20)  # low > high

    def test_containment(self):
        outer = PrefixRange.parse("10.0.0.0/8 : 8-32")
        inner = PrefixRange.parse("10.9.0.0/16 : 16-24")
        assert outer.contains_range(inner)
        assert not inner.contains_range(outer)

    def test_intersect_nested(self):
        outer = PrefixRange.parse("10.0.0.0/8 : 8-32")
        inner = PrefixRange.parse("10.9.0.0/16 : 16-24")
        assert outer.intersect(inner) == inner

    def test_intersect_disjoint_addresses(self):
        a = PrefixRange.parse("10.0.0.0/8 : 8-32")
        b = PrefixRange.parse("11.0.0.0/8 : 8-32")
        assert a.intersect(b) is None

    def test_intersect_disjoint_lengths(self):
        a = PrefixRange.parse("10.0.0.0/8 : 8-15")
        b = PrefixRange.parse("10.9.0.0/16 : 16-24")
        assert a.intersect(b) is None

    def test_intersect_partial_lengths(self):
        a = PrefixRange.parse("10.0.0.0/8 : 8-20")
        b = PrefixRange.parse("10.9.0.0/16 : 16-32")
        meet = a.intersect(b)
        assert meet == PrefixRange.parse("10.9.0.0/16 : 16-20")

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    @settings(max_examples=200, deadline=None)
    def test_intersection_is_exact(self, network, length):
        """A prefix is in the intersection iff it is in both ranges."""
        candidate = Prefix(network, length)
        a = PrefixRange.parse("10.0.0.0/8 : 10-28")
        b = PrefixRange.parse("10.64.0.0/10 : 12-32")
        meet = a.intersect(b)
        in_both = a.contains_prefix(candidate) and b.contains_prefix(candidate)
        in_meet = meet is not None and meet.contains_prefix(candidate)
        assert in_both == in_meet


class TestCommunity:
    def test_parse_and_str(self):
        community = Community.parse("10:10")
        assert (community.asn, community.value) == (10, 10)
        assert str(community) == "10:10"

    @pytest.mark.parametrize("bad", ["10", "10:", ":10", "a:b", "70000:1", "1:70000"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigError):
            Community.parse(bad)

    def test_ordering(self):
        assert Community(1, 2) < Community(1, 3) < Community(2, 0)


class TestSourceSpan:
    def test_from_lines(self):
        span = SourceSpan.from_lines("f.cfg", [(3, "a"), (5, "b")])
        assert (span.start_line, span.end_line) == (3, 5)
        assert span.render() == "a\nb"

    def test_empty(self):
        span = SourceSpan.from_lines("f.cfg", [])
        assert span.is_empty()
        assert span.render() == ""

    def test_merge(self):
        first = SourceSpan.from_lines("f.cfg", [(1, "a")])
        second = SourceSpan.from_lines("f.cfg", [(9, "b")])
        merged = first.merge(second)
        assert (merged.start_line, merged.end_line) == (1, 9)
        assert merged.text == ("a", "b")

    def test_merge_with_empty(self):
        span = SourceSpan.from_lines("f.cfg", [(1, "a")])
        assert SourceSpan().merge(span) == span
        assert span.merge(SourceSpan()) == span
