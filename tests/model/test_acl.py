"""Tests for the ACL model: wildcards, port ranges, first-match semantics."""

import pytest

from repro.model import (
    Acl,
    AclAction,
    AclLine,
    ConfigError,
    IpWildcard,
    PortRange,
    Prefix,
    ip_to_int,
)


class TestIpWildcard:
    def test_any_matches_everything(self):
        assert IpWildcard.any().matches(0)
        assert IpWildcard.any().matches(0xFFFFFFFF)
        assert IpWildcard.any().is_any()

    def test_host_matches_exactly(self):
        host = IpWildcard.host(ip_to_int("1.2.3.4"))
        assert host.matches(ip_to_int("1.2.3.4"))
        assert not host.matches(ip_to_int("1.2.3.5"))

    def test_from_prefix(self):
        wildcard = IpWildcard.from_prefix(Prefix.parse("10.9.0.0/16"))
        assert wildcard.matches(ip_to_int("10.9.7.7"))
        assert not wildcard.matches(ip_to_int("10.10.0.0"))

    def test_canonicalizes_dont_care_bits(self):
        wildcard = IpWildcard(ip_to_int("10.9.3.7"), 0x0000FFFF)
        assert wildcard.address == ip_to_int("10.9.0.0")

    def test_discontiguous_wildcard(self):
        # match addresses whose second octet is anything: 10.*.3.0
        wildcard = IpWildcard(ip_to_int("10.0.3.0"), 0x00FF0000)
        assert wildcard.matches(ip_to_int("10.77.3.0"))
        assert not wildcard.matches(ip_to_int("10.77.4.0"))
        assert wildcard.as_prefix() is None

    def test_as_prefix_contiguous(self):
        wildcard = IpWildcard(ip_to_int("10.9.0.0"), 0x0000FFFF)
        assert str(wildcard.as_prefix()) == "10.9.0.0/16"

    def test_str_forms(self):
        assert str(IpWildcard.from_prefix(Prefix.parse("10.0.0.0/8"))) == "10.0.0.0/8"
        assert "wildcard" in str(IpWildcard(0, 0x00FF00FF))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            IpWildcard(-1, 0)


class TestPortRange:
    def test_contains(self):
        assert PortRange(10, 20).contains(10)
        assert PortRange(10, 20).contains(20)
        assert not PortRange(10, 20).contains(21)

    def test_single(self):
        assert PortRange.single(80) == PortRange(80, 80)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            PortRange(20, 10)
        with pytest.raises(ConfigError):
            PortRange(0, 70000)

    def test_str(self):
        assert str(PortRange.single(80)) == "80"
        assert str(PortRange(10, 20)) == "10-20"


class TestAclLineMatching:
    def test_protocol_none_matches_any(self):
        line = AclLine(action=AclAction.PERMIT)
        assert line.matches_concrete(0, 0, 6)
        assert line.matches_concrete(0, 0, 17)

    def test_protocol_specific(self):
        line = AclLine(action=AclAction.PERMIT, protocol=6)
        assert line.matches_concrete(0, 0, 6)
        assert not line.matches_concrete(0, 0, 17)

    def test_ports_empty_matches_any(self):
        line = AclLine(action=AclAction.PERMIT, protocol=6)
        assert line.matches_concrete(0, 0, 6, dst_port=4242)

    def test_dst_ports(self):
        line = AclLine(
            action=AclAction.PERMIT, protocol=6, dst_ports=(PortRange.single(80),)
        )
        assert line.matches_concrete(0, 0, 6, dst_port=80)
        assert not line.matches_concrete(0, 0, 6, dst_port=81)

    def test_multiple_port_ranges_disjoin(self):
        line = AclLine(
            action=AclAction.PERMIT,
            protocol=6,
            dst_ports=(PortRange.single(80), PortRange.single(443)),
        )
        assert line.matches_concrete(0, 0, 6, dst_port=443)
        assert not line.matches_concrete(0, 0, 6, dst_port=8080)

    def test_addresses(self):
        line = AclLine(
            action=AclAction.DENY,
            src=IpWildcard.from_prefix(Prefix.parse("10.0.0.0/8")),
            dst=IpWildcard.host(ip_to_int("1.1.1.1")),
        )
        assert line.matches_concrete(ip_to_int("10.5.5.5"), ip_to_int("1.1.1.1"), 6)
        assert not line.matches_concrete(ip_to_int("11.5.5.5"), ip_to_int("1.1.1.1"), 6)
        assert not line.matches_concrete(ip_to_int("10.5.5.5"), ip_to_int("1.1.1.2"), 6)

    def test_icmp_type(self):
        line = AclLine(action=AclAction.PERMIT, protocol=1, icmp_type=8)
        assert line.matches_concrete(0, 0, 1, icmp_type=8)
        assert not line.matches_concrete(0, 0, 1, icmp_type=0)

    def test_describe_mentions_fields(self):
        line = AclLine(
            action=AclAction.DENY, protocol=6, dst_ports=(PortRange.single(22),)
        )
        text = line.describe()
        assert "deny" in text and "tcp" in text and "22" in text


class TestAclEvaluation:
    def _acl(self):
        return Acl(
            name="T",
            lines=(
                AclLine(
                    action=AclAction.DENY,
                    src=IpWildcard.from_prefix(Prefix.parse("10.0.0.0/8")),
                ),
                AclLine(
                    action=AclAction.PERMIT,
                    protocol=6,
                    dst_ports=(PortRange.single(80),),
                ),
            ),
            default_action=AclAction.DENY,
        )

    def test_first_match_wins(self):
        acl = self._acl()
        # 10/8 source hits the deny even though it is also tcp/80.
        assert (
            acl.evaluate_concrete(ip_to_int("10.1.1.1"), 0, 6, dst_port=80)
            is AclAction.DENY
        )

    def test_second_line(self):
        acl = self._acl()
        assert (
            acl.evaluate_concrete(ip_to_int("11.1.1.1"), 0, 6, dst_port=80)
            is AclAction.PERMIT
        )

    def test_default_action(self):
        acl = self._acl()
        assert acl.evaluate_concrete(ip_to_int("11.1.1.1"), 0, 17) is AclAction.DENY

    def test_default_permit(self):
        acl = Acl(name="open", lines=(), default_action=AclAction.PERMIT)
        assert acl.evaluate_concrete(0, 0, 6) is AclAction.PERMIT

    def test_len(self):
        assert len(self._acl()) == 2
