"""Workload generators: the paper's evaluation networks, synthesized."""

from .acl_gen import (
    GeneratedAclPair,
    generate_acl_pair,
    random_rules,
    render_cisco_acl,
    render_juniper_filter,
)
from .datacenter import (
    RouterPair,
    Scenario,
    full_table6_workload,
    gateway_fleet,
    scenario1_redundant_pairs,
    scenario2_router_replacement,
    scenario3_gateway_acls,
)
from .figure1 import (
    CISCO_FIGURE1,
    CISCO_STATIC_SECTION2,
    JUNIPER_FIGURE1,
    JUNIPER_STATIC_SECTION2,
    figure1_devices,
    section2_static_devices,
)
from .mutation import MUTATION_OPERATORS, Mutation, apply_random_mutation
from .srp_random import random_network, random_policy, renamed_copy
from .university import UniversityNetwork, UniversityPair, university_network

__all__ = [
    "CISCO_FIGURE1",
    "CISCO_STATIC_SECTION2",
    "GeneratedAclPair",
    "JUNIPER_FIGURE1",
    "JUNIPER_STATIC_SECTION2",
    "MUTATION_OPERATORS",
    "Mutation",
    "RouterPair",
    "Scenario",
    "UniversityNetwork",
    "UniversityPair",
    "apply_random_mutation",
    "figure1_devices",
    "full_table6_workload",
    "gateway_fleet",
    "generate_acl_pair",
    "random_network",
    "random_policy",
    "random_rules",
    "renamed_copy",
    "render_cisco_acl",
    "render_juniper_filter",
    "scenario1_redundant_pairs",
    "scenario2_router_replacement",
    "scenario3_gateway_acls",
    "section2_static_devices",
    "university_network",
]
