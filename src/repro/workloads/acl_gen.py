"""Random near-equivalent ACL pair generation (Capirca substitute, §5.4).

The paper's scalability experiment generates nearly-equivalent Cisco and
Juniper ACLs with Capirca, injects 10 differences, and times
SemanticDiff at 1,000 and 10,000 rules.  This module reproduces the
pipeline end to end:

1. draw a random rule list over a structured address/port pool,
2. render it to *both* dialects (the renderers double as the unparsers
   Campion needs for text localization),
3. inject a configurable number of semantic differences into the Juniper
   rendering (action flips, port edits, prefix-length edits, dropped
   rules),
4. parse both texts back through the production parsers, so the
   benchmark measures the same parse-then-diff path as the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..model.acl import Acl, AclAction, AclLine, IpWildcard, PortRange
from ..model.device import DeviceConfig
from ..model.types import Prefix, int_to_ip
from ..parsers import parse_cisco, parse_juniper

__all__ = [
    "GeneratedAclPair",
    "random_rules",
    "render_cisco_acl",
    "render_cisco_acls",
    "render_juniper_filter",
    "render_juniper_filters",
    "generate_acl_pair",
]

_PROTOCOLS = ("tcp", "udp", "ip", "icmp")
_PORTS = (22, 25, 53, 80, 123, 179, 443, 514, 3306, 8080)


@dataclass
class GeneratedAclPair:
    """A generated pair plus ground truth about the injected differences."""

    cisco_text: str
    juniper_text: str
    cisco_device: DeviceConfig
    juniper_device: DeviceConfig
    acl_name: str
    injected: List[str] = field(default_factory=list)  # descriptions

    @property
    def cisco_acl(self) -> Acl:
        """The parsed Cisco-side ACL."""
        return self.cisco_device.acls[self.acl_name]

    @property
    def juniper_acl(self) -> Acl:
        """The parsed Juniper-side ACL."""
        return self.juniper_device.acls[self.acl_name]


def random_rules(count: int, rng: random.Random) -> List[AclLine]:
    """A random rule list in the style of generated (Capirca-like) policy.

    Real generated ACLs are long lists of *specific* allow/deny entries —
    mostly-unique destination subnets and concrete service ports — so a
    mutation to any one rule is almost always semantically visible.  A
    random soup of broad rules would instead shadow most of itself,
    making injected differences vanish; we deliberately keep broad
    (``any``) matches rare.
    """
    destination_pool = []
    while len(destination_pool) < count:
        candidate = Prefix.parse(
            f"10.{rng.randrange(256)}.{rng.randrange(256)}.0/{rng.choice([24, 24, 25, 26])}"
        )
        destination_pool.append(candidate)
    source_pool = [
        Prefix.parse(f"172.16.{rng.randrange(256)}.0/{rng.choice([16, 20, 24])}")
        for _ in range(max(4, count // 16))
    ]
    rules: List[AclLine] = []
    for index in range(count):
        protocol_word = rng.choices(_PROTOCOLS, weights=(6, 3, 1, 1))[0]
        protocol = {"tcp": 6, "udp": 17, "icmp": 1, "ip": None}[protocol_word]
        src = (
            IpWildcard.any()
            if rng.random() < 0.4
            else IpWildcard.from_prefix(rng.choice(source_pool))
        )
        dst = IpWildcard.from_prefix(destination_pool[index])
        dst_ports: Tuple[PortRange, ...] = ()
        if protocol in (6, 17) and rng.random() < 0.8:
            if rng.random() < 0.8:
                dst_ports = (PortRange.single(rng.choice(_PORTS)),)
            else:
                low = rng.choice(_PORTS)
                dst_ports = (PortRange(low, low + rng.randrange(1, 64)),)
        action = AclAction.PERMIT if rng.random() < 0.7 else AclAction.DENY
        rules.append(
            AclLine(
                action=action,
                src=src,
                dst=dst,
                protocol=protocol,
                dst_ports=dst_ports,
            )
        )
    return rules


# ---------------------------------------------------------------------------
# Renderers (the "unparsers" of §4)
# ---------------------------------------------------------------------------


def _cisco_address(wildcard: IpWildcard) -> str:
    if wildcard.is_any():
        return "any"
    if wildcard.wildcard == 0:
        return f"host {int_to_ip(wildcard.address)}"
    return f"{int_to_ip(wildcard.address)} {int_to_ip(wildcard.wildcard)}"


def _cisco_ports(ports: Sequence[PortRange]) -> str:
    if not ports:
        return ""
    port_range = ports[0]
    if port_range.low == port_range.high:
        return f" eq {port_range.low}"
    return f" range {port_range.low} {port_range.high}"


def render_cisco_acl(name: str, rules: Sequence[AclLine], hostname: str = "cisco-gw") -> str:
    """Render rules as a named extended IOS access list."""
    return render_cisco_acls(hostname, [(name, rules)])


def render_cisco_acls(
    hostname: str, named: Sequence[Tuple[str, Sequence[AclLine]]]
) -> str:
    """Render one IOS config carrying several named extended ACLs."""
    lines = [f"hostname {hostname}", "!"]
    protocol_names = {6: "tcp", 17: "udp", 1: "icmp", None: "ip"}
    for name, rules in named:
        lines.append(f"ip access-list extended {name}")
        for rule in rules:
            text = (
                f" {rule.action.value} {protocol_names.get(rule.protocol, rule.protocol)}"
                f" {_cisco_address(rule.src)}{_cisco_ports(rule.src_ports)}"
                f" {_cisco_address(rule.dst)}{_cisco_ports(rule.dst_ports)}"
            )
            lines.append(text)
        lines.append("!")
    return "\n".join(lines) + "\n"


def _juniper_prefix(wildcard: IpWildcard) -> Optional[str]:
    prefix = wildcard.as_prefix()
    return None if prefix is None else str(prefix)


def render_juniper_filter(
    name: str, rules: Sequence[AclLine], hostname: str = "juniper-gw"
) -> str:
    """Render rules as a JunOS firewall filter with one term per rule."""
    return render_juniper_filters(hostname, [(name, rules)])


def render_juniper_filters(
    hostname: str, named: Sequence[Tuple[str, Sequence[AclLine]]]
) -> str:
    """Render one JunOS config carrying several firewall filters."""
    lines = [
        "system {",
        f"    host-name {hostname};",
        "}",
        "firewall {",
        "    family inet {",
    ]
    for name, rules in named:
        lines.append(f"        filter {name} {{")
        lines.extend(_juniper_filter_terms(rules))
        lines.append("        }")
    lines.extend(["    }", "}"])
    return "\n".join(lines) + "\n"


def _juniper_filter_terms(rules: Sequence[AclLine]) -> List[str]:
    """The ``term`` stanzas of one filter, indented for the filter body."""
    protocol_names = {6: "tcp", 17: "udp", 1: "icmp"}
    lines: List[str] = []
    for index, rule in enumerate(rules):
        lines.append(f"            term t{index} {{")
        conditions = []
        src_prefix = _juniper_prefix(rule.src)
        dst_prefix = _juniper_prefix(rule.dst)
        if src_prefix is not None and not rule.src.is_any():
            conditions.append(f"source-address {{ {src_prefix}; }}")
        if dst_prefix is not None and not rule.dst.is_any():
            conditions.append(f"destination-address {{ {dst_prefix}; }}")
        if rule.protocol is not None:
            conditions.append(
                f"protocol {protocol_names.get(rule.protocol, rule.protocol)};"
            )
        if rule.dst_ports:
            port_range = rule.dst_ports[0]
            rendered = (
                str(port_range.low)
                if port_range.low == port_range.high
                else f"{port_range.low}-{port_range.high}"
            )
            conditions.append(f"destination-port {rendered};")
        if rule.src_ports:
            port_range = rule.src_ports[0]
            rendered = (
                str(port_range.low)
                if port_range.low == port_range.high
                else f"{port_range.low}-{port_range.high}"
            )
            conditions.append(f"source-port {rendered};")
        if conditions:
            lines.append("                from {")
            for condition in conditions:
                lines.append(f"                    {condition}")
            lines.append("                }")
        then_word = "accept" if rule.action is AclAction.PERMIT else "discard"
        lines.append(f"                then {then_word};")
        lines.append("            }")
    return lines


# ---------------------------------------------------------------------------
# Difference injection
# ---------------------------------------------------------------------------


def _inject_differences(
    rules: List[AclLine], count: int, rng: random.Random
) -> Tuple[List[AclLine], List[str]]:
    """Mutate ``count`` random rules, returning the list + descriptions."""
    mutated = list(rules)
    descriptions: List[str] = []
    if not mutated:
        return mutated, descriptions
    indices = rng.sample(range(len(mutated)), min(count, len(mutated)))
    for index in indices:
        rule = mutated[index]
        choice = rng.randrange(4)
        if choice == 0:
            flipped = (
                AclAction.DENY if rule.action is AclAction.PERMIT else AclAction.PERMIT
            )
            mutated[index] = AclLine(
                action=flipped,
                src=rule.src,
                dst=rule.dst,
                protocol=rule.protocol,
                src_ports=rule.src_ports,
                dst_ports=rule.dst_ports,
            )
            descriptions.append(f"rule {index}: action flipped to {flipped.value}")
        elif choice == 1 and rule.dst_ports:
            old = rule.dst_ports[0]
            new_port = PortRange.single((old.low % 0xFFFF) + 1)
            mutated[index] = AclLine(
                action=rule.action,
                src=rule.src,
                dst=rule.dst,
                protocol=rule.protocol,
                src_ports=rule.src_ports,
                dst_ports=(new_port,),
            )
            descriptions.append(f"rule {index}: dst port {old} -> {new_port}")
        elif choice == 2 and not rule.dst.is_any():
            prefix = rule.dst.as_prefix()
            assert prefix is not None
            widened = Prefix(prefix.network, max(prefix.length - 1, 8))
            mutated[index] = AclLine(
                action=rule.action,
                src=rule.src,
                dst=IpWildcard.from_prefix(widened),
                protocol=rule.protocol,
                src_ports=rule.src_ports,
                dst_ports=rule.dst_ports,
            )
            descriptions.append(f"rule {index}: dst prefix widened to /{widened.length}")
        else:
            # Flip the action as the fallback mutation: it is always
            # semantically visible when the rule is reachable.
            flipped = (
                AclAction.DENY if rule.action is AclAction.PERMIT else AclAction.PERMIT
            )
            mutated[index] = AclLine(
                action=flipped,
                src=rule.src,
                dst=rule.dst,
                protocol=rule.protocol,
                src_ports=rule.src_ports,
                dst_ports=rule.dst_ports,
            )
            descriptions.append(f"rule {index}: action flipped to {flipped.value}")
    return mutated, descriptions


def generate_acl_pair(
    rule_count: int, differences: int = 10, seed: int = 0, acl_name: str = "GW_FILTER"
) -> GeneratedAclPair:
    """Generate, render, mutate and parse one near-equivalent ACL pair."""
    rng = random.Random(seed)
    rules = random_rules(rule_count, rng)
    juniper_rules, descriptions = _inject_differences(rules, differences, rng)

    cisco_text = render_cisco_acl(acl_name, rules)
    juniper_text = render_juniper_filter(acl_name, juniper_rules)
    cisco_device = parse_cisco(cisco_text, "cisco-gw.cfg")
    juniper_device = parse_juniper(juniper_text, "juniper-gw.cfg")
    return GeneratedAclPair(
        cisco_text=cisco_text,
        juniper_text=juniper_text,
        cisco_device=cisco_device,
        juniper_device=juniper_device,
        acl_name=acl_name,
        injected=descriptions,
    )
