"""Randomized SRP networks for the Theorem 3.3 harness.

Generates connected topologies with randomized BGP policies and OSPF
costs, plus isomorphic renamed copies — the inputs to the theorem's
empirical validation (tests/srp/test_theorem.py and
benchmarks/bench_theorem33_srp.py).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..model import (
    Action,
    ConcreteRoute,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from ..srp import BgpEdgeConfig, OspfEdgeConfig, SrpNetwork, Topology

__all__ = ["random_policy", "random_network", "renamed_copy"]


def random_policy(rng: random.Random, name: str) -> Optional[RouteMap]:
    """A one-clause policy over a random prefix range, or None (identity)."""
    if rng.random() < 0.4:
        return None
    length = rng.choice([8, 12, 16])
    network = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
    prefix_list = PrefixList(
        f"{name}-PL",
        (
            PrefixListEntry(
                Action.PERMIT, PrefixRange(Prefix(network, length), length, 32)
            ),
        ),
    )
    action = Action.DENY if rng.random() < 0.5 else Action.PERMIT
    sets = (SetLocalPref(rng.choice([50, 150])),) if action is Action.PERMIT else ()
    return RouteMap(
        name,
        (RouteMapClause("c0", action, (MatchPrefixList(prefix_list),), sets),),
        default_action=Action.PERMIT,
    )


def random_network(seed: int, size: int = 5) -> SrpNetwork:
    """A connected random network with BGP + OSPF on every edge."""
    rng = random.Random(seed)
    nodes = [f"r{i}" for i in range(size)]
    topology = Topology(nodes=list(nodes))
    for a, b in zip(nodes, nodes[1:]):
        topology.add_bidirectional(a, b)
    for _ in range(size // 2):
        a, b = rng.sample(nodes, 2)
        topology.add_bidirectional(a, b)
    network = SrpNetwork(topology=topology)
    for u, v in topology.edges:
        network.bgp_edges[(u, v)] = BgpEdgeConfig(
            sender_asn=nodes.index(u) + 64512,
            next_hop=nodes.index(u) + 1,
            export_map=random_policy(rng, f"EXP-{u}-{v}"),
            import_map=random_policy(rng, f"IMP-{u}-{v}"),
        )
        network.ospf_edges[(u, v)] = OspfEdgeConfig(cost=rng.randint(1, 10))
    origin = rng.choice(nodes)
    for _ in range(rng.randint(1, 3)):
        length = rng.choice([16, 24])
        prefix_network = rng.getrandbits(32) & (
            (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        )
        network.originate(
            origin,
            ConcreteRoute(prefix=Prefix(prefix_network, length), protocol="bgp"),
        )
    network.originate(
        origin,
        ConcreteRoute(prefix=Prefix.parse("192.168.0.0/24"), protocol="ospf", med=0),
    )
    return network


def renamed_copy(network: SrpNetwork) -> Tuple[SrpNetwork, Dict[str, str]]:
    """An isomorphic copy under node renaming (the paper's isomorphism I)."""
    iso = {node: f"x-{node}" for node in network.topology.nodes}
    topology = Topology(
        nodes=[iso[n] for n in network.topology.nodes],
        edges=[(iso[u], iso[v]) for u, v in network.topology.edges],
    )
    copy = SrpNetwork(topology=topology)
    for (u, v), config in network.bgp_edges.items():
        copy.bgp_edges[(iso[u], iso[v])] = config
    for (u, v), config in network.ospf_edges.items():
        copy.ospf_edges[(iso[u], iso[v])] = config
    for node, routes in network.originations.items():
        for route in routes:
            copy.originate(iso[node], route)
    return copy, iso
