"""Synthetic data-center network for the §5.1 evaluation (Table 6).

The paper's network A is a Clos data center with hundreds of routers
from two vendors, evaluated on three tasks.  The production configs are
proprietary, so this module generates a faithful synthetic stand-in: a
parameterizable Clos fabric of Cisco/Juniper pairs whose configurations
exercise eBGP + iBGP, OSPF, static routes, ACLs, and route
redistribution — with the *same bug classes* the paper reports seeded at
known locations:

* **Scenario 1** (redundant ToR pairs): five missing BGP policy
  fragments (prefix-list entries absent from one router of a pair) and
  two static routes with wrong next hops,
* **Scenario 2** (router replacements): one wrong community number and
  three wrong local preferences, one of them on an iBGP route-reflector
  device,
* **Scenario 3** (gateway ACLs): three ACL differences, one shaped like
  Table 7 (a Cisco deny of a source range that a Juniper whitelist term
  accepts).

Each scenario yields parsed device pairs plus ground-truth bug metadata,
so tests and the Table 6 benchmark can check that Campion detects every
seeded bug and nothing else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model.device import DeviceConfig
from ..parsers import parse_cisco, parse_juniper

__all__ = [
    "RouterPair",
    "Scenario",
    "scenario1_redundant_pairs",
    "scenario2_router_replacement",
    "scenario3_gateway_acls",
    "gateway_fleet",
    "templated_clos_fleet",
    "parameterized_clos_fleet",
    "full_table6_workload",
]


@dataclass
class RouterPair:
    """Two configurations intended to be behaviorally equivalent."""

    name: str
    primary: DeviceConfig
    backup: DeviceConfig
    seeded_bugs: List[str] = field(default_factory=list)


@dataclass
class Scenario:
    """One evaluation scenario: pairs plus the Table 6 expectation."""

    name: str
    component: str
    check: str  # "Semantic" or "Structural"
    pairs: List[RouterPair] = field(default_factory=list)
    expected_differences: Dict[str, int] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Config templates
# ---------------------------------------------------------------------------


def _rack_prefixes(pair_index: int, count: int = 4) -> List[str]:
    return [f"10.{pair_index + 1}.{i}.0/24" for i in range(count)]


def _cisco_tor(
    pair_index: int,
    spine_count: int,
    drop_prefix_index: Optional[int] = None,
    static_next_hop_octet: int = 1,
) -> str:
    """A Cisco ToR config.  ``drop_prefix_index`` omits one EXPORT prefix
    (the Scenario 1 "missing fragment of BGP policy" bug when applied to
    only one router of the pair)."""
    prefixes = _rack_prefixes(pair_index)
    lines = [f"hostname tor{pair_index}-cisco", "!"]
    lines.append(f"interface Loopback0")
    lines.append(f" ip address 10.255.{pair_index + 1}.1 255.255.255.255")
    lines.append("!")
    for spine in range(spine_count):
        lines.append(f"interface Ethernet{spine + 1}")
        lines.append(
            f" ip address 10.200.{pair_index + 1}.{4 * spine + 1} 255.255.255.252"
        )
        lines.append("!")
    for index, prefix in enumerate(prefixes):
        if index == drop_prefix_index:
            continue
        lines.append(f"ip prefix-list EXPORT permit {prefix}")
    lines.append("ip prefix-list EXPORT permit 10.255.0.0/16 le 32")
    lines.append("!")
    lines.append(f"ip prefix-list IMPORT permit 10.{pair_index + 1}.0.0/16 le 32")
    lines.append("!")
    lines.append("route-map SPINE-OUT permit 10")
    lines.append(" match ip address prefix-list EXPORT")
    lines.append(" set community 65000:100")
    lines.append("route-map SPINE-IN deny 5")
    lines.append(f" match ip address prefix-list IMPORT")
    lines.append("route-map SPINE-IN permit 10")
    lines.append(" set local-preference 120")
    lines.append("!")
    lines.append(
        f"ip route 10.250.{pair_index + 1}.0 255.255.255.0 10.200.{pair_index + 1}.{static_next_hop_octet}"
    )
    lines.append(f"ip route 10.251.{pair_index + 1}.0 255.255.255.0 Null0")
    lines.append("!")
    lines.append(f"router bgp 65{pair_index:03d}")
    for spine in range(spine_count):
        peer = f"10.200.{pair_index + 1}.{4 * spine + 2}"
        lines.append(f" neighbor {peer} remote-as 64{spine:03d}")
        lines.append(f" neighbor {peer} route-map SPINE-OUT out")
        lines.append(f" neighbor {peer} route-map SPINE-IN in")
        lines.append(f" neighbor {peer} send-community")
    lines.append("!")
    lines.append("router ospf 1")
    lines.append(f" router-id 10.255.{pair_index + 1}.1")
    lines.append(f" network 10.200.{pair_index + 1}.0 0.0.0.255 area 0")
    lines.append("!")
    return "\n".join(lines) + "\n"


def _juniper_tor(
    pair_index: int,
    spine_count: int,
    drop_prefix_index: Optional[int] = None,
    static_next_hop_octet: int = 1,
    local_pref: int = 120,
    export_community: str = "65000:100",
) -> str:
    """The Juniper twin of :func:`_cisco_tor`, with injectable deviations."""
    prefixes = _rack_prefixes(pair_index)
    export_entries = [
        f"        {prefix};"
        for index, prefix in enumerate(prefixes)
        if index != drop_prefix_index
    ]
    neighbor_blocks = []
    for spine in range(spine_count):
        peer = f"10.200.{pair_index + 1}.{4 * spine + 2}"
        neighbor_blocks.append(
            f"""            neighbor {peer} {{
                peer-as 64{spine:03d};
                export SPINE-OUT;
                import SPINE-IN;
            }}"""
        )
    interface_blocks = []
    for spine in range(spine_count):
        interface_blocks.append(
            f"""    xe-0/0/{spine} {{
        unit 0 {{
            family inet {{
                address 10.200.{pair_index + 1}.{4 * spine + 1}/30;
            }}
        }}
    }}"""
        )
    newline = "\n"
    return f"""system {{
    host-name tor{pair_index}-juniper;
}}
interfaces {{
{newline.join(interface_blocks)}
    lo0 {{
        unit 0 {{
            family inet {{
                address 10.255.{pair_index + 1}.1/32;
            }}
        }}
    }}
}}
routing-options {{
    autonomous-system 65{pair_index:03d};
    router-id 10.255.{pair_index + 1}.1;
    static {{
        route 10.250.{pair_index + 1}.0/24 {{
            next-hop 10.200.{pair_index + 1}.{static_next_hop_octet};
            preference 1;
        }}
        route 10.251.{pair_index + 1}.0/24 {{
            discard;
            preference 1;
        }}
    }}
}}
policy-options {{
    prefix-list EXPORT {{
{newline.join(export_entries)}
        10.255.0.0/16;
    }}
    community EXPORTCOMM members [ {export_community} ];
    policy-statement SPINE-OUT {{
        term nets {{
            from {{
                prefix-list EXPORT;
                route-filter 10.255.0.0/16 prefix-length-range /16-/32;
            }}
            then {{
                community set EXPORTCOMM;
                accept;
            }}
        }}
        term final {{
            then reject;
        }}
    }}
    policy-statement SPINE-IN {{
        term own {{
            from {{
                route-filter 10.{pair_index + 1}.0.0/16 prefix-length-range /16-/32;
            }}
            then reject;
        }}
        term rest {{
            then {{
                local-preference {local_pref};
                accept;
            }}
        }}
    }}
}}
protocols {{
    bgp {{
        group SPINES {{
            type external;
{newline.join(neighbor_blocks)}
        }}
    }}
    ospf {{
        area 0.0.0.0 {{
{newline.join(f'            interface xe-0/0/{s}.0;' for s in range(spine_count))}
        }}
    }}
}}
"""


# ---------------------------------------------------------------------------
# Scenario 1: redundant ToR pairs
# ---------------------------------------------------------------------------


def scenario1_redundant_pairs(
    pair_count: int = 10, spine_count: int = 2, seed: int = 0
) -> Scenario:
    """Backup ToR pairs with 5 seeded BGP bugs and 2 static-route bugs.

    The BGP bugs are prefix-list entries missing from the backup router
    (the paper: "a prefix for an import filter was missing in the primary
    router but present in the backup"); the static bugs are differing
    next hops for the same prefix (the cascading-failure case).
    """
    rng = random.Random(seed)
    bgp_bug_pairs = sorted(rng.sample(range(pair_count), 5))
    static_bug_pairs = sorted(rng.sample(range(pair_count), 2))

    scenario = Scenario(
        name="Scenario 1",
        component="BGP / Static Routes",
        check="Semantic + Structural",
        expected_differences={"BGP": 5, "Static Routes": 2},
    )
    for pair_index in range(pair_count):
        drop = 1 + (pair_index % 3) if pair_index in bgp_bug_pairs else None
        static_octet = 5 if pair_index in static_bug_pairs else 1
        cisco_text = _cisco_tor(pair_index, spine_count)
        juniper_text = _juniper_tor(
            pair_index,
            spine_count,
            drop_prefix_index=drop,
            static_next_hop_octet=static_octet,
        )
        bugs = []
        if pair_index in bgp_bug_pairs:
            bugs.append(f"missing EXPORT prefix entry #{drop} on backup")
        if pair_index in static_bug_pairs:
            bugs.append("static route 10.250.x.0/24 has wrong next hop on backup")
        scenario.pairs.append(
            RouterPair(
                name=f"tor{pair_index}",
                primary=parse_cisco(cisco_text, f"tor{pair_index}-cisco.cfg"),
                backup=parse_juniper(juniper_text, f"tor{pair_index}-juniper.cfg"),
                seeded_bugs=bugs,
            )
        )
    return scenario


# ---------------------------------------------------------------------------
# Scenario 2: router replacement
# ---------------------------------------------------------------------------


def scenario2_router_replacement(
    replacement_count: int = 30, spine_count: int = 2, seed: int = 1
) -> Scenario:
    """30 Cisco→Juniper replacements with 4 seeded translation bugs.

    Bug classes from the paper: one incorrect community number and three
    incorrect local preferences, one of which sits on the iBGP route
    reflector (the severe-outage case).
    """
    rng = random.Random(seed)
    buggy = sorted(rng.sample(range(1, replacement_count), 3))  # local-pref bugs
    community_bug = rng.choice(
        [index for index in range(1, replacement_count) if index not in buggy]
    )

    scenario = Scenario(
        name="Scenario 2",
        component="BGP",
        check="Semantic",
        expected_differences={"BGP": 4},
    )
    for index in range(replacement_count):
        is_reflector = index == 0
        local_pref = 120
        community = "65000:100"
        bugs = []
        if index in buggy or (is_reflector and 0 in buggy):
            local_pref = 110
            bugs.append("wrong local-preference in translated config")
        if index == community_bug:
            community = "65000:101"
            bugs.append("wrong community number in translated config")
        cisco_text = _cisco_tor(index, spine_count)
        juniper_text = _juniper_tor(
            index,
            spine_count,
            local_pref=local_pref,
            export_community=community,
        )
        scenario.pairs.append(
            RouterPair(
                name=f"replacement{index}" + ("-reflector" if is_reflector else ""),
                primary=parse_cisco(cisco_text, f"repl{index}-old.cfg"),
                backup=parse_juniper(juniper_text, f"repl{index}-new.cfg"),
                seeded_bugs=bugs,
            )
        )
    # Guarantee one local-pref bug on a reflector-like device: if the rng
    # did not pick index 0, move the first bug there deterministically.
    if 0 not in buggy:
        first = scenario.pairs[buggy[0]]
        reflector = scenario.pairs[0]
        reflector_juniper = _juniper_tor(0, spine_count, local_pref=110)
        scenario.pairs[0] = RouterPair(
            name="replacement0-reflector",
            primary=reflector.primary,
            backup=parse_juniper(reflector_juniper, "repl0-new.cfg"),
            seeded_bugs=["wrong local-preference on route reflector"],
        )
        clean_juniper = _juniper_tor(buggy[0], spine_count)
        scenario.pairs[buggy[0]] = RouterPair(
            name=f"replacement{buggy[0]}",
            primary=first.primary,
            backup=parse_juniper(clean_juniper, f"repl{buggy[0]}-new.cfg"),
            seeded_bugs=[],
        )
    return scenario


# ---------------------------------------------------------------------------
# Scenario 3: gateway ACLs
# ---------------------------------------------------------------------------


_CISCO_GATEWAY_ACL = """\
hostname gateway-cisco
!
ip access-list extended VM_FILTER_1
 permit tcp 172.16.0.0 0.0.255.255 any eq 443
 permit tcp 172.16.0.0 0.0.255.255 any eq 80
 deny ipv4 9.140.0.0 0.0.1.255 any
 permit udp any 10.50.0.0 0.0.255.255 eq 53
 permit tcp any host 10.60.0.10 eq 22
 deny icmp any 10.70.0.0 0.0.0.255
 permit ip 10.80.0.0 0.0.255.255 10.81.0.0 0.0.255.255
!
"""

_JUNIPER_GATEWAY_ACL = """\
system {
    host-name gateway-juniper;
}
firewall {
    family inet {
        filter VM_FILTER_1 {
            term permit_https {
                from {
                    source-address { 172.16.0.0/16; }
                    protocol tcp;
                    destination-port 443;
                }
                then accept;
            }
            term permit_http {
                from {
                    source-address { 172.16.0.0/16; }
                    protocol tcp;
                    destination-port 80;
                }
                then accept;
            }
            term permit_whitelist {
                from {
                    source-address { 9.140.0.0/23; }
                    protocol icmp;
                }
                then accept;
            }
            term deny_blacklist {
                from {
                    source-address { 9.140.0.0/23; }
                }
                then discard;
            }
            term permit_dns {
                from {
                    destination-address { 10.50.0.0/16; }
                    protocol udp;
                    destination-port 53;
                }
                then accept;
            }
            term deny_icmp_block {
                from {
                    destination-address { 10.70.0.0/24; }
                    protocol icmp;
                }
                then discard;
            }
            term permit_east_west {
                from {
                    source-address { 10.80.0.0/16; }
                    destination-address { 10.81.0.0/17; }
                }
                then accept;
            }
        }
    }
}
"""


def scenario3_gateway_acls() -> Scenario:
    """One gateway pair whose ACLs differ in three seeded ways.

    1. ICMP from 9.140.0.0/23 — Cisco rejects it (the blacklist line),
       Juniper's whitelist term accepts it first (the Table 7 case),
    2. the Cisco SSH permit rule is missing from the Juniper filter,
    3. the east-west rule covers 10.81.0.0/16 on Cisco but /17 on Juniper.
    """
    scenario = Scenario(
        name="Scenario 3",
        component="ACLs",
        check="Semantic",
        expected_differences={"ACLs": 3},
    )
    scenario.pairs.append(
        RouterPair(
            name="gateway",
            primary=parse_cisco(_CISCO_GATEWAY_ACL, "gateway-cisco.cfg"),
            backup=parse_juniper(_JUNIPER_GATEWAY_ACL, "gateway-juniper.cfg"),
            seeded_bugs=[
                "ICMP from 9.140.0.0/23 accepted by Juniper whitelist, denied by Cisco",
                "SSH permit rule present on Cisco, missing on Juniper",
                "east-west destination 10.81.0.0/16 (Cisco) vs /17 (Juniper)",
            ],
        )
    )
    return scenario


def gateway_fleet(
    count: int = 6, outliers: int = 2, rule_count: int = 40, seed: int = 0
) -> Tuple[List[DeviceConfig], List[str]]:
    """A fleet of gateway routers intended to enforce identical policy.

    Alternating Cisco/Juniper devices render the same generated rule
    list; ``outliers`` of them receive an injected deviation (a flipped
    action on a reachable rule).  Returns the parsed fleet plus the
    hostnames expected to be flagged — the input for
    :func:`repro.core.fleet.compare_fleet`.
    """
    import random as _random

    from ..model.acl import AclAction, AclLine, IpWildcard, PortRange
    from ..model.types import Prefix
    from .acl_gen import random_rules, render_cisco_acl, render_juniper_filter

    if not 0 <= outliers < count:
        raise ValueError("need 0 <= outliers < count")
    rng = _random.Random(seed)
    rules = random_rules(rule_count, rng)
    outlier_indices = set(rng.sample(range(count), outliers))

    devices: List[DeviceConfig] = []
    expected: List[str] = []
    for index in range(count):
        hostname = f"gw{index}"
        device_rules = rules
        if index in outlier_indices:
            # A guaranteed-visible deviation: permit a unique host that
            # no generated rule covers (the pool lives in 10/8 and
            # 172.16/12; 192.0.2.x falls through to the default deny on
            # conforming devices).
            extra = AclLine(
                action=AclAction.PERMIT,
                dst=IpWildcard.from_prefix(Prefix.parse(f"192.0.2.{index}/32")),
                protocol=6,
                dst_ports=(PortRange.single(2222),),
            )
            device_rules = list(rules) + [extra]
            expected.append(hostname)
        if index % 2 == 0:
            text = render_cisco_acl("GW_POLICY", device_rules, hostname=hostname)
            devices.append(parse_cisco(text, f"{hostname}.cfg"))
        else:
            text = render_juniper_filter("GW_POLICY", device_rules, hostname=hostname)
            devices.append(parse_juniper(text, f"{hostname}.cfg"))
    return devices, sorted(expected)


def templated_clos_fleet(
    count: int = 32,
    roles: int = 3,
    rule_count: int = 24,
    seed: int = 0,
    vendors: int = 2,
    acls: int = 4,
    uplinks: int = 8,
) -> Tuple[List[DeviceConfig], Dict[str, str]]:
    """A heavily-templated Clos-style fleet with a few distinct roles.

    Real Clos fabrics stamp a handful of role templates (ToR,
    aggregation, spine) onto many devices; only the hostname differs
    within a role.  This generator does exactly that: each role is an
    independently-generated policy set of ``rule_count`` rules spread
    over ``acls`` named ACLs (``CLOS_POLICY_0``.. — real devices carry
    several per-interface policies, not one monolith) bound to
    ``uplinks`` templated interfaces, device ``i`` taking role
    ``i % roles``.  With ``vendors=2`` (the default)
    vendors alternate between consecutive clones of the same role, so
    each role renders as both Cisco and Juniper, like a mixed-vendor
    fabric; ``vendors=1`` keeps the whole fabric Cisco, like a
    single-vendor deployment.  The result is the symmetry-compression
    showcase: the device-fingerprint partition has one class per
    (role, vendor) — independent of ``count`` — so the compressed
    matrix stays constant-size while the fleet grows.

    Returns the parsed fleet plus ``hostname -> role name``.
    """
    import random as _random

    from .acl_gen import random_rules, render_cisco_acls, render_juniper_filters

    if roles < 1 or count < roles:
        raise ValueError("need 1 <= roles <= count")
    if vendors not in (1, 2):
        raise ValueError("vendors must be 1 or 2")
    if acls < 1:
        raise ValueError("need at least one ACL per device")
    acls = min(acls, rule_count)
    rng = _random.Random(seed)

    def _cisco_interfaces(names: List[str]) -> str:
        lines: List[str] = []
        for uplink in range(uplinks):
            lines.extend(
                [
                    f"interface Ethernet{uplink}",
                    f" description uplink{uplink}",
                    f" ip access-group {names[uplink % len(names)]} in",
                    "!",
                ]
            )
        return "\n".join(lines) + "\n" if lines else ""

    def _juniper_interfaces(names: List[str]) -> str:
        lines: List[str] = []
        if uplinks:
            lines.append("interfaces {")
            for uplink in range(uplinks):
                lines.extend(
                    [
                        f"    et-0/0/{uplink} {{",
                        f"        description uplink{uplink};",
                        "        unit 0 {",
                        "            family inet {",
                        "                filter {",
                        f"                    input {names[uplink % len(names)]};",
                        "                }",
                        "            }",
                        "        }",
                        "    }",
                    ]
                )
            lines.append("}")
        return "\n".join(lines) + "\n" if lines else ""

    def _role_policies() -> List[Tuple[str, List]]:
        rules = random_rules(rule_count, rng)
        share, leftover = divmod(rule_count, acls)
        policies = []
        start = 0
        for position in range(acls):
            size = share + (1 if position < leftover else 0)
            policies.append(
                (f"CLOS_POLICY_{position}", rules[start : start + size])
            )
            start += size
        return policies

    role_policies = [_role_policies() for _ in range(roles)]

    devices: List[DeviceConfig] = []
    role_of: Dict[str, str] = {}
    for index in range(count):
        role = index % roles
        hostname = f"clos{index:02d}"
        role_of[hostname] = f"role{role}"
        policies = role_policies[role]
        policy_names = [name for name, _ in policies]
        if vendors == 1 or (index // roles) % 2 == 0:
            text = render_cisco_acls(hostname, policies)
            text += _cisco_interfaces(policy_names)
            devices.append(parse_cisco(text, f"{hostname}.cfg"))
        else:
            text = render_juniper_filters(hostname, policies)
            text += _juniper_interfaces(policy_names)
            devices.append(parse_juniper(text, f"{hostname}.cfg"))
    return devices, role_of


def parameterized_clos_fleet(
    count: int = 12,
    roles: int = 3,
    rule_count: int = 8,
    seed: int = 0,
    acls: int = 2,
    uplinks: int = 2,
) -> Tuple[List[DeviceConfig], Dict[str, str]]:
    """A templated Clos fleet where *no two devices are byte-identical*.

    Like :func:`templated_clos_fleet`, device ``i`` stamps role
    ``i % roles`` (a shared per-role ACL policy set bound to
    ``uplinks`` interfaces) — but every device additionally carries its
    own unique loopback, uplink subnets, router-ids, and BGP neighbor
    addresses, exactly as a real fabric assigns per-device parameters
    to one role template.  The exact device-fingerprint partition
    therefore degenerates to ``count`` singleton classes (PR 8
    compression finds nothing), while the *template* partition has one
    class per role and the near-symmetry plan analyzes one pair per
    role pair — the showcase workload for
    ``compare_fleet(compress="near")``.

    All devices are Cisco (template equality is per-vendor by
    construction: vendors render different stanza structure).  Returns
    the parsed fleet plus ``hostname -> role name``.
    """
    import random as _random

    from .acl_gen import random_rules, render_cisco_acls

    if roles < 1 or count < roles:
        raise ValueError("need 1 <= roles <= count")
    if acls < 1:
        raise ValueError("need at least one ACL per device")
    if not 1 <= count <= 250:
        raise ValueError("need 1 <= count <= 250 (per-device /24 octets)")
    acls = min(acls, rule_count)
    rng = _random.Random(seed)

    def _role_policies() -> List[Tuple[str, List]]:
        rules = random_rules(rule_count, rng)
        share, leftover = divmod(rule_count, acls)
        policies = []
        start = 0
        for position in range(acls):
            size = share + (1 if position < leftover else 0)
            policies.append(
                (f"PCLOS_POLICY_{position}", rules[start : start + size])
            )
            start += size
        return policies

    role_policies = [_role_policies() for _ in range(roles)]

    devices: List[DeviceConfig] = []
    role_of: Dict[str, str] = {}
    for index in range(count):
        role = index % roles
        hostname = f"pclos{index:02d}"
        role_of[hostname] = f"role{role}"
        policies = role_policies[role]
        policy_names = [name for name, _ in policies]
        octet = index + 1
        loopback = f"10.255.{octet}.1"
        lines = [render_cisco_acls(hostname, policies).rstrip("\n")]
        lines.append("interface Loopback0")
        lines.append(f" ip address {loopback} 255.255.255.255")
        lines.append("!")
        for uplink in range(uplinks):
            lines.append(f"interface Ethernet{uplink}")
            lines.append(f" description uplink{uplink}")
            lines.append(
                f" ip address 10.200.{octet}.{4 * uplink + 1}"
                " 255.255.255.252"
            )
            lines.append(
                f" ip access-group {policy_names[uplink % len(policy_names)]} in"
            )
            lines.append("!")
        lines.append("router bgp 65000")
        lines.append(f" bgp router-id {loopback}")
        for uplink in range(uplinks):
            peer = f"10.200.{octet}.{4 * uplink + 2}"
            lines.append(f" neighbor {peer} remote-as 64{uplink:03d}")
            lines.append(f" neighbor {peer} update-source {loopback}")
            lines.append(f" neighbor {peer} send-community")
        lines.append("!")
        lines.append("router ospf 1")
        lines.append(f" router-id {loopback}")
        lines.append(f" network 10.200.{octet}.0 0.0.0.255 area 0")
        lines.append("!")
        text = "\n".join(lines) + "\n"
        devices.append(parse_cisco(text, f"{hostname}.cfg"))
    return devices, role_of


def full_table6_workload(seed: int = 0) -> List[Scenario]:
    """All three scenarios with the paper's difference counts seeded."""
    return [
        scenario1_redundant_pairs(seed=seed),
        scenario2_router_replacement(seed=seed + 1),
        scenario3_gateway_acls(),
    ]
