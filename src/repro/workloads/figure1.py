"""The paper's running example: Figure 1's Cisco and Juniper route maps.

These configurations are transcribed from Figure 1 (with the Juniper
snippet's formatting repaired — the paper's two-column layout mangled its
line breaks).  They drive the Table 2, Table 3 and Figure 2 benchmarks
plus the quickstart example.

The two seeded (real!) bugs:

1. the Cisco ``NETS`` entries carry ``le 32`` (lengths 16-32) while the
   Juniper prefix-list matches exactly /16, and
2. the Cisco ``COMM`` matches routes carrying *either* community while
   the Juniper ``COMM`` requires *both*.
"""

from __future__ import annotations

from typing import Tuple

from ..model.device import DeviceConfig
from ..parsers import parse_cisco, parse_juniper

__all__ = [
    "CISCO_FIGURE1",
    "JUNIPER_FIGURE1",
    "figure1_devices",
    "CISCO_STATIC_SECTION2",
    "JUNIPER_STATIC_SECTION2",
    "section2_static_devices",
]

CISCO_FIGURE1 = """\
hostname cisco_router
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
!
router bgp 65000
 neighbor 10.255.0.1 remote-as 65001
 neighbor 10.255.0.1 route-map POL out
!
"""

JUNIPER_FIGURE1 = """\
system {
    host-name juniper_router;
}
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from {
                prefix-list NETS;
            }
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
routing-options {
    autonomous-system 65000;
}
protocols {
    bgp {
        group PEERS {
            neighbor 10.255.0.1 {
                peer-as 65001;
                export POL;
            }
        }
    }
}
"""


def figure1_devices() -> Tuple[DeviceConfig, DeviceConfig]:
    """Parse both Figure 1 configurations."""
    cisco = parse_cisco(CISCO_FIGURE1, "cisco_router.cfg")
    juniper = parse_juniper(JUNIPER_FIGURE1, "juniper_router.cfg")
    return cisco, juniper


# §2.2's static-route example: the Cisco router has a static route absent
# from the Juniper router (Table 4).
CISCO_STATIC_SECTION2 = """\
hostname cisco_router
!
ip route 10.1.1.2 255.255.255.254 10.2.2.2
ip route 10.3.0.0 255.255.0.0 10.2.2.6
!
"""

JUNIPER_STATIC_SECTION2 = """\
system {
    host-name juniper_router;
}
routing-options {
    static {
        route 10.3.0.0/16 {
            next-hop 10.2.2.6;
            preference 1;
        }
    }
}
"""


def section2_static_devices() -> Tuple[DeviceConfig, DeviceConfig]:
    """Parse the §2.2 static-route example pair."""
    cisco = parse_cisco(CISCO_STATIC_SECTION2, "cisco_static.cfg")
    juniper = parse_juniper(JUNIPER_STATIC_SECTION2, "juniper_static.cfg")
    return cisco, juniper
