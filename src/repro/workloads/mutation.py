"""Text-level bug injection operators.

Each operator rewrites a configuration *text* to introduce one of the
bug classes from the paper's evaluation and reports what it did.  They
drive failure-injection tests (every operator's output must be flagged
by ConfigDiff against the original) and the ablation benchmarks.

Operators work on both dialects where the underlying syntax allows;
each returns ``None`` when the pattern does not occur, so callers can
probe applicability.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["Mutation", "MUTATION_OPERATORS", "apply_random_mutation"]


@dataclass(frozen=True)
class Mutation:
    """One applied mutation: new text plus a description of the change."""

    text: str
    description: str
    operator: str


def change_local_pref(text: str, rng: random.Random) -> Optional[Mutation]:
    """Perturb one local-preference value (Scenario 2's bug class)."""
    pattern = re.compile(r"(set local-preference |local-preference )(\d+)")
    matches = list(pattern.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    old = int(match.group(2))
    new = old + 10
    mutated = text[: match.start(2)] + str(new) + text[match.end(2) :]
    return Mutation(mutated, f"local-preference {old} -> {new}", "change_local_pref")


def change_community(text: str, rng: random.Random) -> Optional[Mutation]:
    """Perturb one community constant (Scenario 2's other bug class)."""
    pattern = re.compile(r"(\d+):(\d+)")
    matches = list(pattern.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    old_value = int(match.group(2))
    new_value = (old_value + 1) % 65536
    mutated = text[: match.start(2)] + str(new_value) + text[match.end(2) :]
    return Mutation(
        mutated,
        f"community {match.group(0)} -> {match.group(1)}:{new_value}",
        "change_community",
    )


def drop_prefix_list_entry(text: str, rng: random.Random) -> Optional[Mutation]:
    """Remove one prefix-list line (Scenario 1's missing-fragment class)."""
    cisco_lines = [
        line for line in text.splitlines() if line.startswith("ip prefix-list ")
    ]
    junos_lines = re.findall(r"^\s+\d+\.\d+\.\d+\.\d+/\d+;\s*$", text, re.MULTILINE)
    candidates = cisco_lines + junos_lines
    if not candidates:
        return None
    victim = rng.choice(candidates)
    mutated = text.replace(victim + "\n", "", 1)
    if mutated == text:
        mutated = text.replace(victim, "", 1)
    return Mutation(
        mutated, f"removed prefix entry {victim.strip()!r}", "drop_prefix_list_entry"
    )


def change_static_next_hop(text: str, rng: random.Random) -> Optional[Mutation]:
    """Point one static route at a different next hop (§5.1 static bug)."""
    cisco = re.compile(
        r"(ip route \d+\.\d+\.\d+\.\d+ \d+\.\d+\.\d+\.\d+ \d+\.\d+\.\d+\.)(\d+)"
    )
    junos = re.compile(r"(next-hop \d+\.\d+\.\d+\.)(\d+)")
    matches = list(cisco.finditer(text)) + list(junos.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    old = int(match.group(2))
    new = (old % 250) + 2
    if new == old:
        new = old + 1
    mutated = text[: match.start(2)] + str(new) + text[match.end(2) :]
    return Mutation(
        mutated, f"static next hop .{old} -> .{new}", "change_static_next_hop"
    )


def change_static_tag(text: str, rng: random.Random) -> Optional[Mutation]:
    """Perturb a static route tag (the synthetic outage case of §5.1)."""
    pattern = re.compile(r"(tag )(\d+)")
    matches = list(pattern.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    old = int(match.group(2))
    mutated = text[: match.start(2)] + str(old + 1) + text[match.end(2) :]
    return Mutation(mutated, f"static tag {old} -> {old + 1}", "change_static_tag")


def remove_send_community(text: str, rng: random.Random) -> Optional[Mutation]:
    """Drop one ``send-community`` line (the §5.2 latent difference)."""
    pattern = re.compile(r"^.*neighbor \S+ send-community\s*$", re.MULTILINE)
    matches = list(pattern.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    mutated = text[: match.start()] + text[match.end() + 1 :]
    return Mutation(mutated, "removed a send-community line", "remove_send_community")


def flip_acl_action(text: str, rng: random.Random) -> Optional[Mutation]:
    """Flip one filter action (Scenario 3's ACL difference class)."""
    cisco = re.compile(r"^( *)(permit|deny)( (?:ip|ipv4|tcp|udp|icmp) .*)$", re.MULTILINE)
    junos = re.compile(r"then (accept|discard);")
    matches = [("cisco", m) for m in cisco.finditer(text)]
    matches += [("junos", m) for m in junos.finditer(text)]
    if not matches:
        return None
    dialect, match = rng.choice(matches)
    if dialect == "cisco":
        flipped = "deny" if match.group(2) == "permit" else "permit"
        mutated = text[: match.start(2)] + flipped + text[match.end(2) :]
        return Mutation(mutated, f"ACL action -> {flipped}", "flip_acl_action")
    flipped = "discard" if match.group(1) == "accept" else "accept"
    mutated = text[: match.start(1)] + flipped + text[match.end(1) :]
    return Mutation(mutated, f"filter action -> {flipped}", "flip_acl_action")


def change_ospf_cost(text: str, rng: random.Random) -> Optional[Mutation]:
    """Perturb an OSPF interface cost (a StructuralDiff OSPF class)."""
    pattern = re.compile(r"(ip ospf cost |metric )(\d+)")
    matches = list(pattern.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    old = int(match.group(2))
    mutated = text[: match.start(2)] + str(old + 5) + text[match.end(2) :]
    return Mutation(mutated, f"ospf cost {old} -> {old + 5}", "change_ospf_cost")


MUTATION_OPERATORS: List[Callable[[str, random.Random], Optional[Mutation]]] = [
    change_local_pref,
    change_community,
    drop_prefix_list_entry,
    change_static_next_hop,
    change_static_tag,
    remove_send_community,
    flip_acl_action,
    change_ospf_cost,
]


def apply_random_mutation(text: str, seed: int = 0) -> Optional[Mutation]:
    """Apply one applicable operator chosen at random."""
    rng = random.Random(seed)
    operators = list(MUTATION_OPERATORS)
    rng.shuffle(operators)
    for operator in operators:
        mutation = operator(text, rng)
        if mutation is not None:
            return mutation
    return None
