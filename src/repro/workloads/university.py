"""Synthetic university network for the §5.2 evaluation (Table 8).

The paper compares one Cisco/Juniper *core* router pair and one *border*
pair from a large campus network.  The real configurations are private;
this module rebuilds the pairs with the same policy structure and the
same confirmed issue classes, seeded so the Table 8 counts reproduce:

Route maps (Table 8a, SemanticDiff):

* **Export 1** (core) — the Figure 1 policy plus the two further §5.2
  issues: a third clause matching a community only on the Juniper side,
  and differing fall-through behaviors (JunOS accept vs IOS deny).
  5 outputted differences.
* **Export 2** (core) — reuses the buggy NETS prefix list: 1 difference.
* **Export 3 / Export 4** (border) — community-regex discrepancies where
  the Juniper regex accepts a strict subset: 1 difference each.
* **Export 5** (border) — one prefix missing from the Juniper list,
  which splits across two Juniper terms: 2 outputted, 1 underlying.
* **Import** (border) — identical on both: 0 differences.

Structural (Table 8b, core pair):

* **Static routes** — two classes: same-prefix routes with different
  next hops *and* administrative distances (deemed intentional), and two
  routes present on the Cisco router only (the BGP workaround).
* **BGP properties** — Cisco iBGP neighbors missing ``send-community``
  while JunOS sends communities by default (a latent, spurious
  difference — §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..model.device import DeviceConfig
from ..parsers import parse_cisco, parse_juniper

__all__ = ["UniversityPair", "UniversityNetwork", "university_network"]


@dataclass
class UniversityPair:
    name: str
    cisco: DeviceConfig
    juniper: DeviceConfig
    # route-map name -> (cisco policy, juniper policy) for Table 8a rows
    export_maps: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    import_maps: Dict[str, Tuple[str, str]] = field(default_factory=dict)


@dataclass
class UniversityNetwork:
    core: UniversityPair
    border: UniversityPair

    def pairs(self) -> List[UniversityPair]:
        """Both router pairs, core first."""
        return [self.core, self.border]


_CISCO_CORE = """\
hostname core-cisco
!
interface TenGigE0/0
 ip address 192.168.10.1 255.255.255.0
!
interface TenGigE0/1
 ip address 192.168.11.1 255.255.255.0
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip prefix-list CAMPUS permit 10.9.0.0/16 le 24
ip prefix-list CAMPUS permit 131.179.0.0/16 le 24
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map EXPORT-1 deny 10
 match ip address NETS
route-map EXPORT-1 deny 20
 match community COMM
route-map EXPORT-1 permit 30
 set local-preference 30
!
route-map EXPORT-2 deny 10
 match ip address NETS
route-map EXPORT-2 permit 20
!
ip route 192.0.2.0 255.255.255.0 10.0.0.10 200
ip route 198.51.100.0 255.255.255.0 10.0.0.20
ip route 198.51.101.0 255.255.255.0 10.0.0.20
!
router bgp 52
 bgp router-id 10.255.0.1
 neighbor 10.255.0.2 remote-as 52
 neighbor 10.255.0.2 update-source Loopback0
 neighbor 10.255.0.3 remote-as 52
 neighbor 10.255.0.3 update-source Loopback0
 neighbor 128.32.0.1 remote-as 25
 neighbor 128.32.0.1 route-map EXPORT-1 out
 neighbor 128.32.0.1 send-community
 neighbor 137.164.0.1 remote-as 2152
 neighbor 137.164.0.1 route-map EXPORT-2 out
 neighbor 137.164.0.1 send-community
!
router ospf 1
 router-id 10.255.0.1
 network 192.168.10.0 0.0.0.255 area 0
 network 192.168.11.0 0.0.0.255 area 0
!
"""

_JUNIPER_CORE = """\
system {
    host-name core-juniper;
}
interfaces {
    xe-0/0/0 {
        unit 0 {
            family inet {
                address 192.168.10.2/24;
            }
        }
    }
    xe-0/0/1 {
        unit 0 {
            family inet {
                address 192.168.11.2/24;
            }
        }
    }
}
routing-options {
    autonomous-system 52;
    router-id 10.255.0.4;
    static {
        route 192.0.2.0/24 {
            next-hop 10.0.1.10;
            preference 210;
        }
    }
}
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    community EDUCOMM members 10:30;
    policy-statement EXPORT-1 {
        term rule1 {
            from {
                prefix-list NETS;
            }
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            from community EDUCOMM;
            then {
                local-preference 30;
                accept;
            }
        }
    }
    policy-statement EXPORT-2 {
        term rule1 {
            from {
                prefix-list NETS;
            }
            then reject;
        }
        term rule2 {
            then accept;
        }
    }
}
protocols {
    bgp {
        group IBGP {
            type internal;
            neighbor 10.255.0.2;
            neighbor 10.255.0.3;
        }
        group EXTERN {
            type external;
            neighbor 128.32.0.1 {
                peer-as 25;
                export EXPORT-1;
            }
            neighbor 137.164.0.1 {
                peer-as 2152;
                export EXPORT-2;
            }
        }
    }
    ospf {
        area 0.0.0.0 {
            interface xe-0/0/0.0;
            interface xe-0/0/1.0;
        }
    }
}
"""

_CISCO_BORDER = """\
hostname border-cisco
!
ip prefix-list PFX5 permit 10.9.0.0/16
ip prefix-list PFX5 permit 10.100.0.0/16
ip prefix-list PFX5 permit 131.179.0.0/16
!
ip prefix-list ANY permit 0.0.0.0/0 le 32
!
ip community-list expanded CRE3 permit _52:1[0-9]_
ip community-list expanded CRE4 permit _52:2[0-9]_
ip community-list standard NOEXPORT permit 52:999
!
route-map EXPORT-3 permit 10
 match community CRE3
route-map EXPORT-3 deny 20
!
route-map EXPORT-4 permit 10
 match community CRE4
route-map EXPORT-4 deny 20
!
route-map EXPORT-5 permit 10
 match ip address PFX5
 set community 52:100
route-map EXPORT-5 deny 20
 match community NOEXPORT
route-map EXPORT-5 deny 30
!
route-map IMPORT-ISP permit 10
 match ip address ANY
 set local-preference 200
!
router bgp 52
 bgp router-id 10.255.1.1
 neighbor 192.0.3.1 remote-as 11537
 neighbor 192.0.3.1 route-map EXPORT-3 out
 neighbor 192.0.3.1 route-map IMPORT-ISP in
 neighbor 192.0.3.1 send-community
 neighbor 192.0.3.5 remote-as 2152
 neighbor 192.0.3.5 route-map EXPORT-4 out
 neighbor 192.0.3.5 send-community
 neighbor 192.0.3.9 remote-as 7018
 neighbor 192.0.3.9 route-map EXPORT-5 out
 neighbor 192.0.3.9 send-community
!
"""

_JUNIPER_BORDER = """\
system {
    host-name border-juniper;
}
routing-options {
    autonomous-system 52;
    router-id 10.255.1.2;
}
policy-options {
    prefix-list PFX5 {
        10.9.0.0/16;
        131.179.0.0/16;
    }
    community CRE3 members "^52:1[0-5]$";
    community CRE4 members "^52:2[0-4]$";
    community NOEXPORT members 52:999;
    community EXPORTTAG members 52:100;
    policy-statement EXPORT-3 {
        term allowed {
            from community CRE3;
            then accept;
        }
        term final {
            then reject;
        }
    }
    policy-statement EXPORT-4 {
        term allowed {
            from community CRE4;
            then accept;
        }
        term final {
            then reject;
        }
    }
    policy-statement EXPORT-5 {
        term nets {
            from {
                prefix-list PFX5;
            }
            then {
                community set EXPORTTAG;
                accept;
            }
        }
        term noexport {
            from community NOEXPORT;
            then reject;
        }
        term final {
            then reject;
        }
    }
    policy-statement IMPORT-ISP {
        term all {
            from {
                route-filter 0.0.0.0/0 prefix-length-range /0-/32;
            }
            then {
                local-preference 200;
                accept;
            }
        }
    }
}
protocols {
    bgp {
        group EXTERN {
            type external;
            neighbor 192.0.3.1 {
                peer-as 11537;
                export EXPORT-3;
                import IMPORT-ISP;
            }
            neighbor 192.0.3.5 {
                peer-as 2152;
                export EXPORT-4;
            }
            neighbor 192.0.3.9 {
                peer-as 7018;
                export EXPORT-5;
            }
        }
    }
}
"""


def university_network() -> UniversityNetwork:
    """Build and parse the core and border pairs."""
    core = UniversityPair(
        name="Core Routers",
        cisco=parse_cisco(_CISCO_CORE, "core-cisco.cfg"),
        juniper=parse_juniper(_JUNIPER_CORE, "core-juniper.cfg"),
        export_maps={
            "Export 1": ("EXPORT-1", "EXPORT-1"),
            "Export 2": ("EXPORT-2", "EXPORT-2"),
        },
    )
    border = UniversityPair(
        name="Border Routers",
        cisco=parse_cisco(_CISCO_BORDER, "border-cisco.cfg"),
        juniper=parse_juniper(_JUNIPER_BORDER, "border-juniper.cfg"),
        export_maps={
            "Export 3": ("EXPORT-3", "EXPORT-3"),
            "Export 4": ("EXPORT-4", "EXPORT-4"),
            "Export 5": ("EXPORT-5", "EXPORT-5"),
        },
        import_maps={"Import": ("IMPORT-ISP", "IMPORT-ISP")},
    )
    return UniversityNetwork(core=core, border=border)
