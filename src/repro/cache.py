"""Persistent content-addressed artifact cache (``~/.cache/campion``).

Two stores under one root make repeated CLI invocations incremental:

* ``devices/`` — parsed :class:`~repro.model.device.DeviceConfig`
  objects (pickled, with their component fingerprints already computed),
  keyed by the SHA-256 of the configuration *text* plus filename,
  dialect, and strictness — re-running over an unchanged file skips the
  parser entirely.
* ``diffs/`` — per-component diff entries (JSON, the
  :mod:`repro.core.memo` entry format), keyed by the component
  fingerprint pair — re-running over a mostly-unchanged fleet only
  analyzes changed components.

Every key digest and every stored payload embeds the schema versions
(cache layout, report serialization, fingerprint canonicalization), and
reads validate the payload's stamps: an entry written by an older
schema is rejected as stale — counted under ``cache.stale`` — and
deleted, so a version bump atomically invalidates old artifacts even if
the key format happens to survive.

Writes are atomic (temp file + ``os.replace``) so concurrent processes
— parallel fleet workers write through the parent, but nothing stops
two CLI invocations sharing a cache dir — can never observe a torn
entry; writers and evictors additionally serialize on an ``fcntl``
advisory lock (``<root>/.lock``) so concurrent eviction can't race an
in-flight replace.  Each store is bounded by ``max_entries`` with
mtime-LRU eviction.  Cache failures of any kind (unreadable file,
corrupt pickle, full disk) degrade to a miss or a skipped write — the
cache must never sink an analysis run — and an entry whose *bytes*
fail to load is moved to ``<root>/quarantine/`` (counted under
``cache.quarantined``, noted on stderr) for operator inspection rather
than silently deleted; schema-stale entries are still just deleted.
Hit/miss/eviction counters land in :mod:`repro.perf`; ``campion cache
stats|clear`` exposes the store.  :meth:`ArtifactCache.namespace`
derives a per-tenant cache rooted under ``<root>/tenants/<name>`` for
multi-tenant service deployments.

Like any pickle-based local cache, ``devices/`` is only as trustworthy
as the directory permissions; the default root lives under the user's
own cache home (``$XDG_CACHE_HOME``/``~/.cache``).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import pickle
import re
import sys
import tempfile
from typing import Dict, Iterator, Optional, Tuple

try:  # POSIX only; on other platforms locking degrades to a no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from . import perf
from .core.serialize import SCHEMA_VERSION as SERIALIZE_SCHEMA_VERSION
from .model.device import DeviceConfig
from .model.fingerprint import FINGERPRINT_SCHEMA_VERSION

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_DIR_ENV",
    "ArtifactCache",
    "default_cache_dir",
    "resolve_cache_dir",
]

#: Bump when the on-disk layout or pickled payload shape changes.
#: v2: diff entries may carry localization-replay fields ("localized",
#: "provenance", "replay") and stats() reports localized entry counts.
CACHE_SCHEMA_VERSION = 2

CACHE_DIR_ENV = "CAMPION_CACHE_DIR"

_DEVICES = "devices"
_DIFFS = "diffs"
_QUARANTINE = "quarantine"
_LOCK_FILE = ".lock"
_TENANTS = "tenants"

#: Tenant names are path components; anything else is flattened.
_SAFE_TENANT = re.compile(r"[^A-Za-z0-9._-]+")


def default_cache_dir() -> pathlib.Path:
    """``$XDG_CACHE_HOME/campion`` or ``~/.cache/campion``."""
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "campion"


def resolve_cache_dir(explicit: Optional[str] = None) -> pathlib.Path:
    """Cache root: ``--cache-dir`` wins, else ``$CAMPION_CACHE_DIR``,
    else the platform default."""
    if explicit:
        return pathlib.Path(explicit)
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return pathlib.Path(env)
    return default_cache_dir()


def _schema_stamp() -> Tuple[int, int, int]:
    # Read at call time so tests can simulate version bumps.
    return (
        CACHE_SCHEMA_VERSION,
        SERIALIZE_SCHEMA_VERSION,
        FINGERPRINT_SCHEMA_VERSION,
    )


class ArtifactCache:
    """Content-addressed store of parsed devices and diff entries."""

    def __init__(
        self,
        root: os.PathLike,
        max_entries: int = 8192,
    ) -> None:
        self.root = pathlib.Path(root)
        self.max_entries = max_entries

    def namespace(self, tenant: str) -> "ArtifactCache":
        """A cache rooted under ``<root>/tenants/<tenant>``.

        Tenants sharing one physical cache directory get disjoint
        stores (and disjoint locks), so one tenant's pushes can never
        evict or poison another's artifacts.  The tenant name is
        sanitized to a single path component.
        """
        safe = _SAFE_TENANT.sub("_", tenant.strip())
        if safe in ("", ".", ".."):
            safe = f"_{safe}_"
        return ArtifactCache(
            self.root / _TENANTS / safe, max_entries=self.max_entries
        )

    # -- keys ----------------------------------------------------------------
    def _digest(self, store: str, key_material: str) -> str:
        material = repr((_schema_stamp(), store, key_material))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, store: str, digest: str, suffix: str) -> pathlib.Path:
        # Two-level sharding keeps directory listings fast at capacity.
        return self.root / store / digest[:2] / f"{digest}{suffix}"

    @staticmethod
    def device_text_key(
        text: str, filename: str, dialect: str, strict: bool
    ) -> str:
        """Key material for one parsed device: text digest + parse options."""
        text_sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return repr((text_sha, filename, dialect, bool(strict)))

    # -- devices -------------------------------------------------------------
    def get_device(
        self, text: str, filename: str, dialect: str, strict: bool
    ) -> Optional[DeviceConfig]:
        """The parsed device for this exact text, or ``None``."""
        digest = self._digest(
            _DEVICES, self.device_text_key(text, filename, dialect, strict)
        )
        path = self._path(_DEVICES, digest, ".pickle")
        payload = self._read_pickle(path)
        if payload is None:
            perf.add("cache.device.misses")
            return None
        if payload.get("schema") != _schema_stamp():
            self._reject_stale(path)
            perf.add("cache.device.misses")
            return None
        device = payload.get("device")
        if not isinstance(device, DeviceConfig):
            self._reject_stale(path)
            perf.add("cache.device.misses")
            return None
        perf.add("cache.device.hits")
        return device

    def put_device(
        self,
        text: str,
        filename: str,
        dialect: str,
        strict: bool,
        device: DeviceConfig,
    ) -> None:
        """Store a parsed device (fingerprints ride along pickled)."""
        device.fingerprints  # ensure the cached property is materialized
        digest = self._digest(
            _DEVICES, self.device_text_key(text, filename, dialect, strict)
        )
        path = self._path(_DEVICES, digest, ".pickle")
        self._write_atomic(
            path, pickle.dumps({"schema": _schema_stamp(), "device": device})
        )
        self._evict(_DEVICES)

    # -- diff entries --------------------------------------------------------
    def get_diff(self, key: Tuple) -> Optional[Dict]:
        """The memoized diff entry for a fingerprint key, or ``None``.

        Only counted in :mod:`repro.perf` (``cache.diff.*``); the
        :class:`~repro.core.memo.DiffMemo` in front counts the logical
        memo hit/miss.
        """
        digest = self._digest(_DIFFS, repr(key))
        path = self._path(_DIFFS, digest, ".json")
        payload = self._read_json(path)
        if payload is None:
            perf.add("cache.diff.misses")
            return None
        if (
            payload.get("cache_schema") != CACHE_SCHEMA_VERSION
            or payload.get("serialize_schema") != SERIALIZE_SCHEMA_VERSION
            or payload.get("fingerprint_schema") != FINGERPRINT_SCHEMA_VERSION
            or not isinstance(payload.get("entry"), dict)
        ):
            self._reject_stale(path)
            perf.add("cache.diff.misses")
            return None
        perf.add("cache.diff.hits")
        return payload["entry"]

    def put_diff(self, key: Tuple, entry: Dict) -> None:
        """Store one clean per-component diff entry."""
        digest = self._digest(_DIFFS, repr(key))
        path = self._path(_DIFFS, digest, ".json")
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "serialize_schema": SERIALIZE_SCHEMA_VERSION,
            "fingerprint_schema": FINGERPRINT_SCHEMA_VERSION,
            "key": repr(key),
            "entry": entry,
        }
        self._write_atomic(
            path, json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        self._evict(_DIFFS)

    # -- maintenance ---------------------------------------------------------
    def stats(self) -> Dict:
        """Entry counts and byte sizes per store (plus the root path)."""
        result: Dict = {"root": str(self.root), "stores": {}}
        for store in (_DEVICES, _DIFFS):
            entries = 0
            size = 0
            localized = 0
            for path in self._entries(store):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
                if store == _DIFFS:
                    try:
                        with open(path, "r", encoding="utf-8") as handle:
                            payload = json.load(handle)
                        if payload.get("entry", {}).get("localized"):
                            localized += 1
                    except Exception:  # noqa: BLE001 - stats stay best-effort
                        continue
            result["stores"][store] = {"entries": entries, "bytes": size}
            if store == _DIFFS:
                # Diff entries carrying replayable localization (schema
                # v2) — the warm full-report path's working set.
                result["stores"][store]["localized"] = localized
        entries = 0
        size = 0
        for path in self._quarantine_entries():
            try:
                size += path.stat().st_size
            except OSError:
                continue
            entries += 1
        result["stores"][_QUARANTINE] = {"entries": entries, "bytes": size}
        return result

    def clear(self) -> int:
        """Remove every cached artifact (quarantined ones included);
        returns the number removed."""
        removed = 0
        for store in (_DEVICES, _DIFFS):
            for path in self._entries(store):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        for path in self._quarantine_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # -- internals -----------------------------------------------------------
    def _entries(self, store: str):
        base = self.root / store
        if not base.is_dir():
            return
        for shard in sorted(base.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.iterdir())

    def _quarantine_entries(self):
        base = self.root / _QUARANTINE
        if not base.is_dir():
            return
        for path in sorted(base.iterdir()):
            if path.is_file():
                yield path

    def _read_pickle(self, path: pathlib.Path) -> Optional[Dict]:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - corrupt entry degrades to a miss
            perf.add("cache.errors")
            self._quarantine(path)
            return None
        return payload if isinstance(payload, dict) else None

    def _read_json(self, path: pathlib.Path) -> Optional[Dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - corrupt entry degrades to a miss
            perf.add("cache.errors")
            self._quarantine(path)
            return None
        return payload if isinstance(payload, dict) else None

    @contextlib.contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory cross-process lock on ``<root>/.lock``.

        Serializes writers and evictors sharing one cache root so a
        concurrent ``_evict`` scan can never race an in-flight
        ``os.replace``.  Readers stay lock-free: an entry is either the
        old bytes, the new bytes, or absent (rename atomicity), and
        every failure mode already degrades to a miss.  Degrades to a
        no-op where ``fcntl`` (or the lock file itself) is unavailable
        — the cache must never sink an analysis run.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        handle = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            handle = open(self.root / _LOCK_FILE, "a+b")
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            if handle is not None:
                handle.close()
                handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - defensive
                    pass
                handle.close()

    def _write_atomic(self, path: pathlib.Path, data: bytes) -> None:
        try:
            with self._lock():
                path.parent.mkdir(parents=True, exist_ok=True)
                descriptor, temp_name = tempfile.mkstemp(
                    dir=str(path.parent), prefix=".tmp-"
                )
                try:
                    with os.fdopen(descriptor, "wb") as handle:
                        handle.write(data)
                    os.replace(temp_name, path)
                except BaseException:
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
                    raise
                perf.add("cache.writes")
        except OSError:
            perf.add("cache.errors")  # full disk / permissions: skip write

    def _reject_stale(self, path: pathlib.Path) -> None:
        perf.add("cache.stale")
        try:
            path.unlink()
        except OSError:
            pass

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move an unreadable entry aside instead of deleting it.

        A truncated pickle or torn JSON is evidence of a fault
        (crashed writer, disk corruption, hostile tampering) that an
        operator may want to inspect — so the bytes survive under
        ``<root>/quarantine/`` rather than vanishing as a silent miss.
        Quarantined files never match a key digest again, so they are
        read at most once more (never — the store path is gone).
        """
        perf.add("cache.quarantined")
        target = self.root / _QUARANTINE / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            print(
                f"campion cache: quarantined corrupt entry {path.name}"
                f" -> {target}",
                file=sys.stderr,
            )
        except OSError:
            # Can't move it (cross-device, permissions): fall back to
            # the old behaviour and delete so it can't re-trip reads.
            try:
                path.unlink()
            except OSError:
                pass

    def _evict(self, store: str) -> None:
        """mtime-LRU bound on the store size (writes are rare — one per
        unique artifact — so the scan cost is negligible in practice)."""
        try:
            with self._lock():
                entries = list(self._entries(store))
                excess = len(entries) - self.max_entries
                if excess <= 0:
                    return
                entries.sort(key=lambda p: (p.stat().st_mtime, p.name))
                for path in entries[:excess]:
                    try:
                        path.unlink()
                        perf.add("cache.evictions")
                    except OSError:
                        continue
        except OSError:
            perf.add("cache.errors")
