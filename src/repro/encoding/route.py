"""BDD encoding of the route-advertisement space for route-map analysis.

A route advertisement is encoded over:

* 32 ``prefix`` bits + 6 ``length`` bits — the advertised prefix.  Bits
  beyond ``length`` are never consulted by any prefix-range predicate
  (ranges guarantee ``low >= plen``), so they are don't-cares; decoders
  mask them for canonical display.
* one boolean per community *atom* — the communities literally mentioned
  by either policy under comparison, plus witness communities generated
  for every community regex (see :func:`community_universe`).  A literal
  match is a conjunction of atom variables; a regex match is a
  disjunction over the atoms it accepts.
* one boolean per distinct as-path regex — two policies using the same
  regex text share a variable; syntactically different regexes get
  independent variables, i.e. are treated as potentially different, which
  follows Campion's modular "any possible difference is reported" stance.
* a 16-bit ``tag`` and a small ``protocol`` enum for redistribution
  policies (``match tag`` / ``from protocol``).

The vocabulary (community atoms, regexes) comes from the *pair* of route
maps being compared, so each comparison gets a purpose-built, small
variable set — this is why SemanticDiff runs in milliseconds on real
policies (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..bdd import Bdd, BddManager, BitVector
from ..model.routemap import (
    AsPathList,
    CommunityList,
    CommunityListEntry,
    PrefixList,
    RouteMap,
    community_regex_matches,
)
from ..model.types import Community, Prefix, PrefixRange, int_to_ip

__all__ = [
    "ROUTE_PROTOCOLS",
    "community_universe",
    "RouteSpace",
    "RouteExample",
]

# Source-protocol enum for redistribution policies ("from protocol X").
ROUTE_PROTOCOLS: Tuple[str, ...] = ("bgp", "ospf", "static", "connected", "aggregate")


def _regex_witnesses(regex: str, candidates: Iterable[Community]) -> List[Community]:
    """Concrete communities accepted by ``regex`` from a candidate pool."""
    return [c for c in candidates if community_regex_matches(regex, c)]


def community_universe(maps: Sequence[RouteMap]) -> List[Community]:
    """The community atoms for a comparison.

    Literal communities from all policies, plus witnesses for every regex
    drawn from a structured candidate pool (numbers appearing in the
    regexes and literals, crossed with a small value range).  Witnesses
    make regex differences observable: if two regexes accept different
    subsets of the pool, SemanticDiff sees a difference on those atoms.
    """
    import re as _re

    literals: set = set()
    regexes: List[str] = []
    for route_map in maps:
        literals.update(route_map.mentioned_communities())
        regexes.extend(route_map.community_regexes())

    numbers: set = {0, 1, 100}
    for community in literals:
        numbers.add(community.asn)
        numbers.add(community.value)
    for regex in regexes:
        for text in _re.findall(r"\d+", regex):
            value = int(text)
            if value <= 0xFFFF:
                numbers.add(value)
                # Nearby values let witnesses distinguish off-by-one and
                # digit-class regex discrepancies (Exports 3-4, §5.2).
                if value + 1 <= 0xFFFF:
                    numbers.add(value + 1)
                if value >= 1:
                    numbers.add(value - 1)
                for digit in range(10):
                    widened = value * 10 + digit
                    if widened <= 0xFFFF:
                        numbers.add(widened)
                # Two-digit completions catch regexes like "2[0-9][0-9]"
                # whose matches only exist three digits out from the
                # literal stem; bounded to small stems to keep the pool
                # size manageable.
                if value < 100:
                    for completion in range(100):
                        widened = value * 100 + completion
                        if widened <= 0xFFFF:
                            numbers.add(widened)

    pool = {Community(a, v) for a in sorted(numbers) for v in sorted(numbers)}
    universe = set(literals)
    for regex in regexes:
        universe.update(_regex_witnesses(regex, pool))
    return sorted(universe)


@dataclass(frozen=True)
class RouteExample:
    """A concrete route advertisement decoded from a BDD model."""

    prefix: Prefix
    communities: FrozenSet[Community] = frozenset()
    matched_regexes: FrozenSet[str] = frozenset()
    tag: int = 0
    protocol: str = "bgp"

    def describe(self) -> Dict[str, str]:
        """Field-name to rendered-value mapping for reports."""
        result = {"prefix": str(self.prefix)}
        if self.communities:
            result["communities"] = " ".join(sorted(str(c) for c in self.communities))
        if self.matched_regexes:
            result["as-path-regexes"] = " ".join(sorted(self.matched_regexes))
        if self.tag:
            result["tag"] = str(self.tag)
        if self.protocol != "bgp":
            result["protocol"] = self.protocol
        return result


class RouteSpace:
    """Variable layout and match-predicate builders for route advertisements."""

    def __init__(
        self,
        maps: Sequence[RouteMap],
        manager: Optional[BddManager] = None,
    ):
        self.manager = manager if manager is not None else BddManager()
        self.prefix = BitVector.allocate(self.manager, "prefix", 32)
        self.length = BitVector.allocate(self.manager, "prefixLength", 6)

        self.communities: List[Community] = community_universe(maps)
        self.community_vars: Dict[Community, Bdd] = {
            community: self.manager.new_var() for community in self.communities
        }

        as_path_regexes: List[str] = []
        for route_map in maps:
            for clause in route_map.clauses:
                from ..model.routemap import MatchAsPath

                for condition in clause.matches:
                    if isinstance(condition, MatchAsPath):
                        for entry in condition.as_path_list.entries:
                            if entry.regex not in as_path_regexes:
                                as_path_regexes.append(entry.regex)
        self.as_path_regexes: List[str] = as_path_regexes
        self.as_path_vars: Dict[str, Bdd] = {
            regex: self.manager.new_var() for regex in as_path_regexes
        }

        self.tag = BitVector.allocate(self.manager, "tag", 16)
        self.protocol = BitVector.allocate(self.manager, "protocol", 3)

        # Well-formedness: prefix length <= 32.  The protocol enum is left
        # unbounded — its variables only enter a class's support when a
        # MatchProtocol condition constrains them, which keeps Present from
        # emitting spurious "Protocol" rows on BGP-only comparisons.
        self.universe: Bdd = self.length.le_const(32)

    # -- prefix predicates -------------------------------------------------------
    def range_pred(self, prefix_range: PrefixRange) -> Bdd:
        """The set of advertisements whose prefix is in ``prefix_range``."""
        address_ok = self.prefix.prefix_match(
            prefix_range.prefix.network, prefix_range.prefix.length
        )
        length_ok = self.length.interval(prefix_range.low, prefix_range.high)
        return address_ok & length_ok

    def exact_prefix_pred(self, prefix: Prefix) -> Bdd:
        """The singleton advertisement set for one concrete prefix."""
        return self.range_pred(PrefixRange.exact(prefix))

    def prefix_list_pred(self, prefix_list: PrefixList) -> Bdd:
        """First-match composition of a prefix list (permit set)."""
        from ..model.routemap import Action

        permitted = self.manager.false
        reach = self.manager.true
        for entry in prefix_list.entries:
            fire = reach & self.range_pred(entry.range)
            if entry.action is Action.PERMIT:
                permitted = permitted | fire
            reach = reach - fire
        return permitted

    # -- community predicates -------------------------------------------------------
    def community_pred(self, community: Community) -> Bdd:
        """Predicate: the route carries ``community``.

        Communities outside the comparison vocabulary cannot influence
        either policy, so they need no variable.
        """
        var = self.community_vars.get(community)
        if var is None:
            raise KeyError(f"community {community} not in comparison universe")
        return var

    def community_entry_pred(self, entry: CommunityListEntry) -> Bdd:
        """One community-list entry: conjunction of literals, or regex."""
        if entry.regex is not None:
            accepted = [
                self.community_vars[c]
                for c in self.communities
                if community_regex_matches(entry.regex, c)
            ]
            return self.manager.disjoin(accepted)
        return self.manager.conjoin(self.community_vars[c] for c in entry.communities)

    def community_list_pred(self, community_list: CommunityList) -> Bdd:
        """First-match composition of a community list (permit set)."""
        from ..model.routemap import Action

        permitted = self.manager.false
        reach = self.manager.true
        for entry in community_list.entries:
            fire = reach & self.community_entry_pred(entry)
            if entry.action is Action.PERMIT:
                permitted = permitted | fire
            reach = reach - fire
        return permitted

    # -- as-path predicates --------------------------------------------------------
    def as_path_list_pred(self, as_path_list: AsPathList) -> Bdd:
        """First-match composition of an as-path list (permit set)."""
        from ..model.routemap import Action

        permitted = self.manager.false
        reach = self.manager.true
        for entry in as_path_list.entries:
            fire = reach & self.as_path_vars[entry.regex]
            if entry.action is Action.PERMIT:
                permitted = permitted | fire
            reach = reach - fire
        return permitted

    # -- other fields ---------------------------------------------------------------
    def tag_pred(self, tag: int) -> Bdd:
        """Predicate: the route carries exactly this tag."""
        return self.tag.eq_const(tag)

    def protocol_pred(self, protocol: str) -> Bdd:
        """Predicate: the route originated from ``protocol``."""
        try:
            index = ROUTE_PROTOCOLS.index(protocol)
        except ValueError as exc:
            raise KeyError(f"unknown route protocol {protocol!r}") from exc
        return self.protocol.eq_const(index)

    # -- projections ------------------------------------------------------------------
    def prefix_var_indices(self) -> List[int]:
        """Variable indices of the prefix+length block, for projection."""
        return list(self.prefix.var_indices) + list(self.length.var_indices)

    def non_prefix_var_indices(self) -> List[int]:
        """All variables other than prefix+length (quantified away when
        HeaderLocalize projects a difference onto prefix space)."""
        keep = set(self.prefix_var_indices())
        return [index for index in range(self.manager.num_vars) if index not in keep]

    def project_to_prefix(self, predicate: Bdd) -> Bdd:
        """Existentially quantify out everything but the prefix dimension."""
        return self.manager.exists(predicate, self.non_prefix_var_indices())

    # -- decoding ----------------------------------------------------------------------
    def decode(self, model: Dict[int, bool]) -> RouteExample:
        """Decode a (total) model into a canonical route advertisement."""
        length = min(self.length.value_of(model), 32)
        raw_network = self.prefix.value_of(model)
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        carried = frozenset(
            community
            for community, var in self.community_vars.items()
            if model.get(var.support()[0], False)
        )
        matched = frozenset(
            regex
            for regex, var in self.as_path_vars.items()
            if model.get(var.support()[0], False)
        )
        protocol_index = self.protocol.value_of(model)
        protocol = (
            ROUTE_PROTOCOLS[protocol_index]
            if protocol_index < len(ROUTE_PROTOCOLS)
            else "bgp"
        )
        return RouteExample(
            prefix=Prefix(raw_network & mask, length),
            communities=carried,
            matched_regexes=matched,
            tag=self.tag.value_of(model),
            protocol=protocol,
        )

    def encode_concrete(
        self,
        prefix: Prefix,
        communities: Iterable[Community] = (),
        tag: int = 0,
        protocol: str = "bgp",
    ) -> Bdd:
        """The singleton set of one concrete advertisement (testing glue).

        Communities outside the vocabulary are ignored — they cannot be
        observed by either policy.
        """
        carried = {c for c in communities if c in self.community_vars}
        acc = self.exact_prefix_pred(prefix)
        for community, var in self.community_vars.items():
            acc = acc & (var if community in carried else ~var)
        acc = acc & self.tag_pred(tag) & self.protocol_pred(protocol)
        return acc
