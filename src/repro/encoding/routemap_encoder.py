"""Path equivalence classes for route maps (§3.1, Figure 2).

A route map's paths are "clause i fired first" plus the fall-through.
For the Figure 1(a) example this produces exactly the paper's Figure 2
partition:

* clause 10:  ``NETS``
* clause 20:  ``¬NETS ∧ COMM``
* clause 30:  ``¬NETS ∧ ¬COMM``

Each class carries a :class:`~repro.encoding.classes.RouteMapAction`
capturing accept/reject plus the set-statements applied, so SemanticDiff
can compare dispositions precisely (``SET LOCAL PREF 30 / ACCEPT`` vs
``REJECT`` in Table 2).
"""

from __future__ import annotations

from typing import List

from ..bdd import Bdd
from ..model.routemap import (
    MatchAsPath,
    MatchCommunities,
    MatchCondition,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    RouteMap,
    RouteMapClause,
)
from ..model.types import SourceSpan
from .classes import EquivalenceClass, RouteMapAction
from .route import RouteSpace

__all__ = ["clause_match_pred", "route_map_equivalence_classes"]


def clause_match_pred(space: RouteSpace, clause: RouteMapClause) -> Bdd:
    """Conjunction of all of a clause's match conditions.

    A clause with no conditions matches everything — both IOS (a
    ``route-map`` stanza without ``match``) and JunOS (a term without
    ``from``) use that as the catch-all idiom.
    """
    acc = space.manager.true
    for condition in clause.matches:
        acc = acc & _condition_pred(space, condition)
        if acc.is_false():
            break
    return acc


def _condition_pred(space: RouteSpace, condition: MatchCondition) -> Bdd:
    if isinstance(condition, MatchPrefixList):
        return space.prefix_list_pred(condition.prefix_list)
    if isinstance(condition, MatchCommunities):
        return space.community_list_pred(condition.community_list)
    if isinstance(condition, MatchAsPath):
        return space.as_path_list_pred(condition.as_path_list)
    if isinstance(condition, MatchTag):
        return space.tag_pred(condition.tag)
    if isinstance(condition, MatchProtocol):
        return space.protocol_pred(condition.protocol)
    raise TypeError(f"unsupported match condition: {condition!r}")


def route_map_equivalence_classes(
    space: RouteSpace, route_map: RouteMap
) -> List[EquivalenceClass]:
    """Partition the advertisement space by first-matching clause.

    Predicates are intersected with the space's well-formedness universe
    (valid prefix lengths), are pairwise disjoint, and cover the universe.
    Clauses that can never fire are dropped, as in the ACL encoder.
    """
    classes: List[EquivalenceClass] = []
    reach = space.universe
    for index, clause in enumerate(route_map.clauses):
        fire = reach & clause_match_pred(space, clause)
        if fire:
            classes.append(
                EquivalenceClass(
                    predicate=fire,
                    action=RouteMapAction(clause.action, clause.sets),
                    policy_name=route_map.name,
                    step_name=clause.name,
                    source=clause.source,
                    index=index,
                )
            )
        reach = reach - fire
    if reach:
        classes.append(
            EquivalenceClass(
                predicate=reach,
                action=RouteMapAction(route_map.default_action),
                policy_name=route_map.name,
                step_name=f"default {route_map.default_action}",
                source=SourceSpan(),
                index=len(route_map.clauses),
                is_default=True,
            )
        )
    return classes
