"""BDD encodings of packets, route advertisements, and component paths."""

from .acl_encoder import acl_equivalence_classes, shadowed_lines
from .classes import EquivalenceClass, RouteMapAction
from .packet import PacketExample, PacketSpace
from .route import ROUTE_PROTOCOLS, RouteExample, RouteSpace, community_universe
from .routemap_encoder import clause_match_pred, route_map_equivalence_classes

__all__ = [
    "ROUTE_PROTOCOLS",
    "EquivalenceClass",
    "PacketExample",
    "PacketSpace",
    "RouteExample",
    "RouteMapAction",
    "RouteSpace",
    "acl_equivalence_classes",
    "clause_match_pred",
    "community_universe",
    "route_map_equivalence_classes",
    "shadowed_lines",
]
