"""Path equivalence classes for ACLs (§3.1, applied to packet filters).

An ACL's paths are "line i fired first" for each line plus "no line
fired" for the default.  Unreachable lines (shadowed by earlier rules)
produce empty predicates and are dropped — they cannot witness a
behavioral difference, though :func:`shadowed_lines` reports them since
they are a useful lint on their own.
"""

from __future__ import annotations

from typing import List

from ..model.acl import Acl, AclLine
from ..model.types import SourceSpan
from .classes import EquivalenceClass
from .packet import PacketSpace

__all__ = ["acl_equivalence_classes", "shadowed_lines"]


def acl_equivalence_classes(space: PacketSpace, acl: Acl) -> List[EquivalenceClass]:
    """Partition the packet space by first-matching line of ``acl``.

    Returns one :class:`EquivalenceClass` per reachable line plus one for
    the implicit default action; predicates are disjoint and cover the
    whole packet space.
    """
    classes: List[EquivalenceClass] = []
    reach = space.manager.true
    for index, line in enumerate(acl.lines):
        fire = reach & space.line_pred(line)
        if fire:
            classes.append(
                EquivalenceClass(
                    predicate=fire,
                    action=line.action,
                    policy_name=acl.name,
                    step_name=line.name or line.describe(),
                    source=line.source,
                    index=index,
                )
            )
        reach = reach - fire
    if reach:
        classes.append(
            EquivalenceClass(
                predicate=reach,
                action=acl.default_action,
                policy_name=acl.name,
                step_name=f"default {acl.default_action}",
                source=SourceSpan(),
                index=len(acl.lines),
                is_default=True,
            )
        )
    return classes


def shadowed_lines(space: PacketSpace, acl: Acl) -> List[AclLine]:
    """Lines that can never fire because earlier lines cover them."""
    shadowed: List[AclLine] = []
    reach = space.manager.true
    for line in acl.lines:
        fire = reach & space.line_pred(line)
        if not fire:
            shadowed.append(line)
        reach = reach - fire
    return shadowed
