"""Path equivalence classes — the unit SemanticDiff compares (§3.1).

Both ACLs and route maps are sequences of if-then-else steps, so the
input space partitions by *which step fires first* (with the implicit
default as the final step).  Each partition cell becomes an
:class:`EquivalenceClass`: a BDD predicate over the input space, the
action taken on that path, and the configuration text on the path.

The lists produced here are exactly the paper's

    L = [(l_1, a_1, t_1), ..., (l_m, a_m, t_m)]

with the invariants (checked by property tests):

* the predicates are pairwise disjoint, and
* their union is the whole (well-formed) input space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..bdd import Bdd
from ..model.acl import AclAction
from ..model.routemap import Action, SetAction
from ..model.types import SourceSpan

__all__ = ["RouteMapAction", "EquivalenceClass"]


@dataclass(frozen=True)
class RouteMapAction:
    """Canonical disposition of a route-map path: accept/reject plus the
    field transformations applied on acceptance.

    Set actions are normalized away on DENY paths (a rejected route's
    attribute edits are unobservable), so two deny clauses always compare
    equal regardless of their ``set`` statements.
    """

    action: Action
    sets: Tuple[SetAction, ...] = ()

    def __post_init__(self) -> None:
        if self.action is Action.DENY and self.sets:
            object.__setattr__(self, "sets", ())
        else:
            # Order-insensitive: IOS applies sets within one stanza in a
            # fixed field order, so textual order carries no meaning.
            object.__setattr__(
                self, "sets", tuple(sorted(self.sets, key=lambda s: s.describe()))
            )

    def describe(self) -> str:
        """Multi-line disposition, e.g. ``SET LOCAL PREF 30\nACCEPT``."""
        parts = [s.describe() for s in self.sets]
        parts.append("ACCEPT" if self.action is Action.PERMIT else "REJECT")
        return "\n".join(parts)


@dataclass(frozen=True)
class EquivalenceClass:
    """One path through a component: predicate, action, and source text.

    ``action`` is an :class:`~repro.model.acl.AclAction` for ACL paths and
    a :class:`RouteMapAction` for route-map paths.  ``policy_name`` and
    ``step_name`` feed the Policy Name / Text rows of the report tables.
    """

    predicate: Bdd
    action: object
    policy_name: str
    step_name: str
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)
    index: int = 0
    is_default: bool = False

    def text(self) -> str:
        """The text-localization payload for this path."""
        if not self.source.is_empty():
            return self.source.render()
        if self.is_default:
            return f"(implicit default of {self.policy_name})"
        return self.step_name
