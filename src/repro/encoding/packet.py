"""BDD encoding of the packet header space for ACL analysis.

:class:`PacketSpace` lays out the classic 5-tuple (plus ICMP type) over
BDD variables and builds predicates for the match primitives the ACL
model uses.  Variable order: the 8-bit protocol field sits on top, then
the destination and source addresses, then ports and ICMP type.
Addresses stay contiguous so prefix matches constrain one top block of
the order, which keeps ACL BDDs near-linear in rule count (the property
the §5.4 scalability result depends on); hoisting the protocol above
them measures smaller on the pairwise-diff hot path (the variable-order
ablation benchmark, ``bench_ablation_var_order.py``): almost every rule
constrains the protocol, so testing its eight bits first lets rules for
different protocols share their address substructure instead of
duplicating it per protocol branch.

Every choice here is a pure performance knob: equivalence classes,
difference lists, and localizations are order-independent (the
regression test ``tests/encoding/test_var_order.py`` pins that), only
witness examples — one arbitrary model of a set — may decode
differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd, BddManager, BitVector
from ..model.acl import Acl, AclLine, IpWildcard, PortRange
from ..model.types import int_to_ip

__all__ = ["PacketSpace", "PacketExample"]


@dataclass(frozen=True)
class PacketExample:
    """A concrete packet decoded from a BDD model (baseline witnesses)."""

    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int
    icmp_type: int

    def describe(self) -> Dict[str, str]:
        """Field-name to rendered-value mapping for reports."""
        from ..model.acl import IP_PROTOCOL_NAMES

        return {
            "srcIp": int_to_ip(self.src_ip),
            "dstIp": int_to_ip(self.dst_ip),
            "protocol": IP_PROTOCOL_NAMES.get(self.protocol, str(self.protocol)),
            "srcPort": str(self.src_port),
            "dstPort": str(self.dst_port),
            "icmpType": str(self.icmp_type),
        }


class PacketSpace:
    """Variable layout and match-predicate builders for packets."""

    def __init__(self, manager: Optional[BddManager] = None):
        self.manager = manager if manager is not None else BddManager()
        # Protocol above the (contiguous) address blocks: nearly every
        # rule constrains it, so branching on its eight bits first lets
        # per-protocol rules share address substructure (see module
        # docstring; measured by bench_ablation_var_order.py).
        self.protocol = BitVector.allocate(self.manager, "protocol", 8)
        self.dst_ip = BitVector.allocate(self.manager, "dstIp", 32)
        self.src_ip = BitVector.allocate(self.manager, "srcIp", 32)
        self.src_port = BitVector.allocate(self.manager, "srcPort", 16)
        self.dst_port = BitVector.allocate(self.manager, "dstPort", 16)
        self.icmp_type = BitVector.allocate(self.manager, "icmpType", 8)
        self.fields: Tuple[BitVector, ...] = (
            self.dst_ip,
            self.src_ip,
            self.protocol,
            self.src_port,
            self.dst_port,
            self.icmp_type,
        )

    # -- primitive predicates ------------------------------------------------
    def wildcard_pred(self, field: BitVector, wildcard: IpWildcard) -> Bdd:
        """Address-with-don't-care-bits match on ``field``."""
        if wildcard.is_any():
            return self.manager.true
        literals = {}
        for position in range(31, -1, -1):
            bit_index = 31 - position  # position 0 == MSB
            if (wildcard.wildcard >> position) & 1:
                continue  # don't-care bit
            expected = (wildcard.address >> position) & 1
            literals[field.var_indices[bit_index]] = bool(expected)
        return self.manager.cube(literals)

    def ports_pred(self, field: BitVector, ranges: Tuple[PortRange, ...]) -> Bdd:
        """Disjunction of port intervals; empty tuple means any."""
        if not ranges:
            return self.manager.true
        return self.manager.disjoin(field.interval(r.low, r.high) for r in ranges)

    # -- ACL-level predicates ----------------------------------------------------
    def line_pred(self, line: AclLine) -> Bdd:
        """The set of packets matching one ACL line's conditions."""
        acc = self.wildcard_pred(self.src_ip, line.src)
        acc = acc & self.wildcard_pred(self.dst_ip, line.dst)
        if line.protocol is not None:
            acc = acc & self.protocol.eq_const(line.protocol)
        acc = acc & self.ports_pred(self.src_port, line.src_ports)
        acc = acc & self.ports_pred(self.dst_port, line.dst_ports)
        if line.icmp_type is not None:
            acc = acc & self.icmp_type.eq_const(line.icmp_type)
        return acc

    def acl_permit_pred(self, acl: Acl) -> Bdd:
        """The full accepted-packet set of an ACL (first-match composed).

        Used by the monolithic baseline; Campion's SemanticDiff instead
        keeps per-path classes (see ``acl_encoder``).
        """
        from ..model.acl import AclAction

        permitted = self.manager.false
        reach = self.manager.true
        for line in acl.lines:
            fire = reach & self.line_pred(line)
            if line.action is AclAction.PERMIT:
                permitted = permitted | fire
            reach = reach - fire
        if acl.default_action is AclAction.PERMIT:
            permitted = permitted | reach
        return permitted

    # -- decoding ---------------------------------------------------------------
    def decode(self, model: Dict[int, bool]) -> PacketExample:
        """Decode a total model into a concrete packet."""
        return PacketExample(
            src_ip=self.src_ip.value_of(model),
            dst_ip=self.dst_ip.value_of(model),
            protocol=self.protocol.value_of(model),
            src_port=self.src_port.value_of(model),
            dst_port=self.dst_port.value_of(model),
            icmp_type=self.icmp_type.value_of(model),
        )

    def encode_concrete(
        self,
        src_ip: int,
        dst_ip: int,
        protocol: int,
        src_port: int = 0,
        dst_port: int = 0,
        icmp_type: int = 0,
    ) -> Bdd:
        """The singleton set of one concrete packet (testing oracle glue)."""
        return self.manager.conjoin(
            [
                self.src_ip.eq_const(src_ip),
                self.dst_ip.eq_const(dst_ip),
                self.protocol.eq_const(protocol),
                self.src_port.eq_const(src_port),
                self.dst_port.eq_const(dst_port),
                self.icmp_type.eq_const(icmp_type),
            ]
        )
