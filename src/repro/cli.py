"""The ``campion`` command-line interface.

Subcommands:

* ``campion compare A.cfg B.cfg`` — run ConfigDiff on two configuration
  files (dialects auto-detected) and print the localization report.
* ``campion parse A.cfg`` — parse one file and dump a model summary,
  useful for checking feature coverage before comparing.
* ``campion baseline A.cfg B.cfg`` — run the Minesweeper-style
  monolithic check instead (single counterexample, no localization),
  for side-by-side comparison of the two interfaces.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .baseline import monolithic_route_map_check, monolithic_static_route_check
from .core import (
    compare_fleet,
    config_diff,
    render_report,
    render_semantic_difference,
    report_to_json,
)
from .model.device import DeviceConfig
from .parsers import load_config

__all__ = ["main"]


def _summarize(device: DeviceConfig) -> str:
    lines = [
        f"hostname:        {device.hostname}",
        f"vendor:          {device.vendor}",
        f"interfaces:      {len(device.interfaces)}",
        f"static routes:   {len(device.static_routes)}",
        f"prefix lists:    {len(device.prefix_lists)}",
        f"community lists: {len(device.community_lists)}",
        f"route maps:      {len(device.route_maps)}",
        f"ACLs:            {len(device.acls)}",
        f"BGP neighbors:   {len(device.bgp.neighbors) if device.bgp else 0}",
        f"OSPF interfaces: {len(device.ospf.interfaces) if device.ospf else 0}",
    ]
    return "\n".join(lines)


def _cmd_parse(args: argparse.Namespace) -> int:
    device = load_config(args.config, dialect=args.dialect)
    print(_summarize(device))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    start = time.time()
    device1 = load_config(args.config1, dialect=args.dialect)
    device2 = load_config(args.config2, dialect=args.dialect)
    parse_time = time.time() - start
    start = time.time()
    report = config_diff(
        device1, device2, exhaustive_communities=args.exhaustive_communities
    )
    diff_time = time.time() - start
    if args.json:
        print(report_to_json(report))
    else:
        print(render_report(report))
        print()
        print(f"(parse {parse_time:.2f}s, diff {diff_time:.2f}s)")
    return 0 if report.is_equivalent() else 1


def _cmd_baseline(args: argparse.Namespace) -> int:
    device1 = load_config(args.config1, dialect=args.dialect)
    device2 = load_config(args.config2, dialect=args.dialect)
    found = False
    shared_maps = set(device1.route_maps) & set(device2.route_maps)
    for name in sorted(shared_maps):
        counterexample = monolithic_route_map_check(
            device1.route_maps[name],
            device2.route_maps[name],
            device1.hostname,
            device2.hostname,
        )
        if counterexample is not None:
            print(f"route map {name}:")
            print(counterexample.render())
            print()
            found = True
    static = monolithic_static_route_check(device1, device2)
    if static is not None:
        print("static routes:")
        print(static.render())
        found = True
    if not found:
        print("no differences found by the monolithic check")
    return 1 if found else 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from .render import translate

    device = load_config(args.config, dialect=args.dialect)
    result = translate(device, args.target)
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(result.text, end="")
    if result.verified:
        print("verification: translation is behaviorally equivalent", file=sys.stderr)
        return 0
    print("verification: translation DIFFERS from the source:", file=sys.stderr)
    print(render_report(result.report), file=sys.stderr)
    return 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    devices = [load_config(path, dialect=args.dialect) for path in args.configs]
    report = compare_fleet(devices, reference=args.reference, workers=args.workers)
    print(report.render_summary())
    for hostname in report.outliers:
        print(f"\n--- {hostname} vs {report.reference} " + "-" * 40)
        print(render_report(report.reports[hostname]))
    return 0 if not report.outliers else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``campion`` CLI."""
    parser = argparse.ArgumentParser(
        prog="campion",
        description="Debug router configuration differences (SIGCOMM 2021 reproduction)",
    )
    parser.add_argument(
        "--dialect",
        choices=["auto", "cisco", "juniper", "arista"],
        default="auto",
        help="configuration dialect (default: auto-detect)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_parser = subparsers.add_parser("parse", help="parse one configuration")
    parse_parser.add_argument("config")
    parse_parser.set_defaults(func=_cmd_parse)

    compare_parser = subparsers.add_parser(
        "compare", help="find and localize all differences between two configs"
    )
    compare_parser.add_argument("config1")
    compare_parser.add_argument("config2")
    compare_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    compare_parser.add_argument(
        "--exhaustive-communities",
        action="store_true",
        help="localize the community dimension exhaustively (extension)",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    baseline_parser = subparsers.add_parser(
        "baseline", help="Minesweeper-style single-counterexample check"
    )
    baseline_parser.add_argument("config1")
    baseline_parser.add_argument("config2")
    baseline_parser.set_defaults(func=_cmd_baseline)

    fleet_parser = subparsers.add_parser(
        "fleet", help="n-way comparison with outlier detection"
    )
    fleet_parser.add_argument("configs", nargs="+", help="two or more config files")
    fleet_parser.add_argument(
        "--reference",
        default=None,
        help="known-good hostname (default: elect the medoid)",
    )
    fleet_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for the pairwise matrix (default: $CAMPION_WORKERS or 1)",
    )
    fleet_parser.set_defaults(func=_cmd_fleet)

    translate_parser = subparsers.add_parser(
        "translate", help="render a config in the other dialect and verify it"
    )
    translate_parser.add_argument("config")
    translate_parser.add_argument(
        "--target", choices=["cisco", "juniper"], required=True
    )
    translate_parser.add_argument(
        "--output", default=None, help="write the translation here (default: stdout)"
    )
    translate_parser.set_defaults(func=_cmd_translate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
