"""The ``campion`` command-line interface.

Subcommands:

* ``campion compare A.cfg B.cfg`` — run ConfigDiff on two configuration
  files (dialects auto-detected) and print the localization report.
* ``campion parse A.cfg`` — parse one file and dump a model summary,
  useful for checking feature coverage before comparing.
* ``campion baseline A.cfg B.cfg`` — run the Minesweeper-style
  monolithic check instead (single counterexample, no localization),
  for side-by-side comparison of the two interfaces.
* ``campion selfcheck`` — run the differential-testing oracle
  (``repro.oracle``) on seeded generated workloads; any failure prints
  a minimal reproducer with its case seed.
* ``campion cache stats|clear`` — inspect or clear the persistent
  artifact cache; ``parse``/``compare``/``fleet``/``selfcheck`` use it
  by default (``--cache-dir`` overrides the root, ``--no-cache``
  disables it) and print a ``campion: cache: hits=… misses=…`` summary
  line on stderr.
* ``campion serve`` — run the always-on analysis service
  (``repro.service``): an HTTP-JSON job API over the same pipeline
  with a durable journaled queue, retries, backpressure, and graceful
  SIGTERM/SIGINT drain (exit 0 after a clean drain).

Exit codes form a contract for scripting and CI:

* ``0`` — configurations are behaviorally equivalent (full coverage)
* ``1`` — differences found
* ``2`` — usage or parse error (bad flags, unreadable/empty file,
  strict-mode parse failure, duplicate fleet hostnames)
* ``3`` — partial or degraded analysis: the verdict holds only for the
  analyzed components (lenient parsing skipped stanzas, a resource
  budget aborted a component, or fleet pairs failed)

Errors print as clean one-line messages on stderr — never tracebacks;
an unexpected internal error is reported the same way with a request to
file it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import perf
from .baseline import monolithic_route_map_check, monolithic_static_route_check
from .cache import ArtifactCache, resolve_cache_dir
from .core import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    DiffMemo,
    compare_fleet,
    config_diff,
    fleet_report_to_dict,
    render_report,
    render_semantic_difference,
    report_to_json,
)
from .model.device import DeviceConfig
from .model.types import ConfigError
from .parsers import load_config, parse_config

__all__ = ["main"]

EXIT_EQUIVALENT = 0
EXIT_DIFFERENCES = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3


def _fail(message: str) -> int:
    print(f"campion: error: {message}", file=sys.stderr)
    return EXIT_USAGE


#: Counters summarized on stderr after cache-enabled commands.
_CACHE_COUNTERS = (
    "cache.device.hits",
    "cache.device.misses",
    "cache.diff.hits",
    "cache.diff.misses",
    "memo.localization_replays",
    "header_localize.dag_cache_hits",
)


def _open_cache(args: argparse.Namespace):
    """The persistent artifact cache for this invocation (or ``None``
    under ``--no-cache``), plus a counter baseline for the summary."""
    if getattr(args, "no_cache", False):
        return None, {}
    cache = ArtifactCache(resolve_cache_dir(getattr(args, "cache_dir", None)))
    baseline = {
        name: perf.REGISTRY.counters.get(name, 0) for name in _CACHE_COUNTERS
    }
    return cache, baseline


def _cache_note(cache, baseline) -> None:
    """One machine-greppable stderr line: hits/misses this invocation."""
    if cache is None:
        return
    deltas = {
        name: perf.REGISTRY.counters.get(name, 0) - baseline.get(name, 0)
        for name in _CACHE_COUNTERS
    }
    hits = deltas["cache.device.hits"] + deltas["cache.diff.hits"]
    misses = deltas["cache.device.misses"] + deltas["cache.diff.misses"]
    replays = deltas["memo.localization_replays"]
    dag_hits = deltas["header_localize.dag_cache_hits"]
    print(
        f"campion: cache: hits={hits} misses={misses} "
        f"localization_replays={replays} dag_cache_hits={dag_hits} "
        f"dir={cache.root}",
        file=sys.stderr,
    )


def _load(
    args: argparse.Namespace, path: str, cache: Optional[ArtifactCache] = None
) -> DeviceConfig:
    """Load one config honoring ``--strict``/``--lenient``.

    With a cache, an unchanged file (same text/name/dialect/strictness)
    is unpickled instead of re-parsed — fingerprints included.
    """
    if cache is None:
        device = load_config(path, dialect=args.dialect, strict=args.strict)
    else:
        with open(path, "r") as handle:
            text = handle.read()
        device = cache.get_device(text, path, args.dialect, args.strict)
        if device is None:
            device = parse_config(
                text, filename=path, dialect=args.dialect, strict=args.strict
            )
            cache.put_device(text, path, args.dialect, args.strict, device)
    for diagnostic in device.diagnostics:
        print(f"campion: {diagnostic.render()}", file=sys.stderr)
    return device


def _summarize(device: DeviceConfig) -> str:
    lines = [
        f"hostname:        {device.hostname}",
        f"vendor:          {device.vendor}",
        f"interfaces:      {len(device.interfaces)}",
        f"static routes:   {len(device.static_routes)}",
        f"prefix lists:    {len(device.prefix_lists)}",
        f"community lists: {len(device.community_lists)}",
        f"route maps:      {len(device.route_maps)}",
        f"ACLs:            {len(device.acls)}",
        f"BGP neighbors:   {len(device.bgp.neighbors) if device.bgp else 0}",
        f"OSPF interfaces: {len(device.ospf.interfaces) if device.ospf else 0}",
    ]
    return "\n".join(lines)


def _cmd_parse(args: argparse.Namespace) -> int:
    cache, baseline = _open_cache(args)
    device = _load(args, args.config, cache)
    print(_summarize(device))
    _cache_note(cache, baseline)
    return EXIT_PARTIAL if device.parse_degraded() else EXIT_EQUIVALENT


def _cmd_compare(args: argparse.Namespace) -> int:
    cache, baseline = _open_cache(args)
    start = time.time()
    device1 = _load(args, args.config1, cache)
    device2 = _load(args, args.config2, cache)
    parse_time = time.time() - start
    start = time.time()
    report = config_diff(
        device1,
        device2,
        exhaustive_communities=args.exhaustive_communities,
        node_limit=args.node_limit,
        time_budget=args.timeout,
        memo=DiffMemo(cache) if cache is not None else None,
        set_backend=args.set_backend,
    )
    diff_time = time.time() - start
    if args.json:
        print(report_to_json(report))
    else:
        print(render_report(report))
        print()
        print(f"(parse {parse_time:.2f}s, diff {diff_time:.2f}s)")
    _cache_note(cache, baseline)
    if report.is_degraded():
        return EXIT_PARTIAL
    return EXIT_EQUIVALENT if report.is_equivalent() else EXIT_DIFFERENCES


def _cmd_baseline(args: argparse.Namespace) -> int:
    device1 = _load(args, args.config1)
    device2 = _load(args, args.config2)
    found = False
    shared_maps = set(device1.route_maps) & set(device2.route_maps)
    for name in sorted(shared_maps):
        counterexample = monolithic_route_map_check(
            device1.route_maps[name],
            device2.route_maps[name],
            device1.hostname,
            device2.hostname,
        )
        if counterexample is not None:
            print(f"route map {name}:")
            print(counterexample.render())
            print()
            found = True
    static = monolithic_static_route_check(device1, device2)
    if static is not None:
        print("static routes:")
        print(static.render())
        found = True
    if not found:
        print("no differences found by the monolithic check")
    return EXIT_DIFFERENCES if found else EXIT_EQUIVALENT


def _cmd_translate(args: argparse.Namespace) -> int:
    from .render import translate

    device = _load(args, args.config)
    result = translate(device, args.target)
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(result.text, end="")
    if result.verified:
        print("verification: translation is behaviorally equivalent", file=sys.stderr)
        return EXIT_EQUIVALENT
    print("verification: translation DIFFERS from the source:", file=sys.stderr)
    print(render_report(result.report), file=sys.stderr)
    return EXIT_DIFFERENCES


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from .oracle import run_selfcheck

    cache, baseline = _open_cache(args)

    def progress(done: int, total: int) -> None:
        if args.progress and (done % 10 == 0 or done == total):
            print(f"campion: selfcheck {done}/{total} pairs", file=sys.stderr)

    try:
        result = run_selfcheck(
            seed=args.seed,
            pairs=args.pairs,
            on_progress=progress,
            cache=cache,
            set_backend=args.set_backend,
            generators=(
                [name.strip() for name in args.generators.split(",") if name.strip()]
                if args.generators
                else None
            ),
        )
    except ValueError as exc:
        return _fail(str(exc))
    print(result.render())
    _cache_note(cache, baseline)
    return EXIT_EQUIVALENT if result.passed else EXIT_DIFFERENCES


def _cmd_fleet(args: argparse.Namespace) -> int:
    cache, baseline = _open_cache(args)
    devices = [_load(args, path, cache) for path in args.configs]
    try:
        report = compare_fleet(
            devices,
            reference=args.reference,
            workers=args.workers,
            timeout=args.timeout,
            node_limit=args.node_limit,
            memo=DiffMemo(cache) if cache is not None else None,
            set_backend=args.set_backend,
            compress="off" if args.no_compress else args.compress,
        )
    except ValueError as exc:
        # duplicate hostnames, too-few devices, unknown reference
        return _fail(str(exc))
    except RuntimeError as exc:
        # every pairwise comparison failed — no verdict at all
        return _fail(str(exc))
    if args.json:
        import json

        # Timing-free and deterministically ordered: two runs over the
        # same fleet (cold or warm) print byte-identical JSON.
        print(json.dumps(fleet_report_to_dict(report), indent=2))
    else:
        print(report.render_summary())
        if report.symmetry is not None:
            print(report.symmetry.render())
        print()
        print(report.render_coverage())
        for hostname in report.outliers:
            print(f"\n--- {hostname} vs {report.reference} " + "-" * 40)
            print(render_report(report.reports[hostname]))
    _cache_note(cache, baseline)
    if report.is_partial():
        return EXIT_PARTIAL
    return EXIT_DIFFERENCES if report.outliers else EXIT_EQUIVALENT


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import AnalysisService, ServiceConfig
    from .service.app import default_journal_path

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        journal_path=args.journal or default_journal_path(),
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        queue_limit=args.queue_limit,
        max_attempts=args.max_attempts,
        tenant_quota=args.tenant_quota,
        job_concurrency=args.job_concurrency,
        workers=args.workers or 1,
        timeout=args.timeout,
        node_limit=args.node_limit,
        set_backend=args.set_backend,
        drain_grace=args.drain_grace,
    )
    service = AnalysisService(config)
    print(
        f"campion serve: listening on http://{config.host}:{config.port}"
        f" (journal {service.journal.path},"
        f" cache {'disabled' if service.cache is None else service.cache.root})",
        file=sys.stderr,
    )
    asyncio.run(service.serve())
    print("campion serve: drained and stopped", file=sys.stderr)
    return EXIT_EQUIVALENT


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ArtifactCache(resolve_cache_dir(getattr(args, "cache_dir", None)))
    if args.action == "clear":
        removed = cache.clear()
        print(f"cache: removed {removed} artifact(s) from {cache.root}")
        return EXIT_EQUIVALENT
    stats = cache.stats()
    print(f"cache: {stats['root']}")
    for store, numbers in stats["stores"].items():
        line = (
            f"  {store}: {numbers['entries']} entr"
            f"{'y' if numbers['entries'] == 1 else 'ies'}, "
            f"{numbers['bytes']} bytes"
        )
        if "localized" in numbers:
            line += f", {numbers['localized']} localized"
        print(line)
    return EXIT_EQUIVALENT


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``campion`` CLI."""
    parser = argparse.ArgumentParser(
        prog="campion",
        description="Debug router configuration differences (SIGCOMM 2021 reproduction)",
    )
    parser.add_argument(
        "--dialect",
        choices=["auto", "cisco", "juniper", "arista"],
        default="auto",
        help="configuration dialect (default: auto-detect)",
    )
    strictness = parser.add_mutually_exclusive_group()
    strictness.add_argument(
        "--strict",
        action="store_true",
        default=False,
        help="fail on any unparseable stanza (exit 2)",
    )
    strictness.add_argument(
        "--lenient",
        dest="strict",
        action="store_false",
        help="record-and-skip unparseable stanzas (default)",
    )
    parser.add_argument(
        "--set-backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="SemanticDiff set-algebra backend: atomic-predicate bitsets "
        "or the pairwise BDD loop (default: $CAMPION_SET_BACKEND or "
        f"{DEFAULT_BACKEND}; results are identical, only speed differs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact cache root "
        "(default: $CAMPION_CACHE_DIR or ~/.cache/campion)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        default=False,
        help="disable the persistent artifact cache for this invocation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_budget_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-pair wall-clock budget (default: $CAMPION_PAIR_TIMEOUT)",
        )
        subparser.add_argument(
            "--node-limit",
            type=int,
            default=None,
            metavar="NODES",
            help="per-pair BDD node budget (default: unbounded)",
        )

    parse_parser = subparsers.add_parser("parse", help="parse one configuration")
    parse_parser.add_argument("config")
    parse_parser.set_defaults(func=_cmd_parse)

    compare_parser = subparsers.add_parser(
        "compare", help="find and localize all differences between two configs"
    )
    compare_parser.add_argument("config1")
    compare_parser.add_argument("config2")
    compare_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    compare_parser.add_argument(
        "--exhaustive-communities",
        action="store_true",
        help="localize the community dimension exhaustively (extension)",
    )
    add_budget_flags(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    baseline_parser = subparsers.add_parser(
        "baseline", help="Minesweeper-style single-counterexample check"
    )
    baseline_parser.add_argument("config1")
    baseline_parser.add_argument("config2")
    baseline_parser.set_defaults(func=_cmd_baseline)

    fleet_parser = subparsers.add_parser(
        "fleet", help="n-way comparison with outlier detection"
    )
    fleet_parser.add_argument("configs", nargs="+", help="two or more config files")
    fleet_parser.add_argument(
        "--reference",
        default=None,
        help="known-good hostname (default: elect the medoid)",
    )
    fleet_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for the pairwise matrix (default: $CAMPION_WORKERS or 1)",
    )
    fleet_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable, timing-free output (byte-identical across runs)",
    )
    fleet_parser.add_argument(
        "--compress",
        choices=["off", "exact", "near"],
        default=None,
        help="matrix symmetry compression mode: 'exact' collapses "
        "byte-identical devices, 'near' also collapses devices equal "
        "modulo rewritable literals (loopbacks, router-ids, BGP peers) "
        "(default: $CAMPION_FLEET_COMPRESS or near; the report is "
        "identical in every mode, compression only skips redundant pairs)",
    )
    fleet_parser.add_argument(
        "--no-compress",
        action="store_true",
        default=False,
        help="shorthand for --compress off",
    )
    add_budget_flags(fleet_parser)
    fleet_parser.set_defaults(func=_cmd_fleet)

    selfcheck_parser = subparsers.add_parser(
        "selfcheck",
        help="differential-test the analysis pipeline against a brute-force oracle",
    )
    selfcheck_parser.add_argument(
        "--seed", type=int, default=0, help="run seed (default: 0)"
    )
    selfcheck_parser.add_argument(
        "--pairs",
        type=int,
        default=50,
        help="number of generated component pairs to check (default: 50)",
    )
    selfcheck_parser.add_argument(
        "--progress",
        action="store_true",
        help="print progress to stderr every 10 pairs",
    )
    selfcheck_parser.add_argument(
        "--generators",
        default=None,
        metavar="NAME[,NAME...]",
        help="restrict to these case generators (e.g. 'symmetry' or "
        "'near-symmetry' for the compression cross-checks only; "
        "default: round-robin over all)",
    )
    selfcheck_parser.set_defaults(func=_cmd_selfcheck)

    translate_parser = subparsers.add_parser(
        "translate", help="render a config in the other dialect and verify it"
    )
    translate_parser.add_argument("config")
    translate_parser.add_argument(
        "--target", choices=["cisco", "juniper"], required=True
    )
    translate_parser.add_argument(
        "--output", default=None, help="write the translation here (default: stdout)"
    )
    translate_parser.set_defaults(func=_cmd_translate)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the always-on analysis service (HTTP-JSON job API)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (default: 8642)"
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="job journal file (default: $CAMPION_JOURNAL or "
        "<cache root>/service/journal.jsonl)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max queued+running jobs before 429 backpressure (default: 64)",
    )
    serve_parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per job before dead-lettering (default: 3)",
    )
    serve_parser.add_argument(
        "--tenant-quota",
        type=int,
        default=1,
        help="concurrent running jobs per tenant (default: 1)",
    )
    serve_parser.add_argument(
        "--job-concurrency",
        type=int,
        default=2,
        help="jobs executed concurrently across tenants (default: 2)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes per job's pairwise matrix (default: 1)",
    )
    serve_parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds to let running jobs finish on SIGTERM (default: 30)",
    )
    add_budget_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    cache_parser.add_argument(
        "action", choices=["stats", "clear"], help="what to do with the cache"
    )
    cache_parser.set_defaults(func=_cmd_cache)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        return _fail(str(exc))
    except OSError as exc:
        name = getattr(exc, "filename", None)
        detail = exc.strerror or str(exc)
        return _fail(f"{name}: {detail}" if name else detail)
    except KeyboardInterrupt:
        print("campion: interrupted", file=sys.stderr)
        return 130
    except Exception as exc:  # noqa: BLE001 - last-resort clean reporting
        return _fail(
            f"internal error ({type(exc).__name__}: {exc}); please report this"
        )


if __name__ == "__main__":
    sys.exit(main())
