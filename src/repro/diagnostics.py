"""Structured diagnostics for degraded-but-useful analysis runs.

Campion's value is auditing *real* operator configurations (§5), which
are routinely partially unparseable: a vendor feature outside Table 1,
a typo'd stanza, a dialect quirk.  A tool that dies on the first bad
line never reaches the bugs it was pointed at.  This module is the
shared vocabulary for degrading per-component instead of globally:

* :class:`Diagnostic` — one structured record of something that was
  skipped, with severity, file/line provenance (a
  :class:`~repro.model.types.SourceSpan`) and a human reason.
* :class:`DiagnosticSink` — the accumulator parsers and analyses write
  into.  In *strict* mode an error-severity diagnostic raises
  :class:`~repro.model.types.ConfigError` immediately (the historical
  fail-fast behavior); in *lenient* mode (the default for the CLI) it is
  recorded and the caller skips the offending construct, keeping line
  provenance so reports can flag reduced coverage.

The severity split matters for exit codes: ``WARNING`` means "construct
outside the modeled feature set, ignored by design" (Campion's §5.1
behavior), ``ERROR`` means "construct we *should* model but could not
parse" — an error-bearing run is *degraded* and the CLI reports it with
exit code 3 instead of silently claiming equivalence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .model.types import ConfigError, SourceSpan

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticSink",
]


class Severity(enum.Enum):
    """How much a skipped construct undermines the analysis verdict."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One record-and-skip event with full provenance."""

    severity: Severity
    reason: str
    span: SourceSpan = field(default_factory=SourceSpan)
    component: str = ""  # e.g. "route-map POL", "" when not attributable

    def render(self) -> str:
        """One-line human rendering: ``file:line: severity: reason``."""
        location = self.span.filename
        if self.span.start_line:
            location += f":{self.span.start_line}"
        parts = [location, self.severity.value, self.reason]
        if self.component:
            parts[2] = f"{self.reason} ({self.component})"
        return ": ".join(parts)

    def to_dict(self) -> dict:
        """JSON-compatible form for serialized reports."""
        return {
            "severity": self.severity.value,
            "reason": self.reason,
            "component": self.component,
            "file": self.span.filename,
            "line": self.span.start_line or None,
        }


class DiagnosticSink:
    """Accumulates diagnostics; raises instead when ``strict`` is set.

    One sink per parsed file (or per analysis run).  The sink is the
    single decision point for strict-vs-lenient so parsers never need
    ``if strict`` branches: they call :meth:`error` and either get an
    exception (strict) or a recorded diagnostic plus permission to skip
    (lenient).
    """

    def __init__(self, strict: bool = False, filename: str = "<config>"):
        self.strict = strict
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []

    # -- recording ---------------------------------------------------------
    def warning(
        self, reason: str, span: Optional[SourceSpan] = None, component: str = ""
    ) -> None:
        """Record an ignored-by-design construct (never raises)."""
        self.diagnostics.append(
            Diagnostic(
                severity=Severity.WARNING,
                reason=reason,
                span=span if span is not None else SourceSpan(filename=self.filename),
                component=component,
            )
        )

    def error(
        self, reason: str, span: Optional[SourceSpan] = None, component: str = ""
    ) -> None:
        """Record an unparseable construct, or raise in strict mode."""
        span = span if span is not None else SourceSpan(filename=self.filename)
        if self.strict:
            location = span.filename
            if span.start_line:
                location += f":{span.start_line}"
            raise ConfigError(f"{location}: {reason}")
        self.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR, reason=reason, span=span, component=component
            )
        )

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Absorb another sink's records (e.g. sub-parser into parent)."""
        self.diagnostics.extend(diagnostics)

    # -- queries -----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity records (the run is degraded when non-empty)."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity records."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def is_degraded(self) -> bool:
        """Whether any error-severity diagnostic was recorded."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def render_summary(self) -> str:
        """All diagnostics, one per line, errors first."""
        ordered = self.errors + self.warnings
        return "\n".join(d.render() for d in ordered)
