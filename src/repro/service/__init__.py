"""Always-on analysis service: supervised job engine over the pipeline.

The batch CLI (``campion fleet``) re-ran the whole pipeline per
invocation; this package wraps the same incremental substrate —
content-addressed parse cache, :class:`~repro.core.memo.DiffMemo`,
process-parallel :func:`~repro.core.fleet.compare_fleet` — in a
long-running daemon (``campion serve``) so config pushes cost only the
changed pairs.  Robustness is the first-class design axis:

* :mod:`repro.service.journal` — crash-safe append-only JSONL journal
  with torn-tail tolerance and atomic compaction.
* :mod:`repro.service.queue` — durable job queue (every transition
  journaled), per-job retry with jittered exponential backoff, a
  dead-letter state after ``max_attempts``, and restart recovery of
  in-flight jobs.
* :mod:`repro.service.supervisor` — runs jobs through the pipeline,
  quarantines worker-crashed pairs with structured diagnostics, and a
  circuit breaker that degrades to serial in-process execution while
  the worker pool keeps dying.
* :mod:`repro.service.api` — minimal stdlib ``asyncio`` HTTP/1.1
  JSON API (submit fleets, poll jobs, ``/healthz``/``/readyz``).
* :mod:`repro.service.app` — the daemon: admission control (bounded
  queue → HTTP 429, per-tenant cache namespaces + concurrency quotas),
  SIGTERM/SIGINT drain, and the in-thread harness used by tests, the
  oracle, and benchmarks.

Everything is stdlib-only; no new dependencies.
"""

from .app import AnalysisService, ServiceConfig, ServiceThread
from .journal import Journal
from .queue import Job, JobQueue, QueueFull
from .supervisor import CircuitBreaker, Supervisor

__all__ = [
    "AnalysisService",
    "ServiceConfig",
    "ServiceThread",
    "Journal",
    "Job",
    "JobQueue",
    "QueueFull",
    "CircuitBreaker",
    "Supervisor",
]
