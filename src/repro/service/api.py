"""Minimal stdlib ``asyncio`` HTTP/1.1 JSON API for the daemon.

Hand-rolled on :func:`asyncio.start_server` — no new dependencies.
One request per connection (``Connection: close``), JSON bodies both
ways, bounded request size (413 beyond ``max_body``).  Routing is a
flat table handed in by :class:`~repro.service.app.AnalysisService`;
this module knows HTTP, not jobs.

Endpoints (wired by the app):

* ``POST /v1/fleet``     — submit a fleet analysis job (202), 400 on a
  malformed body, 429 when the queue is full (with ``Retry-After``),
  503 while draining.
* ``GET /v1/jobs/<id>``  — job state; the full result document once
  ``done``.
* ``GET /v1/jobs``       — all job summaries.
* ``GET /healthz``       — liveness + queue/breaker/cache/perf gauges
  (200 while the process runs, even when degraded).
* ``GET /readyz``        — admission: 200 iff a new job would be
  accepted right now, else 503.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, Optional, Tuple

from .. import perf

__all__ = ["HttpServer", "JsonResponse"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: (status, body, extra headers)
JsonResponse = Tuple[int, Dict, Dict]

#: handler(method, path, body) -> JsonResponse
Handler = Callable[[str, str, Optional[Dict]], Awaitable[JsonResponse]]


class HttpServer:
    """One-shot-connection HTTP/1.1 JSON front end."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = 8 * 1024 * 1024,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port
        )
        # Port 0 means "pick one"; publish what the kernel chose.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- wire handling -------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body, extra = await self._handle_one(reader)
            await self._write_response(writer, status, body, extra)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception:  # noqa: BLE001 - the daemon must not die here
            perf.add("service.api.errors")
            try:
                await self._write_response(
                    writer, 500, {"error": "internal error"}, {}
                )
            except Exception:  # noqa: BLE001 - already broken
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader
    ) -> JsonResponse:
        perf.add("service.api.requests")
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (asyncio.LimitOverrunError, asyncio.TimeoutError):
            return 400, {"error": "malformed or slow request head"}, {}
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}, {}
        method, target, _version = parts
        headers = {}
        for raw in header_block.decode("latin-1").split("\r\n"):
            name, separator, value = raw.partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return 400, {"error": "bad Content-Length"}, {}
        if length < 0:
            return 400, {"error": "bad Content-Length"}, {}
        if length > self.max_body:
            return (
                413,
                {"error": f"body exceeds {self.max_body} bytes"},
                {},
            )
        body: Optional[Dict] = None
        if length:
            try:
                raw_body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=60.0
                )
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                return 400, {"error": "truncated request body"}, {}
            try:
                parsed = json.loads(raw_body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return 400, {"error": "request body is not valid JSON"}, {}
            if not isinstance(parsed, dict):
                return 400, {"error": "request body must be a JSON object"}, {}
            body = parsed
        path = target.split("?", 1)[0]
        return await self.handler(method.upper(), path, body)

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict,
        extra_headers: Dict,
    ) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in extra_headers.items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n")
        writer.write(payload)
        await writer.drain()
