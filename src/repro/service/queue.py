"""Durable job queue: journaled transitions, retries, dead-lettering.

Job lifecycle::

            submit            claim              complete
    (new) ────────► queued ────────► running ─────────────► done
                      ▲                │ fail(transient)
                      │   attempts <   │
                      └── max_attempts ┤ (backoff delay)
                                       │ attempts == max_attempts
                                       ├─────────────────► dead-letter
                                       │ fail(permanent)
                                       └─────────────────► failed

Every transition is journaled *before* it takes effect in memory, so a
``kill -9`` at any point leaves the journal describing a job that is
either in its previous state or its next one — never lost.  On restart
:meth:`JobQueue.recover` folds the journal: jobs found ``running``
(the daemon died mid-analysis) are re-queued with their attempt count
intact, or dead-lettered if the crash burned their last attempt.

Retries use jittered exponential backoff (``not_before`` gate on
claim).  Transient failures (timeouts, crashed workers, internal
errors) retry; permanent failures (malformed payloads, duplicate
hostnames — errors a retry cannot fix) go straight to ``failed``.

Admission control: the queue is bounded (``limit``) over non-terminal
jobs; :meth:`submit` raises :class:`QueueFull` so the HTTP layer can
answer 429.  All methods are thread-safe — the asyncio loop claims and
settles while analysis runs in executor threads.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import perf
from .journal import Journal

__all__ = [
    "Job",
    "JobQueue",
    "QueueFull",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "DEAD_LETTER",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
DEAD_LETTER = "dead-letter"

TERMINAL_STATES = frozenset({DONE, FAILED, DEAD_LETTER})

#: Backoff schedule: base * 2^(attempts-1), jittered, capped.
_BACKOFF_BASE = 0.25
_BACKOFF_CAP = 30.0

#: Terminal jobs kept in memory/journal after compaction (newest win).
_TERMINAL_KEEP = 256


class QueueFull(Exception):
    """The bounded queue refused a new job (HTTP 429 upstream)."""


@dataclass
class Job:
    """One analysis request and its full lifecycle state."""

    id: str
    tenant: str
    payload: Dict
    state: str = QUEUED
    attempts: int = 0
    max_attempts: int = 3
    error: Optional[str] = None
    result: Optional[Dict] = None
    not_before: float = 0.0
    seq: int = 0

    def to_record(self) -> Dict:
        """The journal record for the job's current state."""
        return {
            "type": "job",
            "id": self.id,
            "tenant": self.tenant,
            "payload": self.payload,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "result": self.result,
            "seq": self.seq,
        }

    def summary(self) -> Dict:
        """The wire-format job view (results fetched separately)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
        }

    @classmethod
    def from_record(cls, record: Dict) -> Optional["Job"]:
        """Rebuild a job from a journal record (None if not a job)."""
        if record.get("type") != "job" or not record.get("id"):
            return None
        return cls(
            id=str(record["id"]),
            tenant=str(record.get("tenant") or "default"),
            payload=record.get("payload") or {},
            state=str(record.get("state") or QUEUED),
            attempts=int(record.get("attempts") or 0),
            max_attempts=int(record.get("max_attempts") or 3),
            error=record.get("error"),
            result=record.get("result"),
            seq=int(record.get("seq") or 0),
        )


class JobQueue:
    """Bounded, journal-backed FIFO of analysis jobs."""

    def __init__(
        self,
        journal: Journal,
        limit: int = 64,
        max_attempts: int = 3,
        tenant_quota: int = 1,
    ) -> None:
        self.journal = journal
        self.limit = limit
        self.max_attempts = max_attempts
        self.tenant_quota = tenant_quota
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    # -- admission -----------------------------------------------------------
    def submit(
        self,
        payload: Dict,
        tenant: str = "default",
        max_attempts: Optional[int] = None,
    ) -> Job:
        """Journal and enqueue a new job; raises :class:`QueueFull`."""
        with self._lock:
            if self._depth_locked() >= self.limit:
                perf.add("service.queue.rejected")
                raise QueueFull(
                    f"queue depth {self._depth_locked()} at limit {self.limit}"
                )
            job = Job(
                id=uuid.uuid4().hex[:12],
                tenant=tenant,
                payload=payload,
                max_attempts=max_attempts or self.max_attempts,
                seq=next(self._seq),
            )
            self.journal.append(job.to_record())
            self._jobs[job.id] = job
            perf.add("service.jobs.submitted")
            return job

    # -- scheduling ----------------------------------------------------------
    def claim(self, now: Optional[float] = None) -> Optional[Job]:
        """The oldest runnable queued job, moved to ``running``.

        Respects per-job backoff gates (``not_before``) and the
        per-tenant concurrency quota (a tenant with ``tenant_quota``
        jobs already running is skipped — one tenant's burst cannot
        monopolize the workers).  The attempt counter increments at
        claim time, so a crash mid-run burns the attempt — a poison
        job cannot loop forever through recovery.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            running_per_tenant: Dict[str, int] = {}
            for job in self._jobs.values():
                if job.state == RUNNING:
                    running_per_tenant[job.tenant] = (
                        running_per_tenant.get(job.tenant, 0) + 1
                    )
            candidates = sorted(
                (
                    job
                    for job in self._jobs.values()
                    if job.state == QUEUED and job.not_before <= now
                ),
                key=lambda job: job.seq,
            )
            for job in candidates:
                if running_per_tenant.get(job.tenant, 0) >= self.tenant_quota:
                    continue
                job.state = RUNNING
                job.attempts += 1
                self.journal.append(job.to_record())
                return job
            return None

    def next_wakeup(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the earliest backoff gate opens (None: nothing
        is waiting on a gate)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            gates = [
                job.not_before - now
                for job in self._jobs.values()
                if job.state == QUEUED and job.not_before > now
            ]
        return min(gates) if gates else None

    # -- settlement ----------------------------------------------------------
    def complete(self, job: Job, result: Dict) -> None:
        """Settle ``job`` as done, journaling its result document."""
        with self._lock:
            job.state = DONE
            job.error = None
            job.result = result
            self.journal.append(job.to_record())
            perf.add("service.jobs.done")

    def fail(self, job: Job, error: str, permanent: bool = False) -> None:
        """Settle a failed attempt: retry, fail, or dead-letter."""
        with self._lock:
            job.error = error
            if permanent:
                job.state = FAILED
                perf.add("service.jobs.failed")
            elif job.attempts >= job.max_attempts:
                job.state = DEAD_LETTER
                perf.add("service.jobs.dead_letter")
            else:
                job.state = QUEUED
                delay = min(
                    _BACKOFF_CAP,
                    _BACKOFF_BASE * (2 ** (job.attempts - 1)),
                )
                job.not_before = time.monotonic() + delay * (
                    1.0 + random.random()
                )
                perf.add("service.jobs.retries")
            self.journal.append(job.to_record())

    # -- introspection -------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job in submission (seq) order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    def depth(self) -> int:
        """Non-terminal jobs (the bound :meth:`submit` enforces)."""
        with self._lock:
            return self._depth_locked()

    def counts(self) -> Dict[str, int]:
        """Job tally per state, for /healthz."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def _depth_locked(self) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.state not in TERMINAL_STATES
        )

    # -- durability ----------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Fold the journal back into memory after a restart.

        The latest record per job id wins.  Jobs recorded ``running``
        died with the previous daemon: re-queued (attempt already
        burned at claim) or dead-lettered if that was their last
        attempt.  Returns counters describing what happened.
        """
        stats = {"replayed": 0, "requeued": 0, "dead_lettered": 0}
        with self._lock:
            merged: Dict[str, Job] = {}
            for record in self.journal.replay():
                job = Job.from_record(record)
                if job is not None:
                    merged[job.id] = job
            max_seq = 0
            for job in merged.values():
                stats["replayed"] += 1
                max_seq = max(max_seq, job.seq)
                if job.state == RUNNING:
                    if job.attempts >= job.max_attempts:
                        job.state = DEAD_LETTER
                        job.error = (
                            "daemon restarted while the job was running on"
                            " its final attempt"
                        )
                        stats["dead_lettered"] += 1
                        perf.add("service.jobs.dead_letter")
                    else:
                        job.state = QUEUED
                        job.not_before = 0.0
                        stats["requeued"] += 1
                        perf.add("service.jobs.recovered")
                self._jobs[job.id] = job
            self._seq = itertools.count(max_seq + 1)
            self._compact_locked()
        return stats

    def compact(self) -> None:
        """Rewrite the journal to one record per job (see recover)."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        """One record per job; oldest terminal jobs beyond the keep
        window are dropped so the journal stays bounded."""
        jobs = sorted(self._jobs.values(), key=lambda job: job.seq)
        terminal = [job for job in jobs if job.state in TERMINAL_STATES]
        drop = {
            job.id for job in terminal[: max(0, len(terminal) - _TERMINAL_KEEP)]
        }
        for job_id in drop:
            del self._jobs[job_id]
        self.journal.compact(
            job.to_record() for job in jobs if job.id not in drop
        )
