"""Job execution under supervision: crash quarantine + circuit breaker.

The supervisor is the bridge between a queued job payload (config
texts + options) and the analysis pipeline.  One job = parse every
config (through the tenant's cache namespace) and run
:func:`~repro.core.fleet.compare_fleet` with a
:class:`~repro.core.memo.DiffMemo` in front, so a warm re-push only
analyzes changed pairs.

Worker death is handled at two levels.  :mod:`repro.core.parallel`
already classifies a died worker as a per-pair ``crashed`` outcome
(respawning the pool with backoff) and retries it serially in-parent;
a pair that *still* shows a ``worker-crashed`` diagnostic lands in
``FleetReport.failed_pairs`` and is surfaced by the supervisor as a
structured quarantine entry on the job result — the job itself
succeeds with the surviving pairs.  On top of that, a circuit breaker
watches for *persistent* pool death across jobs: after
``crash_threshold`` consecutive crash-affected jobs it opens and
degrades execution to serial in-process workers (``workers=1`` — no
pool to kill), probing parallel execution again (half-open) after a
jittered, doubling cooldown.

Error classification mirrors the CLI exit-code contract:
:class:`~repro.model.types.ConfigError` / :class:`ValueError` /
:class:`RuntimeError` from the pipeline are *permanent* (a retry
cannot fix a malformed payload or duplicate hostnames); anything else
is transient and eligible for retry.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from .. import perf
from ..cache import ArtifactCache
from ..core import DiffMemo, compare_fleet, fleet_report_to_dict
from ..model.types import ConfigError
from ..parsers import parse_config

__all__ = ["CircuitBreaker", "Supervisor", "JobError"]

_CRASH_MARKER = "worker-crashed"


class JobError(Exception):
    """A job failed; ``permanent`` decides retry vs. failed."""

    def __init__(self, message: str, permanent: bool) -> None:
        super().__init__(message)
        self.permanent = permanent


class CircuitBreaker:
    """closed → open (serial) → half-open (probe) → closed.

    Thread-safe; ``decide_workers`` is consulted before every job and
    ``record`` after it, so state advances even when jobs overlap.
    """

    def __init__(
        self,
        crash_threshold: int = 2,
        cooldown: float = 5.0,
        max_cooldown: float = 300.0,
    ) -> None:
        self.crash_threshold = crash_threshold
        self.base_cooldown = cooldown
        self.max_cooldown = max_cooldown
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_crashes = 0
        self._open_until = 0.0
        self._cooldown = cooldown
        self._probing = False

    @property
    def state(self) -> str:
        """Current breaker state: closed, open, or half-open."""
        with self._lock:
            return self._state

    def decide_workers(self, requested: int) -> int:
        """Worker count for the next job under the current state."""
        if requested <= 1:
            return requested
        with self._lock:
            if self._state == "closed":
                return requested
            now = time.monotonic()
            if self._state == "open" and now >= self._open_until:
                self._state = "half-open"
            if self._state == "half-open" and not self._probing:
                # One probe job gets the pool back; the rest stay
                # serial until the probe reports success.
                self._probing = True
                return requested
            return 1

    def record(self, crashed: bool, parallel_job: bool) -> None:
        """Account one finished job's crash evidence."""
        with self._lock:
            if crashed:
                self._consecutive_crashes += 1
                perf.add("service.breaker.crash_jobs")
                if self._state == "half-open":
                    # The probe died too: back to open, longer cooldown.
                    self._probing = False
                    self._trip_locked()
                elif (
                    self._state == "closed"
                    and self._consecutive_crashes >= self.crash_threshold
                ):
                    self._trip_locked()
            else:
                self._consecutive_crashes = 0
                if self._state == "half-open" and parallel_job:
                    # Probe succeeded: pool is healthy again.
                    self._state = "closed"
                    self._probing = False
                    self._cooldown = self.base_cooldown
                    perf.add("service.breaker.closes")

    def _trip_locked(self) -> None:
        self._state = "open"
        self._open_until = time.monotonic() + self._cooldown * (
            1.0 + random.random()
        )
        self._cooldown = min(self.max_cooldown, self._cooldown * 2)
        perf.add("service.breaker.trips")

    def snapshot(self) -> Dict:
        """State, crash streak, and cooldown, for /healthz."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_crash_jobs": self._consecutive_crashes,
                "cooldown_seconds": self._cooldown,
            }


class Supervisor:
    """Executes job payloads through the pipeline, supervised."""

    def __init__(
        self,
        cache: Optional[ArtifactCache],
        workers: int = 1,
        timeout: Optional[float] = None,
        node_limit: Optional[int] = None,
        set_backend: Optional[str] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.cache = cache
        self.workers = workers
        self.timeout = timeout
        self.node_limit = node_limit
        self.set_backend = set_backend
        self.breaker = breaker or CircuitBreaker()

    # -- payload -------------------------------------------------------------
    @staticmethod
    def validate_payload(payload: Dict) -> List[Tuple[str, str]]:
        """``(filename, text)`` per config, or :class:`JobError`.

        Validation failures are *permanent* — the same payload will
        fail the same way on every retry.
        """
        configs = payload.get("configs")
        if not isinstance(configs, list) or len(configs) < 2:
            raise JobError(
                "payload must carry a 'configs' list of at least two"
                " {name, text} objects",
                permanent=True,
            )
        pairs: List[Tuple[str, str]] = []
        for position, config in enumerate(configs):
            if not isinstance(config, dict):
                raise JobError(
                    f"configs[{position}] is not an object", permanent=True
                )
            text = config.get("text")
            if not isinstance(text, str) or not text.strip():
                raise JobError(
                    f"configs[{position}] has no config text", permanent=True
                )
            name = config.get("name")
            if not isinstance(name, str) or not name:
                name = f"config-{position}"
            pairs.append((name, text))
        return pairs

    # -- execution -----------------------------------------------------------
    def run_job(self, payload: Dict, tenant_cache: Optional[ArtifactCache]) -> Dict:
        """Run one fleet analysis; blocking (call from a worker thread).

        Returns the job result document: the timing-free serialized
        fleet report plus supervision metadata (quarantined pairs,
        execution mode, cache/memo deltas for warm-push verification).
        Raises :class:`JobError` with a permanence classification on
        failure.
        """
        configs = self.validate_payload(payload)
        cache = tenant_cache if tenant_cache is not None else self.cache
        requested = int(payload.get("workers") or self.workers)
        effective_workers = self.breaker.decide_workers(requested)
        if effective_workers < requested:
            perf.add("service.jobs.degraded_serial")
        counter_base = {
            name: perf.REGISTRY.counters.get(name, 0)
            for name in (
                "cache.device.hits",
                "cache.diff.hits",
                "memo.hits",
                "memo.misses",
                "memo.localization_replays",
                "header_localize.dag_cache_hits",
                "parallel.worker_crashes",
                "parallel.pool_respawns",
            )
        }
        crashed = False
        try:
            devices = [
                self._parse(name, text, payload, cache)
                for name, text in configs
            ]
            report = compare_fleet(
                devices,
                reference=payload.get("reference"),
                exhaustive_communities=bool(
                    payload.get("exhaustive_communities", False)
                ),
                workers=effective_workers,
                timeout=self._float_option(payload, "timeout", self.timeout),
                node_limit=self._int_option(
                    payload, "node_limit", self.node_limit
                ),
                memo=DiffMemo(cache) if cache is not None else None,
                set_backend=payload.get("set_backend") or self.set_backend,
                compress=self._compress_option(payload, "compress", None),
            )
        except JobError:
            raise
        except ConfigError as exc:
            raise JobError(f"parse error: {exc}", permanent=True)
        except (ValueError, RuntimeError) as exc:
            # Duplicate hostnames / bad reference / all pairs failed:
            # deterministic for this payload — retry cannot help.
            raise JobError(str(exc), permanent=True)
        except Exception as exc:  # noqa: BLE001 - transient by default
            raise JobError(
                f"internal error ({type(exc).__name__}: {exc})",
                permanent=False,
            )
        finally:
            deltas = {
                name: perf.REGISTRY.counters.get(name, 0) - base
                for name, base in counter_base.items()
            }
            crashed = deltas["parallel.worker_crashes"] > 0
            self.breaker.record(
                crashed=crashed, parallel_job=effective_workers > 1
            )
        quarantined = {
            f"{first}<->{second}": cause
            for (first, second), cause in report.failed_pairs.items()
            if _CRASH_MARKER in cause
        }
        if quarantined:
            perf.add("service.jobs.quarantined_pairs", len(quarantined))
        # Symmetry-compression counters: how much of the matrix phase
        # the fingerprint equivalence classes let this job skip.  Kept
        # out of the serialized report (like timings) and surfaced here
        # instead, alongside the other supervision metadata.
        if report.symmetry is not None:
            symmetry = {
                "compressed": True,
                "mode": report.symmetry.mode,
                "devices": report.symmetry.devices,
                "classes": report.symmetry.classes,
                "matrix_pairs": report.symmetry.total_pairs,
                "analyzed_pairs": report.symmetry.analyzed_pairs,
                "expanded_pairs": report.symmetry.expanded_pairs,
                "fallback_pairs": report.symmetry.fallback_pairs,
            }
            perf.add(
                "service.jobs.pairs_expanded", report.symmetry.expanded_pairs
            )
            if report.symmetry.fallback_pairs:
                perf.add(
                    "service.jobs.near_fallback_pairs",
                    report.symmetry.fallback_pairs,
                )
        else:
            symmetry = {"compressed": False}
        return {
            "report": fleet_report_to_dict(report),
            "notes": list(report.notes),
            "symmetry": symmetry,
            "supervision": {
                "workers": effective_workers,
                "requested_workers": requested,
                "mode": "parallel" if effective_workers > 1 else "serial",
                "worker_crashes": deltas["parallel.worker_crashes"],
                "pool_respawns": deltas["parallel.pool_respawns"],
                "quarantined_pairs": quarantined,
            },
            "cache": {
                "device_hits": deltas["cache.device.hits"],
                "diff_hits": deltas["cache.diff.hits"],
                "memo_hits": deltas["memo.hits"],
                "memo_misses": deltas["memo.misses"],
                "localization_replays": deltas["memo.localization_replays"],
                "dag_cache_hits": deltas["header_localize.dag_cache_hits"],
            },
        }

    def _parse(
        self,
        name: str,
        text: str,
        payload: Dict,
        cache: Optional[ArtifactCache],
    ):
        dialect = payload.get("dialect") or "auto"
        strict = bool(payload.get("strict", False))
        if cache is not None:
            device = cache.get_device(text, name, dialect, strict)
            if device is not None:
                return device
        device = parse_config(
            text, filename=name, dialect=dialect, strict=strict
        )
        if cache is not None:
            cache.put_device(text, name, dialect, strict, device)
        return device

    @staticmethod
    def _float_option(payload: Dict, key: str, default):
        value = payload.get(key)
        if value is None:
            return default
        try:
            return float(value)
        except (TypeError, ValueError):
            raise JobError(f"option {key!r} is not a number", permanent=True)

    @staticmethod
    def _int_option(payload: Dict, key: str, default):
        value = payload.get(key)
        if value is None:
            return default
        try:
            return int(value)
        except (TypeError, ValueError):
            raise JobError(f"option {key!r} is not an integer", permanent=True)

    @staticmethod
    def _bool_option(payload: Dict, key: str, default):
        value = payload.get(key)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        raise JobError(f"option {key!r} is not a boolean", permanent=True)

    @staticmethod
    def _compress_option(payload: Dict, key: str, default):
        # Booleans keep their historical meaning (True = exact,
        # False = off); strings select a mode by name.
        value = payload.get(key)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.strip().lower() in (
            "off",
            "exact",
            "near",
        ):
            return value.strip().lower()
        raise JobError(
            f"option {key!r} must be a boolean or one of"
            " 'off', 'exact', 'near'",
            permanent=True,
        )
