"""The analysis daemon: lifecycle, admission control, job runners.

:class:`AnalysisService` wires the journal-backed queue, the
supervisor, and the HTTP front end into one ``asyncio`` process:

* **Startup** replays the journal (:meth:`JobQueue.recover`) — jobs
  the previous daemon died holding are re-queued or dead-lettered —
  then binds the API socket and starts ``job_concurrency`` runner
  coroutines.
* **Runners** claim queued jobs (per-tenant quotas + backoff gates
  enforced by the queue) and execute them on a thread pool via
  :meth:`Supervisor.run_job`, each tenant against its own cache
  namespace.  Blocking analysis never runs on the event loop.
* **Admission** is bounded: a full queue answers 429 with
  ``Retry-After``; ``/readyz`` flips to 503 the moment a new job
  would be refused, while ``/healthz`` stays 200 for liveness even
  when degraded.
* **Shutdown** (SIGTERM/SIGINT, or :meth:`request_shutdown`) drains:
  new work is refused (503), running jobs get ``drain_grace`` seconds
  to finish, the journal is compacted, and the process exits 0.  A job
  still running when the grace expires stays ``running`` in the
  journal and is recovered by the next daemon.

:class:`ServiceThread` hosts the same service on a background thread
with an ephemeral port — the harness used by the test suite, the
oracle's ``service`` generator, and ``bench_service.py``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import pathlib
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from .. import perf
from ..cache import ArtifactCache, resolve_cache_dir
from .api import HttpServer, JsonResponse
from .journal import Journal
from .queue import JobQueue, QueueFull
from .supervisor import CircuitBreaker, JobError, Supervisor

__all__ = ["ServiceConfig", "AnalysisService", "ServiceThread"]

JOURNAL_ENV = "CAMPION_JOURNAL"


def default_journal_path() -> pathlib.Path:
    """``$CAMPION_JOURNAL`` or ``<cache root>/service/journal.jsonl``."""
    env = os.environ.get(JOURNAL_ENV, "").strip()
    if env:
        return pathlib.Path(env)
    return resolve_cache_dir() / "service" / "journal.jsonl"


@dataclass
class ServiceConfig:
    """Everything the daemon needs, resolved before startup."""

    host: str = "127.0.0.1"
    port: int = 8642
    journal_path: Optional[os.PathLike] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    queue_limit: int = 64
    max_attempts: int = 3
    tenant_quota: int = 1
    job_concurrency: int = 2
    workers: int = 1
    timeout: Optional[float] = None
    node_limit: Optional[int] = None
    set_backend: Optional[str] = None
    drain_grace: float = 30.0
    max_body: int = 8 * 1024 * 1024


class AnalysisService:
    """One daemon process: queue + supervisor + HTTP API + lifecycle."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        journal_path = self.config.journal_path or default_journal_path()
        self.journal = Journal(journal_path)
        self.queue = JobQueue(
            self.journal,
            limit=self.config.queue_limit,
            max_attempts=self.config.max_attempts,
            tenant_quota=self.config.tenant_quota,
        )
        self.cache: Optional[ArtifactCache] = (
            None
            if self.config.no_cache
            else ArtifactCache(resolve_cache_dir(self.config.cache_dir))
        )
        self.breaker = CircuitBreaker()
        self.supervisor = Supervisor(
            cache=self.cache,
            workers=self.config.workers,
            timeout=self.config.timeout,
            node_limit=self.config.node_limit,
            set_backend=self.config.set_backend,
            breaker=self.breaker,
        )
        self.http = HttpServer(
            self._handle,
            host=self.config.host,
            port=self.config.port,
            max_body=self.config.max_body,
        )
        self.started = threading.Event()
        self.recovery: Dict[str, int] = {}
        self._started_at = time.time()
        self._draining = False
        self._stop: Optional[asyncio.Event] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.job_concurrency,
            thread_name_prefix="campion-job",
        )

    # -- lifecycle -----------------------------------------------------------
    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent, thread-safe via loop)."""
        if self._stop is not None:
            self._stop.set()

    async def serve(self) -> None:
        """Run until a shutdown is requested, then drain and exit."""
        loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.recovery = self.queue.recover()
        if self.recovery.get("requeued") or self.recovery.get(
            "dead_lettered"
        ):
            print(
                "campion serve: recovered journal:"
                f" {self.recovery['requeued']} job(s) re-queued,"
                f" {self.recovery['dead_lettered']} dead-lettered",
                file=sys.stderr,
            )
        await self.http.start()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread (ServiceThread) or odd platform
        runners = [
            asyncio.create_task(self._runner())
            for _ in range(self.config.job_concurrency)
        ]
        self.started.set()
        try:
            await self._stop.wait()
        finally:
            self._draining = True
            _, still_running = await asyncio.wait(
                runners, timeout=self.config.drain_grace
            )
            for task in still_running:
                # Grace expired mid-analysis: abandon the thread; the
                # job stays `running` in the journal and the next
                # daemon's recovery re-queues or dead-letters it.
                task.cancel()
            await asyncio.gather(*runners, return_exceptions=True)
            self.queue.compact()
            await self.http.stop()
            self._executor.shutdown(wait=False)

    async def _runner(self) -> None:
        """One claim-execute-settle loop; several run concurrently."""
        loop = asyncio.get_running_loop()
        while not self._stop.is_set():
            job = self.queue.claim()
            if job is None:
                gate = self.queue.next_wakeup()
                delay = 0.05 if gate is None else min(max(gate, 0.01), 0.5)
                try:
                    await asyncio.wait_for(self._stop.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
                continue
            tenant_cache = (
                self.cache.namespace(job.tenant)
                if self.cache is not None
                else None
            )
            try:
                result = await loop.run_in_executor(
                    self._executor,
                    self.supervisor.run_job,
                    job.payload,
                    tenant_cache,
                )
            except JobError as exc:
                self.queue.fail(job, str(exc), permanent=exc.permanent)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - runner must survive
                self.queue.fail(
                    job,
                    f"internal error ({type(exc).__name__}: {exc})",
                    permanent=False,
                )
            else:
                self.queue.complete(job, result)

    # -- HTTP ----------------------------------------------------------------
    async def _handle(
        self, method: str, path: str, body: Optional[Dict]
    ) -> JsonResponse:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self._health(), {}
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            depth = self.queue.depth()
            ready = not self._draining and depth < self.config.queue_limit
            return (
                (200 if ready else 503),
                {
                    "ready": ready,
                    "draining": self._draining,
                    "queue_depth": depth,
                    "queue_limit": self.config.queue_limit,
                },
                {},
            )
        if path == "/v1/fleet":
            if method != "POST":
                return 405, {"error": "use POST"}, {}
            return self._submit(body)
        if path == "/v1/jobs":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return (
                200,
                {"jobs": [job.summary() for job in self.queue.jobs()]},
                {},
            )
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            job = self.queue.get(path[len("/v1/jobs/") :])
            if job is None:
                return 404, {"error": "no such job"}, {}
            document: Dict = {"job": job.summary()}
            if job.result is not None:
                document["result"] = job.result
            return 200, document, {}
        return 404, {"error": f"no route for {path}"}, {}

    def _submit(self, body: Optional[Dict]) -> JsonResponse:
        if self._draining:
            return 503, {"error": "draining; not accepting new jobs"}, {}
        if body is None or not isinstance(body.get("configs"), list):
            return (
                400,
                {
                    "error": "body must be a JSON object with a"
                    " 'configs' list of {name, text} objects"
                },
                {},
            )
        tenant = str(body.get("tenant") or "default")
        try:
            job = self.queue.submit(payload=body, tenant=tenant)
        except QueueFull as exc:
            return 429, {"error": str(exc)}, {"Retry-After": "1"}
        return (
            202,
            {"job": job.summary(), "href": f"/v1/jobs/{job.id}"},
            {},
        )

    def _health(self) -> Dict:
        counters = dict(perf.REGISTRY.counters)
        device_reads = counters.get("cache.device.hits", 0) + counters.get(
            "cache.device.misses", 0
        )
        diff_reads = counters.get("cache.diff.hits", 0) + counters.get(
            "cache.diff.misses", 0
        )
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "queue": {
                "depth": self.queue.depth(),
                "limit": self.config.queue_limit,
                "states": self.queue.counts(),
            },
            "workers": {
                "configured": self.config.workers,
                "job_concurrency": self.config.job_concurrency,
                "breaker": self.breaker.snapshot(),
            },
            "cache": {
                "enabled": self.cache is not None,
                "root": str(self.cache.root) if self.cache else None,
                "device_hit_rate": (
                    counters.get("cache.device.hits", 0) / device_reads
                    if device_reads
                    else None
                ),
                "diff_hit_rate": (
                    counters.get("cache.diff.hits", 0) / diff_reads
                    if diff_reads
                    else None
                ),
            },
            "recovery": self.recovery,
            "counters": {
                name: value
                for name, value in sorted(counters.items())
                if name.startswith(
                    ("service.", "parallel.", "cache.", "memo.")
                )
            },
        }


class ServiceThread:
    """Host an :class:`AnalysisService` on a background thread.

    The harness for in-process integration: tests, the oracle's
    ``service`` selfcheck generator, and the service benchmark all
    talk HTTP to a daemon running on an ephemeral port in the same
    process.  Usable as a context manager.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        config = config or ServiceConfig(port=0)
        self.service = AnalysisService(config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self) -> "ServiceThread":
        """Run the daemon on a background thread; wait until ready."""
        self._thread = threading.Thread(
            target=self._run, name="campion-serve", daemon=True
        )
        self._thread.start()
        if not self.service.started.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.serve())
        finally:
            asyncio.set_event_loop(None)
            self._loop.close()

    @property
    def port(self) -> int:
        """The bound TCP port (resolved, even when configured as 0)."""
        return self.service.http.port

    @property
    def url(self) -> str:
        """Base URL of the running daemon."""
        return f"http://{self.service.config.host}:{self.port}"

    def stop(self, timeout: float = 60.0) -> None:
        """Request a graceful drain and join the daemon thread."""
        if self._loop is not None and self._thread is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.service.request_shutdown
                )
            except RuntimeError:  # loop already closed
                pass
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
