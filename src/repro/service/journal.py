"""Crash-safe append-only job journal (JSONL).

One record per line, appended with flush + fsync so a record is
durable the moment :meth:`Journal.append` returns.  A crash mid-append
leaves at most one torn line at the *tail*; :meth:`Journal.replay`
tolerates it (the torn record is dropped and counted under
``service.journal.torn``) so a restart after ``kill -9`` always
recovers every fully-acknowledged transition.

The journal grows by one line per state transition; :meth:`compact`
rewrites it to one merged record per surviving job using the same
atomic temp-file + ``os.replace`` pattern as :mod:`repro.cache` —
readers (there are none concurrent today, but the invariant is free)
can never observe a torn file, and a crash mid-compaction leaves the
old journal intact.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Dict, Iterable, List

from .. import perf

__all__ = ["Journal"]


class Journal:
    """Append-only JSONL log of job records under one path."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = pathlib.Path(path)

    def append(self, record: Dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        perf.add("service.journal.appends")

    def replay(self) -> List[Dict]:
        """Every intact record, in append order.

        A torn tail (crash mid-write) or an isolated corrupt line is
        skipped and counted — recovery must never be blocked by the
        very crash it is recovering from.
        """
        records: List[Dict] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        perf.add("service.journal.torn")
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except FileNotFoundError:
            return []
        except OSError:
            perf.add("service.journal.errors")
            return records
        return records

    def compact(self, records: Iterable[Dict]) -> None:
        """Atomically replace the journal with exactly ``records``."""
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        data = ("\n".join(lines) + "\n") if lines else ""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=".journal-"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_name, self.path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            perf.add("service.journal.compactions")
        except OSError:
            # Disk trouble: the uncompacted journal is still valid.
            perf.add("service.journal.errors")
