"""Lightweight performance telemetry: named counters and wall-clock timers.

The hot paths (SemanticDiff, HeaderLocalize, the parsers) report into a
process-global :class:`PerfRegistry`; benchmarks and the CLI snapshot it
to JSON so perf trajectories (``BENCH_kernels.json``,
``BENCH_atoms.json``) carry the *why* behind a wall-clock number — how
many class pairs were compared (``semantic_diff.pairs_compared``, the
``bdd`` backend's loop) or how many atoms/bitset operations replaced
them (``setalg.atoms``, ``setalg.atom_probes``, ``setalg.bitset_ops``,
``setalg.atom_budget_fallbacks`` — see :mod:`repro.core.setalg`), how
long parsing took versus diffing, how the BDD caches behaved.

Instrumentation is deliberately coarse-grained (one timer span per
parse/diff/localize call, counters bumped in bulk), so the registry adds
nothing measurable to the hot loops it describes.  Worker *processes*
(``repro.core.parallel``) each get their own registry whose numbers
describe that worker alone; within one process, mutation is guarded by
a lock because the analysis service (``repro.service``) runs jobs on
threads that report concurrently.  The lock is re-initialized in fork
children (``os.register_at_fork``) so a worker forked while another
service thread held it can never deadlock on the inherited state.

Usage::

    from repro import perf

    with perf.timer("semantic_diff"):
        ...work...
    perf.add("semantic_diff.pairs_compared", len(pairs))

    perf.snapshot()   # JSON-compatible dict of everything recorded
    perf.reset()      # start a fresh measurement window
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "PerfRegistry",
    "REGISTRY",
    "add",
    "timer",
    "record",
    "snapshot",
    "reset",
    "dump_json",
]


class PerfRegistry:
    """A named bag of monotonic counters and aggregated timer spans."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        # name -> [calls, total_seconds, max_seconds]
        self._timers: Dict[str, list] = {}
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount`` (creating it at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    # -- timers --------------------------------------------------------------
    def record(self, name: str, seconds: float) -> None:
        """Fold one measured span into timer ``name``."""
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [1, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                if seconds > entry[2]:
                    entry[2] = seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and fold it into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> Dict:
        """Everything recorded so far, as JSON-compatible dictionaries."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "timers": {
                    name: {
                        "calls": entry[0],
                        "total_s": entry[1],
                        "mean_s": entry[1] / entry[0],
                        "max_s": entry[2],
                    }
                    for name, entry in sorted(self._timers.items())
                },
            }

    def reset(self) -> None:
        """Clear all counters and timers."""
        with self._lock:
            self.counters.clear()
            self._timers.clear()

    def dump_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Render the snapshot as JSON, optionally writing it to ``path``."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=False)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text


#: The process-global registry the instrumented modules report into.
REGISTRY = PerfRegistry()

if hasattr(os, "register_at_fork"):
    # A fork snapshots all thread state, including a possibly-held
    # registry lock in another (service) thread; give the child a
    # fresh lock so its first perf.add can never deadlock.
    os.register_at_fork(
        after_in_child=lambda: setattr(REGISTRY, "_lock", threading.Lock())
    )

# Module-level conveniences bound to the global registry.
add = REGISTRY.add
timer = REGISTRY.timer
record = REGISTRY.record
snapshot = REGISTRY.snapshot
reset = REGISTRY.reset
dump_json = REGISTRY.dump_json
