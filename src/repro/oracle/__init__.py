"""Differential-testing oracle for the BDD analysis pipeline.

The paper's core claim is *completeness*: SemanticDiff reports **all**
behavioral differences between two components and HeaderLocalize's terms
denote **exactly** the affected input set.  This package makes that
claim executable:

* :mod:`.evaluator` — brute-force first-match evaluation of ACLs and
  route maps on concretely enumerated packet/route samples (no BDDs);
* :mod:`.harness` — the differential checks: the union of SemanticDiff's
  input sets must equal an independently-computed disagreement set, every
  witness must reproduce concretely, and every localization must denote
  the affected set exactly and minimally;
* :mod:`.driver` — a seeded property-based loop feeding the harness
  generated and mutated pairs, shrinking any failure to a minimal
  reproducer printed with its seed (``campion selfcheck``).
"""

from .evaluator import (
    PacketSample,
    RouteSample,
    SENTINEL_COMMUNITY,
    SENTINEL_LOCAL_PREF,
    SENTINEL_MED,
    acl_disposition,
    enumerate_packet_samples,
    enumerate_route_samples,
    route_behavior,
    route_disposition,
    supports_concrete_oracle,
)
from .harness import (
    CheckStats,
    OracleFailure,
    check_acl_pair,
    check_route_map_pair,
    naive_disagreement,
)
from .driver import SelfCheckFailure, SelfCheckResult, run_selfcheck

__all__ = [
    "CheckStats",
    "OracleFailure",
    "PacketSample",
    "RouteSample",
    "SENTINEL_COMMUNITY",
    "SENTINEL_LOCAL_PREF",
    "SENTINEL_MED",
    "SelfCheckFailure",
    "SelfCheckResult",
    "acl_disposition",
    "check_acl_pair",
    "check_route_map_pair",
    "enumerate_packet_samples",
    "enumerate_route_samples",
    "naive_disagreement",
    "route_behavior",
    "route_disposition",
    "run_selfcheck",
    "supports_concrete_oracle",
]
