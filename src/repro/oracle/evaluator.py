"""Brute-force concrete evaluation — the oracle side of the harness.

Everything here works on plain Python values: first-match walks over the
model objects and structured enumeration of concrete packet/route
samples.  No BDDs are involved, so agreement with the symbolic pipeline
is evidence, not circularity.

Sample enumeration is *corner-driven*: for every constant mentioned by
either component (addresses, wildcards, port bounds, prefix ranges,
tags, communities) the pool includes the constant itself and its
one-off neighbors, because first-match bugs live at those boundaries.
Random fill on top covers the interior.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..encoding.route import ROUTE_PROTOCOLS, RouteSpace
from ..model.acl import Acl, AclAction
from ..model.eval import ConcreteRoute, evaluate_clause_match
from ..model.routemap import MatchAsPath, MatchProtocol, MatchTag, RouteMap
from ..model.types import Community, Prefix
from ..encoding.classes import RouteMapAction

__all__ = [
    "PacketSample",
    "RouteSample",
    "SENTINEL_COMMUNITY",
    "SENTINEL_LOCAL_PREF",
    "SENTINEL_MED",
    "acl_disposition",
    "enumerate_packet_samples",
    "enumerate_route_samples",
    "route_behavior",
    "route_disposition",
    "supports_concrete_oracle",
]

#: Attribute values planted on instrumented routes so that *setting* an
#: attribute is always observable: none of these collide with values any
#: generated policy sets (the driver's pools avoid them), so ``set
#: local-preference 100`` vs no-op changes the output route.
SENTINEL_LOCAL_PREF = 77
SENTINEL_MED = 7
SENTINEL_COMMUNITY = Community(65535, 65535)


# ---------------------------------------------------------------------------
# Samples
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PacketSample:
    """One concrete packet fed to both ACLs."""

    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int = 0
    dst_port: int = 0
    icmp_type: int = 0

    def as_kwargs(self) -> Dict[str, int]:
        """Keyword form accepted by ``Acl.evaluate_concrete`` and
        ``PacketSpace.encode_concrete``."""
        return {
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "protocol": self.protocol,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
            "icmp_type": self.icmp_type,
        }

    def describe(self) -> str:
        """One-line rendering for reproducers."""
        from ..model.types import int_to_ip

        return (
            f"src {int_to_ip(self.src_ip)} dst {int_to_ip(self.dst_ip)} "
            f"proto {self.protocol} sport {self.src_port} "
            f"dport {self.dst_port} icmp {self.icmp_type}"
        )


@dataclass(frozen=True)
class RouteSample:
    """One concrete route advertisement fed to both route maps."""

    prefix: Prefix
    communities: FrozenSet[Community] = frozenset()
    tag: int = 0
    protocol: str = "bgp"

    def describe(self) -> str:
        """One-line rendering for reproducers."""
        communities = " ".join(sorted(str(c) for c in self.communities)) or "-"
        return (
            f"prefix {self.prefix} communities {communities} "
            f"tag {self.tag} proto {self.protocol}"
        )


# ---------------------------------------------------------------------------
# Concrete dispositions
# ---------------------------------------------------------------------------


def acl_disposition(acl: Acl, sample: PacketSample) -> AclAction:
    """First-match action of ``acl`` on one packet (ground truth)."""
    return acl.evaluate_concrete(**sample.as_kwargs())


def route_disposition(route_map: RouteMap, sample: RouteSample) -> RouteMapAction:
    """The path disposition of ``route_map`` on one route sample.

    Mirrors the encoder's path partition: the first clause whose
    conditions hold decides, contributing ``RouteMapAction(action, sets)``
    — exactly the action object :func:`route_map_equivalence_classes`
    attaches to the matching path's class.
    """
    route = ConcreteRoute(
        prefix=sample.prefix,
        communities=sample.communities,
        tag=sample.tag,
        protocol=sample.protocol,
    )
    for clause in route_map.clauses:
        if evaluate_clause_match(clause, route):
            return RouteMapAction(clause.action, clause.sets)
    return RouteMapAction(route_map.default_action)


def route_behavior(route_map: RouteMap, sample: RouteSample) -> Tuple:
    """The *extensional* outcome of ``route_map`` on an instrumented route.

    The input route carries sentinel attribute values (see
    :data:`SENTINEL_LOCAL_PREF` etc.) so that set-actions are observable
    in the output; two policies with differing path dispositions on
    observability-safe workloads must produce different outcomes here.
    """
    route = ConcreteRoute(
        prefix=sample.prefix,
        communities=sample.communities | {SENTINEL_COMMUNITY},
        local_pref=SENTINEL_LOCAL_PREF,
        med=SENTINEL_MED,
        tag=sample.tag,
        protocol=sample.protocol,
    )
    from ..model.eval import evaluate_route_map

    result = evaluate_route_map(route_map, route)
    if not result.accepted:
        return ("reject",)
    out = result.route
    return (
        "accept",
        out.local_pref,
        out.med,
        frozenset(out.communities),
        out.tag,
        out.next_hop,
        out.as_path,
    )


def supports_concrete_oracle(route_map: RouteMap) -> bool:
    """Whether the concrete evaluator's semantics line up with the BDD's.

    AS-path regexes are encoded as free boolean variables (syntactically
    different regexes are "potentially different"), which a concrete
    route sample cannot express — policies matching on as-path are
    checked at the BDD level only.
    """
    for clause in route_map.clauses:
        for condition in clause.matches:
            if isinstance(condition, MatchAsPath):
                return False
    return True


# ---------------------------------------------------------------------------
# Sample enumeration
# ---------------------------------------------------------------------------


def _wildcard_corners(pool: set, address: int, wildcard: int, rng: random.Random) -> None:
    low = address
    high = (address | wildcard) & 0xFFFFFFFF
    pool.update(
        {
            low,
            high,
            (low - 1) & 0xFFFFFFFF,
            (high + 1) & 0xFFFFFFFF,
            low | (rng.getrandbits(32) & wildcard),
        }
    )


def enumerate_packet_samples(
    acls: Sequence[Acl], rng: random.Random, budget: int = 96
) -> List[PacketSample]:
    """Corner-driven packet samples for a set of ACLs.

    Field pools collect every constant either ACL consults plus off-by-one
    neighbors; ``budget`` cross-product draws (plus a few fully random
    packets) are deterministic in ``rng``.
    """
    src_pool: set = {0, 0xFFFFFFFF}
    dst_pool: set = {0, 0xFFFFFFFF}
    protocol_pool: set = {0, 1, 6, 17}
    src_port_pool: set = {0, 0xFFFF}
    dst_port_pool: set = {0, 0xFFFF}
    icmp_pool: set = {0, 8}
    for acl in acls:
        for line in acl.lines:
            _wildcard_corners(src_pool, line.src.address, line.src.wildcard, rng)
            _wildcard_corners(dst_pool, line.dst.address, line.dst.wildcard, rng)
            if line.protocol is not None:
                protocol_pool.add(line.protocol)
                protocol_pool.add((line.protocol + 1) % 256)
            for port_range, pool in [
                (r, src_port_pool) for r in line.src_ports
            ] + [(r, dst_port_pool) for r in line.dst_ports]:
                pool.update(
                    {
                        port_range.low,
                        port_range.high,
                        max(port_range.low - 1, 0),
                        min(port_range.high + 1, 0xFFFF),
                    }
                )
            if line.icmp_type is not None:
                icmp_pool.add(line.icmp_type)
                icmp_pool.add((line.icmp_type + 1) % 256)

    pools = [
        sorted(src_pool),
        sorted(dst_pool),
        sorted(protocol_pool),
        sorted(src_port_pool),
        sorted(dst_port_pool),
        sorted(icmp_pool),
    ]
    samples: List[PacketSample] = []
    seen: set = set()
    for index in range(budget):
        if index % 8 == 7:  # fully random fill between corner draws
            fields = (
                rng.getrandbits(32),
                rng.getrandbits(32),
                rng.randrange(256),
                rng.randrange(0x10000),
                rng.randrange(0x10000),
                rng.randrange(256),
            )
        else:
            fields = tuple(rng.choice(pool) for pool in pools)
        if fields not in seen:
            seen.add(fields)
            samples.append(PacketSample(*fields))
    return samples


def _prefix_corners(pool: set, ranges: Iterable, rng: random.Random) -> None:
    for prefix_range in ranges:
        base = prefix_range.prefix
        pool.add(base)
        for length in {
            max(prefix_range.low, base.length),
            min(prefix_range.high, 32),
        }:
            if length >= base.length:
                pool.add(Prefix(base.network, length))
                if length > base.length:
                    # A sub-prefix with one extra bit set: inside the
                    # address block but off the all-zeros spine.
                    pool.add(
                        Prefix(base.network | (1 << (32 - length)), length)
                    )
        if base.length >= 1:
            # The sibling block: same length, outside the range.
            pool.add(
                Prefix(base.network ^ (1 << (32 - base.length)), base.length)
            )
        if prefix_range.low > base.length:
            pool.add(Prefix(base.network, prefix_range.low - 1))
        if prefix_range.high < 32:
            pool.add(Prefix(base.network, prefix_range.high + 1))


def enumerate_route_samples(
    space: RouteSpace,
    maps: Sequence[RouteMap],
    rng: random.Random,
    budget: int = 80,
) -> List[RouteSample]:
    """Corner-driven route samples for a route-map pair.

    Prefixes come from the maps' prefix-range corners (inside, boundary
    lengths, sibling blocks); communities are subsets of the comparison
    universe; tags and protocols are the mentioned constants plus
    off-by-one/unmentioned fillers.
    """
    prefix_pool: set = {Prefix(0, 0), Prefix.parse("192.0.2.0/24")}
    tag_pool: set = {0}
    protocol_pool: set = {"bgp"}
    for route_map in maps:
        _prefix_corners(prefix_pool, route_map.prefix_ranges(), rng)
        for clause in route_map.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchTag):
                    tag_pool.add(condition.tag)
                    tag_pool.add((condition.tag + 1) & 0xFFFF)
                elif isinstance(condition, MatchProtocol):
                    protocol_pool.add(condition.protocol)
    protocol_pool &= set(ROUTE_PROTOCOLS)

    vocabulary = list(space.communities)
    community_pool: List[FrozenSet[Community]] = [frozenset()]
    community_pool.extend(frozenset({c}) for c in vocabulary[:12])
    if len(vocabulary) >= 2:
        for _ in range(4):
            size = rng.randrange(2, min(len(vocabulary), 4) + 1)
            community_pool.append(frozenset(rng.sample(vocabulary, size)))

    prefixes = sorted(prefix_pool, key=lambda p: (p.network, p.length))
    tags = sorted(tag_pool)
    protocols = sorted(protocol_pool)
    samples: List[RouteSample] = []
    seen: set = set()
    for _ in range(budget):
        sample = RouteSample(
            prefix=rng.choice(prefixes),
            communities=rng.choice(community_pool),
            tag=rng.choice(tags),
            protocol=rng.choice(protocols),
        )
        if sample not in seen:
            seen.add(sample)
            samples.append(sample)
    return samples
