"""Seeded property-based driver for the differential harness.

``run_selfcheck(seed, pairs)`` feeds the harness a round-robin of

* generated near-equivalent ACL pairs (``workloads/acl_gen.py``),
* random observability-safe route-map pairs (built here),
* text-mutated datacenter configs (``workloads/mutation.py``),
* memoization cross-checks — the same mutated pair analyzed fresh,
  through a cold :class:`~repro.core.memo.DiffMemo`, and through the
  warm memo again, asserting identical counts and reports (with a
  persistent cache attached when the CLI passes one), and
* set-algebra backend cross-checks — the same generated component pair
  diffed and localized under every backend in
  :data:`repro.core.setalg.BACKEND_NAMES`, asserting the serialized
  differences, input-set satcounts, and localizations are identical,
* fleet backend cross-checks — a generated gateway fleet compared end
  to end under the ``fleet-atoms`` and ``atoms`` backends
  (:func:`repro.core.fleet.compare_fleet`), asserting the serialized
  fleet reports are identical; a divergence is shrunk by dropping
  devices,
* service round-trips — the same fleet's config *texts* pushed through
  a live in-thread analysis daemon
  (:class:`repro.service.ServiceThread`, the real HTTP/JSON path:
  submit, queue, supervised execution, poll) and compared
  byte-for-byte against the in-process
  :func:`~repro.core.fleet.compare_fleet` report; a divergence is
  shrunk by dropping devices,

each derived deterministically from the run seed.  A failing check is
*shrunk* — lines, clauses, matches, and sets are removed greedily while
the same check keeps failing — and reported as a
:class:`SelfCheckFailure` whose reproducer names the case seed and the
minimal components, so one reported line re-runs the exact failure.

Route-map generation is *observability-safe*: set-action values are
drawn from pools disjoint from the evaluator's sentinel attribute
values and set-communities are never additive, so any two differing
path dispositions produce extensionally different output routes (the
behavioral witness check relies on this; arbitrary parsed configs get
the path-level checks only).
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
import re
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..model.acl import Acl
from ..model.routemap import (
    Action,
    CommunityList,
    CommunityListEntry,
    MatchCommunities,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
)
from ..model.types import Community, Prefix, PrefixRange
from ..core import setalg
from ..core.config_diff import config_diff, config_diff_summary
from ..core.memo import DiffMemo
from ..core.present import (
    localize_acl_difference,
    localize_acl_differences,
    localize_route_map_difference,
    localize_route_map_differences,
)
from ..core.semantic_diff import diff_acls, diff_route_maps
from ..core.serialize import report_to_dict, semantic_difference_to_dict
from ..parsers import parse_cisco, parse_juniper
from ..workloads.acl_gen import generate_acl_pair
from ..workloads.datacenter import _cisco_tor, _juniper_tor
from ..workloads.mutation import apply_random_mutation
from .harness import CheckStats, OracleFailure, check_acl_pair, check_route_map_pair

__all__ = ["SelfCheckFailure", "SelfCheckResult", "run_selfcheck"]

_GENERATORS = (
    "acl",
    "routemap",
    "mutation",
    "memo",
    "backend",
    "localize",
    "fleet",
    "symmetry",
    "near-symmetry",
    "service",
)

#: Observability-safe value pools — all distinct from the evaluator's
#: sentinels (local-pref 77, med 7, community 65535:65535) and from the
#: matched-tag pool, so setting any of them is visible on the output route.
_LOCAL_PREFS = (50, 100, 150)
_MEDS = (5, 10)
_SET_TAGS = (1000, 2000)
_MATCH_TAGS = (10, 20)
_COMMUNITY_POOL = tuple(Community(65000, value) for value in (100, 200, 300))
_NEXT_HOPS = (0x0A000001, 0x0A000002)  # 10.0.0.1, 10.0.0.2
_PROTOCOLS = ("bgp", "ospf", "static")


@dataclass
class SelfCheckFailure:
    """One shrunk harness failure with everything needed to re-run it."""

    generator: str
    seed: int
    check: str
    detail: str
    reproducer: str

    def render(self) -> str:
        """Multi-line report block for the CLI / CI log."""
        lines = [
            f"FAILED [{self.generator}] case seed {self.seed}: {self.check}",
            f"  {self.detail}",
            "  minimal reproducer:",
        ]
        lines.extend("    " + line for line in self.reproducer.splitlines())
        return "\n".join(lines)


@dataclass
class SelfCheckResult:
    """Aggregate outcome of one selfcheck run."""

    seed: int
    pairs: int
    failures: List[SelfCheckFailure] = field(default_factory=list)
    differences: int = 0
    samples: int = 0
    witnesses: int = 0
    localizations: int = 0
    skipped: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def passed(self) -> bool:
        """Whether every pair survived every check."""
        return not self.failures

    def render(self) -> str:
        """Human-readable summary (plus reproducers on failure)."""
        lines = [
            f"selfcheck: {self.pairs} pairs, seed {self.seed} "
            f"({self.elapsed:.1f}s)",
            f"  differences checked: {self.differences}",
            f"  concrete samples:    {self.samples}",
            f"  witnesses decoded:   {self.witnesses}",
            f"  localizations:       {self.localizations}",
        ]
        if self.skipped:
            lines.append(f"  skipped checks:      {len(self.skipped)}")
        if self.passed:
            lines.append("selfcheck PASSED: BDD pipeline agrees with the oracle")
        else:
            lines.append(f"selfcheck FAILED: {len(self.failures)} case(s)")
            for failure in self.failures:
                lines.append("")
                lines.append(failure.render())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Random observability-safe route maps
# ---------------------------------------------------------------------------


def _random_prefix_list(rng: random.Random, name: str) -> PrefixList:
    entries = []
    for _ in range(rng.randint(1, 3)):
        block = rng.choice((8, 16, 24))
        network = rng.choice((10, 172, 192)) << 24 | rng.randrange(4) << 16
        prefix = Prefix(network, block)
        low = rng.randint(prefix.length, 32)
        high = rng.randint(low, 32)
        entries.append(
            PrefixListEntry(
                action=Action.PERMIT if rng.random() < 0.8 else Action.DENY,
                range=PrefixRange(prefix, low, high),
            )
        )
    return PrefixList(name=name, entries=tuple(entries))


def _random_clause(rng: random.Random, index: int) -> RouteMapClause:
    matches: List = []
    if rng.random() < 0.85:
        matches.append(
            MatchPrefixList(_random_prefix_list(rng, f"PL{index}"))
        )
    if rng.random() < 0.35:
        size = rng.randint(1, 2)
        entries = tuple(
            CommunityListEntry(
                action=Action.PERMIT,
                communities=frozenset(rng.sample(_COMMUNITY_POOL, size)),
            )
            for _ in range(rng.randint(1, 2))
        )
        matches.append(MatchCommunities(CommunityList(f"CL{index}", entries)))
    if rng.random() < 0.2:
        matches.append(MatchTag(rng.choice(_MATCH_TAGS)))
    if rng.random() < 0.15:
        matches.append(MatchProtocol(rng.choice(_PROTOCOLS)))

    action = Action.PERMIT if rng.random() < 0.7 else Action.DENY
    sets: List = []
    if action is Action.PERMIT:
        if rng.random() < 0.6:
            sets.append(SetLocalPref(rng.choice(_LOCAL_PREFS)))
        if rng.random() < 0.3:
            sets.append(SetMed(rng.choice(_MEDS)))
        if rng.random() < 0.3:
            sets.append(
                SetCommunities(
                    frozenset(
                        rng.sample(_COMMUNITY_POOL, rng.randint(1, 2))
                    ),
                    additive=False,
                )
            )
        if rng.random() < 0.2:
            sets.append(SetTag(rng.choice(_SET_TAGS)))
        if rng.random() < 0.2:
            sets.append(SetNextHop(rng.choice(_NEXT_HOPS)))
    return RouteMapClause(
        name=f"clause-{index}",
        action=action,
        matches=tuple(matches),
        sets=tuple(sets),
    )


def _random_route_map(rng: random.Random, name: str) -> RouteMap:
    clauses = tuple(
        _random_clause(rng, index) for index in range(rng.randint(1, 4))
    )
    default = Action.PERMIT if rng.random() < 0.3 else Action.DENY
    return RouteMap(name=name, clauses=clauses, default_action=default)


def _perturb_route_map(route_map: RouteMap, rng: random.Random) -> RouteMap:
    """A near-copy with one seeded difference (or none — also a valid case)."""
    choice = rng.randrange(5)
    clauses = list(route_map.clauses)
    if choice == 0 and clauses:
        index = rng.randrange(len(clauses))
        clause = clauses[index]
        flipped = Action.DENY if clause.action is Action.PERMIT else Action.PERMIT
        clauses[index] = dataclasses.replace(clause, action=flipped, sets=())
    elif choice == 1 and clauses:
        del clauses[rng.randrange(len(clauses))]
    elif choice == 2 and clauses:
        index = rng.randrange(len(clauses))
        clause = clauses[index]
        if clause.action is Action.PERMIT:
            clauses[index] = dataclasses.replace(
                clause, sets=(SetLocalPref(rng.choice(_LOCAL_PREFS)),)
            )
    elif choice == 3:
        return dataclasses.replace(
            route_map,
            default_action=(
                Action.PERMIT
                if route_map.default_action is Action.DENY
                else Action.DENY
            ),
        )
    # choice == 4: identical copy — equivalence must also survive the checks.
    return dataclasses.replace(route_map, clauses=tuple(clauses))


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _shrink_acl_pair(
    acl1: Acl,
    acl2: Acl,
    fails: Callable[[Acl, Acl], bool],
) -> Tuple[Acl, Acl]:
    """Greedily remove ACL lines while the same check keeps failing."""
    progress = True
    while progress:
        progress = False
        for which in (0, 1):
            acl = (acl1, acl2)[which]
            for index in range(len(acl.lines)):
                candidate = dataclasses.replace(
                    acl, lines=acl.lines[:index] + acl.lines[index + 1 :]
                )
                pair = (candidate, acl2) if which == 0 else (acl1, candidate)
                if fails(*pair):
                    acl1, acl2 = pair
                    progress = True
                    break
            if progress:
                break
    return acl1, acl2


def _clause_reductions(clause: RouteMapClause) -> List[RouteMapClause]:
    """All one-step simplifications of a clause (drop one match or set)."""
    reduced = []
    for index in range(len(clause.matches)):
        reduced.append(
            dataclasses.replace(
                clause,
                matches=clause.matches[:index] + clause.matches[index + 1 :],
            )
        )
    for index in range(len(clause.sets)):
        reduced.append(
            dataclasses.replace(
                clause, sets=clause.sets[:index] + clause.sets[index + 1 :]
            )
        )
    return reduced


def _shrink_route_map_pair(
    map1: RouteMap,
    map2: RouteMap,
    fails: Callable[[RouteMap, RouteMap], bool],
) -> Tuple[RouteMap, RouteMap]:
    """Greedily drop clauses, then matches/sets, while the check fails."""
    progress = True
    while progress:
        progress = False
        for which in (0, 1):
            route_map = (map1, map2)[which]
            candidates: List[RouteMap] = []
            for index in range(len(route_map.clauses)):
                candidates.append(
                    dataclasses.replace(
                        route_map,
                        clauses=route_map.clauses[:index]
                        + route_map.clauses[index + 1 :],
                    )
                )
            for index, clause in enumerate(route_map.clauses):
                for reduced in _clause_reductions(clause):
                    clauses = list(route_map.clauses)
                    clauses[index] = reduced
                    candidates.append(
                        dataclasses.replace(route_map, clauses=tuple(clauses))
                    )
            for candidate in candidates:
                pair = (candidate, map2) if which == 0 else (map1, candidate)
                if fails(*pair):
                    map1, map2 = pair
                    progress = True
                    break
            if progress:
                break
    return map1, map2


# ---------------------------------------------------------------------------
# Reproducer rendering
# ---------------------------------------------------------------------------


def _render_acl(acl: Acl) -> List[str]:
    lines = [f"acl {acl.name} (default {acl.default_action}):"]
    lines.extend(f"  {line.describe()}" for line in acl.lines)
    return lines


def _render_route_map(route_map: RouteMap) -> List[str]:
    lines = [f"route-map {route_map.name} (default {route_map.default_action}):"]
    for clause in route_map.clauses:
        lines.append(f"  {clause.name} {clause.action}")
        for condition in clause.matches:
            if isinstance(condition, MatchPrefixList):
                entries = " ".join(
                    f"{entry.action} {entry.range}"
                    for entry in condition.prefix_list.entries
                )
                lines.append(f"    match prefix-list [{entries}]")
            elif isinstance(condition, MatchCommunities):
                entries = " | ".join(
                    entry.regex
                    if entry.regex is not None
                    else "{" + " ".join(sorted(map(str, entry.communities))) + "}"
                    for entry in condition.community_list.entries
                )
                lines.append(f"    match community [{entries}]")
            elif isinstance(condition, MatchTag):
                lines.append(f"    match tag {condition.tag}")
            elif isinstance(condition, MatchProtocol):
                lines.append(f"    match protocol {condition.protocol}")
            else:
                lines.append(f"    match {condition!r}")
        for set_action in clause.sets:
            lines.append(f"    {set_action.describe()}")
    return lines


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------


def _same_failure(check: str, run: Callable[[], CheckStats]) -> bool:
    try:
        run()
    except OracleFailure as failure:
        return failure.check == check
    except Exception:  # noqa: BLE001 - a shrunk pair may fail differently
        return False
    return False


def _run_acl_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    rng = random.Random(case_seed)
    pair = generate_acl_pair(
        rule_count=rng.randint(6, 16),
        differences=rng.randint(0, 4),
        seed=case_seed,
    )
    acl1, acl2 = pair.cisco_acl, pair.juniper_acl

    def check(a1: Acl, a2: Acl) -> CheckStats:
        return check_acl_pair(
            a1, a2, rng=random.Random(case_seed), sample_budget=64
        )

    try:
        _merge(result, check(acl1, acl2))
        return None
    except OracleFailure as failure:
        shrunk1, shrunk2 = _shrink_acl_pair(
            acl1, acl2, lambda a1, a2: _same_failure(failure.check, lambda: check(a1, a2))
        )
        reproducer = "\n".join(_render_acl(shrunk1) + _render_acl(shrunk2))
        return SelfCheckFailure(
            "acl", case_seed, failure.check, failure.detail, reproducer
        )


def _run_route_map_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    rng = random.Random(case_seed)
    map1 = _random_route_map(rng, "RM1")
    if rng.random() < 0.7:
        map2 = dataclasses.replace(_perturb_route_map(map1, rng), name="RM2")
    else:
        map2 = _random_route_map(rng, "RM2")

    def check(m1: RouteMap, m2: RouteMap) -> CheckStats:
        return check_route_map_pair(
            m1, m2, rng=random.Random(case_seed), sample_budget=64, behavioral=True
        )

    try:
        _merge(result, check(map1, map2))
        return None
    except OracleFailure as failure:
        shrunk1, shrunk2 = _shrink_route_map_pair(
            map1, map2, lambda m1, m2: _same_failure(failure.check, lambda: check(m1, m2))
        )
        reproducer = "\n".join(_render_route_map(shrunk1) + _render_route_map(shrunk2))
        return SelfCheckFailure(
            "routemap", case_seed, failure.check, failure.detail, reproducer
        )


def _run_mutation_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    rng = random.Random(case_seed)
    pair_index = rng.randrange(4)
    if rng.random() < 0.5:
        text = _cisco_tor(pair_index, spine_count=2)
        parse = parse_cisco
    else:
        text = _juniper_tor(pair_index, spine_count=2)
        parse = parse_juniper
    mutation = apply_random_mutation(text, seed=case_seed)
    mutated_text = mutation.text if mutation is not None else text
    device1 = parse(text, "original.cfg")
    device2 = parse(mutated_text, "mutated.cfg")

    for name in sorted(set(device1.route_maps) & set(device2.route_maps)):
        map1, map2 = device1.route_maps[name], device2.route_maps[name]

        def check(m1: RouteMap, m2: RouteMap) -> CheckStats:
            # Parsed configs are not observability-safe: path-level only.
            return check_route_map_pair(
                m1, m2, rng=random.Random(case_seed), sample_budget=48,
                behavioral=False,
            )

        try:
            _merge(result, check(map1, map2))
        except OracleFailure as failure:
            shrunk1, shrunk2 = _shrink_route_map_pair(
                map1,
                map2,
                lambda m1, m2: _same_failure(failure.check, lambda: check(m1, m2)),
            )
            reproducer = "\n".join(
                [f"mutation: {mutation.description if mutation else '(none)'}"]
                + _render_route_map(shrunk1)
                + _render_route_map(shrunk2)
            )
            return SelfCheckFailure(
                "mutation", case_seed, failure.check, failure.detail, reproducer
            )
    for name in sorted(set(device1.acls) & set(device2.acls)):
        acl1, acl2 = device1.acls[name], device2.acls[name]

        def check_acls(a1: Acl, a2: Acl) -> CheckStats:
            return check_acl_pair(
                a1, a2, rng=random.Random(case_seed), sample_budget=48
            )

        try:
            _merge(result, check_acls(acl1, acl2))
        except OracleFailure as failure:
            shrunk1, shrunk2 = _shrink_acl_pair(
                acl1,
                acl2,
                lambda a1, a2: _same_failure(failure.check, lambda: check_acls(a1, a2)),
            )
            reproducer = "\n".join(
                [f"mutation: {mutation.description if mutation else '(none)'}"]
                + _render_acl(shrunk1)
                + _render_acl(shrunk2)
            )
            return SelfCheckFailure(
                "mutation", case_seed, failure.check, failure.detail, reproducer
            )
    return None


def _run_memo_case(
    case_seed: int, result: SelfCheckResult, cache=None
) -> Optional[SelfCheckFailure]:
    """Cross-validate memoized analysis against a fresh recompute.

    The same mutated device pair is diffed four ways — fresh (no memo),
    cold memo, warm memo replay, and full report through the warm memo —
    and the case fails unless every count agrees and the memoized
    report serializes identically to the fresh one.  When the CLI hands
    a persistent :class:`~repro.cache.ArtifactCache` in, the memo reads
    and writes through it, so on-disk entries get the same scrutiny.
    """
    rng = random.Random(case_seed)
    pair_index = rng.randrange(4)
    if rng.random() < 0.5:
        text = _cisco_tor(pair_index, spine_count=2)
        parse = parse_cisco
    else:
        text = _juniper_tor(pair_index, spine_count=2)
        parse = parse_juniper
    mutation = apply_random_mutation(text, seed=case_seed)
    mutated_text = mutation.text if mutation is not None else text
    device1 = parse(text, "original.cfg")
    device2 = parse(mutated_text, "mutated.cfg")
    label = f"mutation: {mutation.description if mutation else '(none)'}"

    memo = DiffMemo(cache)
    fresh = config_diff(device1, device2)
    fresh_count = fresh.total_differences()
    cold = config_diff_summary(device1, device2, memo=memo)
    warm = config_diff_summary(device1, device2, memo=memo)
    live = config_diff(device1, device2, memo=memo)
    if not (fresh_count == cold == warm == live.total_differences()):
        return SelfCheckFailure(
            "memo",
            case_seed,
            "memo-count-parity",
            f"fresh={fresh_count} cold-memo={cold} warm-memo={warm} "
            f"live-memo={live.total_differences()}",
            label,
        )
    if report_to_dict(fresh) != report_to_dict(live):
        return SelfCheckFailure(
            "memo",
            case_seed,
            "memo-report-identity",
            "memoized report serializes differently from the fresh report",
            label,
        )
    result.differences += fresh_count
    return None


def _backend_report(kind: str, component1, component2) -> List[dict]:
    """Diff + localize one component pair under one backend, serialized.

    Each call builds a fresh space (fresh BDD manager), so the two
    backends share no cached state whatsoever; the serialized dicts are
    manager-independent, which is what makes them comparable.  Satcounts
    of the raw input sets ride along — the dict's localization view
    could in principle coarsen an input-set discrepancy away.
    """
    differ = diff_acls if kind == "acl" else diff_route_maps
    space, differences = differ(component1, component2)
    payload = []
    for difference in differences:
        if kind == "acl":
            localize_acl_difference(space, difference, component1, component2)
        else:
            localize_route_map_difference(
                space, difference, component1, component2
            )
        entry = semantic_difference_to_dict(difference)
        entry["input_satcount"] = difference.input_set.satcount()
        payload.append(entry)
    return payload


def _backend_mismatch(kind: str, component1, component2) -> Optional[str]:
    """One-line description of any bdd/atoms divergence, else ``None``."""
    reports = {}
    for name in setalg.BACKEND_NAMES:
        with setalg.default_backend(name):
            reports[name] = _backend_report(kind, component1, component2)
    baseline = reports["bdd"]
    for name in setalg.BACKEND_NAMES[1:]:
        report = reports[name]
        if len(baseline) != len(report):
            return (
                f"bdd found {len(baseline)} difference(s), "
                f"{name} found {len(report)}"
            )
        for index, (entry1, entry2) in enumerate(zip(baseline, report)):
            if entry1 != entry2:
                keys = sorted(
                    key
                    for key in set(entry1) | set(entry2)
                    if entry1.get(key) != entry2.get(key)
                )
                return (
                    f"difference #{index} diverges between bdd and {name} "
                    f"(fields: {', '.join(keys)})"
                )
    return None


def _run_backend_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    """Cross-validate the ``bdd`` and ``atoms`` set-algebra backends.

    The same generated component pair is diffed and localized under
    each backend in isolation; the serialized difference lists (action
    pairs, localization spans, header ranges, examples) and the raw
    input-set satcounts must agree exactly.
    """
    rng = random.Random(case_seed)
    if rng.random() < 0.5:
        pair = generate_acl_pair(
            rule_count=rng.randint(6, 16),
            differences=rng.randint(0, 4),
            seed=case_seed,
        )
        kind, component1, component2 = "acl", pair.cisco_acl, pair.juniper_acl
    else:
        kind = "routemap"
        component1 = _random_route_map(rng, "RM1")
        if rng.random() < 0.7:
            component2 = dataclasses.replace(
                _perturb_route_map(component1, rng), name="RM2"
            )
        else:
            component2 = _random_route_map(rng, "RM2")

    detail = _backend_mismatch(kind, component1, component2)
    if detail is None:
        result.differences += len(_backend_report(kind, component1, component2))
        return None

    def fails(c1, c2) -> bool:
        try:
            return _backend_mismatch(kind, c1, c2) is not None
        except Exception:  # noqa: BLE001 - a shrunk pair may fail differently
            return False

    if kind == "acl":
        shrunk1, shrunk2 = _shrink_acl_pair(component1, component2, fails)
        reproducer = "\n".join(_render_acl(shrunk1) + _render_acl(shrunk2))
    else:
        shrunk1, shrunk2 = _shrink_route_map_pair(component1, component2, fails)
        reproducer = "\n".join(
            _render_route_map(shrunk1) + _render_route_map(shrunk2)
        )
    final_detail = _backend_mismatch(kind, shrunk1, shrunk2) or detail
    return SelfCheckFailure(
        "backend", case_seed, "backend-equivalence", final_detail, reproducer
    )


def _localization_payload(kind: str, component1, component2, backend: str) -> List[dict]:
    """Diff one pair, then localize under one explicit algebra backend.

    Unlike :func:`_backend_report` (which swaps the *whole* process
    default, exercising SemanticDiff and HeaderLocalize together), the
    diff here runs under the process default and only the localization
    algebra is forced, isolating the bitset-vs-BDD ``get_match`` /
    ``minimal_flat_terms`` paths the differential targets.
    """
    differ = diff_acls if kind == "acl" else diff_route_maps
    space, differences = differ(component1, component2)
    if kind == "acl":
        localize_acl_differences(
            space, differences, component1, component2, backend=backend
        )
    else:
        localize_route_map_differences(
            space, differences, component1, component2, backend=backend
        )
    payload = []
    for difference in differences:
        entry = semantic_difference_to_dict(difference)
        payload.append(
            {
                "localization": entry.get("localization"),
                "extra_localizations": entry.get("extra_localizations"),
            }
        )
    return payload


def _localization_mismatch(kind: str, component1, component2) -> Optional[str]:
    """One-line description of any bdd/atoms localization divergence.

    Compared term-for-term: two localizations only agree when their
    flat terms (positive range and subtracted ranges alike) match in
    order and content, for the main localization and every extra
    dimension.
    """
    payloads = {
        name: _localization_payload(kind, component1, component2, name)
        for name in ("bdd", "atoms")
    }
    baseline, candidate = payloads["bdd"], payloads["atoms"]
    if len(baseline) != len(candidate):
        return (
            f"bdd localized {len(baseline)} difference(s), "
            f"atoms localized {len(candidate)}"
        )
    for index, (entry1, entry2) in enumerate(zip(baseline, candidate)):
        loc1, loc2 = entry1["localization"], entry2["localization"]
        if loc1 != loc2:
            terms1 = (loc1 or {}).get("terms", [])
            terms2 = (loc2 or {}).get("terms", [])
            for position, (term1, term2) in enumerate(zip(terms1, terms2)):
                if term1 != term2:
                    return (
                        f"difference #{index} localization term #{position} "
                        f"diverges: bdd={term1!r} atoms={term2!r}"
                    )
            return (
                f"difference #{index} localization diverges "
                f"({len(terms1)} vs {len(terms2)} term(s))"
            )
        if entry1["extra_localizations"] != entry2["extra_localizations"]:
            extras1 = entry1["extra_localizations"] or {}
            extras2 = entry2["extra_localizations"] or {}
            keys = sorted(
                key
                for key in set(extras1) | set(extras2)
                if extras1.get(key) != extras2.get(key)
            )
            return (
                f"difference #{index} extra localization diverges "
                f"(dimensions: {', '.join(keys)})"
            )
    return None


def _run_localize_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    """Cross-validate atoms-backed vs BDD-backed HeaderLocalize.

    The same generated component pair is diffed once per backend name,
    then localized with the localization algebra forced to ``bdd`` and
    to ``atoms``; every flat term, included/excluded range, and extra
    dimension must agree exactly (shrunk on failure like the other
    differential generators).
    """
    rng = random.Random(case_seed)
    if rng.random() < 0.5:
        pair = generate_acl_pair(
            rule_count=rng.randint(6, 16),
            differences=rng.randint(0, 4),
            seed=case_seed,
        )
        kind, component1, component2 = "acl", pair.cisco_acl, pair.juniper_acl
    else:
        kind = "routemap"
        component1 = _random_route_map(rng, "RM1")
        if rng.random() < 0.7:
            component2 = dataclasses.replace(
                _perturb_route_map(component1, rng), name="RM2"
            )
        else:
            component2 = _random_route_map(rng, "RM2")

    detail = _localization_mismatch(kind, component1, component2)
    if detail is None:
        payload = _localization_payload(kind, component1, component2, "bdd")
        result.differences += len(payload)
        result.localizations += sum(
            1 for entry in payload if entry["localization"] is not None
        )
        return None

    def fails(c1, c2) -> bool:
        try:
            return _localization_mismatch(kind, c1, c2) is not None
        except Exception:  # noqa: BLE001 - a shrunk pair may fail differently
            return False

    if kind == "acl":
        shrunk1, shrunk2 = _shrink_acl_pair(component1, component2, fails)
        reproducer = "\n".join(_render_acl(shrunk1) + _render_acl(shrunk2))
    else:
        shrunk1, shrunk2 = _shrink_route_map_pair(component1, component2, fails)
        reproducer = "\n".join(
            _render_route_map(shrunk1) + _render_route_map(shrunk2)
        )
    final_detail = _localization_mismatch(kind, shrunk1, shrunk2) or detail
    return SelfCheckFailure(
        "localize", case_seed, "localization-equivalence", final_detail, reproducer
    )


def _fleet_mismatch(devices) -> Optional[str]:
    """One-line description of a fleet-atoms/atoms report divergence.

    Both runs are serial and memo-isolated (each ``compare_fleet``
    builds its own fresh memo), so the only variable is the backend —
    including the fleet-scale seeding pass the ``fleet-atoms`` backend
    runs before the matrix.
    """
    from ..core.fleet import compare_fleet
    from ..core.serialize import fleet_report_to_dict

    reports = {}
    for name in ("atoms", "fleet-atoms"):
        reports[name] = fleet_report_to_dict(
            compare_fleet(devices, workers=1, set_backend=name)
        )
    if reports["atoms"] == reports["fleet-atoms"]:
        return None
    keys = sorted(
        key
        for key in set(reports["atoms"]) | set(reports["fleet-atoms"])
        if reports["atoms"].get(key) != reports["fleet-atoms"].get(key)
    )
    return (
        f"fleet report diverges between atoms and fleet-atoms "
        f"(fields: {', '.join(keys)})"
    )


def _run_fleet_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    """Cross-validate ``fleet-atoms`` against ``atoms`` on a whole fleet.

    A generated gateway fleet — the connected-group seeding path end to
    end: grouping, universe fold, memo seeding, matrix replay, medoid
    election, reference reports — must serialize identically under both
    backends.  A divergence is shrunk by dropping devices while it
    persists, down to the minimal differing sub-fleet.
    """
    from ..workloads.datacenter import gateway_fleet

    rng = random.Random(case_seed)
    count = rng.randint(4, 7)
    devices, _ = gateway_fleet(
        count=count,
        outliers=rng.randint(0, count - 1),
        rule_count=rng.randint(8, 16),
        seed=case_seed,
    )
    detail = _fleet_mismatch(devices)
    if detail is None:
        from ..core.fleet import compare_fleet

        report = compare_fleet(devices, workers=1, set_backend="fleet-atoms")
        result.differences += sum(report.matrix.values())
        return None

    def fails(fleet) -> bool:
        try:
            return _fleet_mismatch(fleet) is not None
        except Exception:  # noqa: BLE001 - a shrunk fleet may fail differently
            return False

    progress = True
    while progress and len(devices) > 2:
        progress = False
        for index in range(len(devices)):
            candidate = devices[:index] + devices[index + 1 :]
            if fails(candidate):
                devices = candidate
                progress = True
                break
    reproducer_lines = [
        f"fleet of {len(devices)}: "
        + ", ".join(device.hostname for device in devices)
    ]
    for device in devices:
        for acl in device.acls.values():
            reproducer_lines.append(f"[{device.hostname}]")
            reproducer_lines.extend(_render_acl(acl))
    final_detail = _fleet_mismatch(devices) or detail
    return SelfCheckFailure(
        "fleet", case_seed, "fleet-backend-equivalence", final_detail,
        "\n".join(reproducer_lines),
    )


def _symmetry_mismatch(devices) -> Optional[str]:
    """One-line description of a compressed/uncompressed divergence.

    Both runs are serial and memo-isolated; the only variable is the
    symmetry-compression phase — fingerprint partition, representative-
    pair planning, and count/failure expansion.  The serialized reports
    (schema v4: matrix, reports, notes, partial flag, coverage) must be
    identical, which is the compression soundness claim end to end.
    """
    from ..core.fleet import compare_fleet
    from ..core.serialize import fleet_report_to_dict

    reports = {}
    for compress in (False, True):
        reports[compress] = fleet_report_to_dict(
            compare_fleet(devices, workers=1, compress=compress)
        )
    if reports[True] == reports[False]:
        return None
    keys = sorted(
        key
        for key in set(reports[True]) | set(reports[False])
        if reports[True].get(key) != reports[False].get(key)
    )
    return (
        f"fleet report diverges between compressed and uncompressed runs "
        f"(fields: {', '.join(keys)})"
    )


def _run_symmetry_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    """Cross-validate symmetry compression against the uncompressed run.

    Alternates between two fleet shapes: the gateway fleet (cross-
    vendor clones of one rule list plus distinct outliers — a mix of
    multi-member and singleton fingerprint classes) and the templated
    Clos fleet (a few role templates stamped onto many hostnames — the
    heavy-compression case).  A divergence is shrunk by dropping
    devices while it persists, like the ``fleet`` generator.
    """
    from ..workloads.datacenter import gateway_fleet, templated_clos_fleet

    rng = random.Random(case_seed)
    if rng.random() < 0.5:
        count = rng.randint(4, 7)
        devices, _ = gateway_fleet(
            count=count,
            outliers=rng.randint(0, count - 1),
            rule_count=rng.randint(8, 16),
            seed=case_seed,
        )
    else:
        count = rng.randint(4, 8)
        devices, _ = templated_clos_fleet(
            count=count,
            roles=rng.randint(1, min(3, count)),
            rule_count=rng.randint(6, 12),
            seed=case_seed,
        )
    detail = _symmetry_mismatch(devices)
    if detail is None:
        from ..core.fleet import compare_fleet

        report = compare_fleet(devices, workers=1)
        result.differences += sum(report.matrix.values())
        return None

    def fails(fleet) -> bool:
        try:
            return _symmetry_mismatch(fleet) is not None
        except Exception:  # noqa: BLE001 - a shrunk fleet may fail differently
            return False

    progress = True
    while progress and len(devices) > 2:
        progress = False
        for index in range(len(devices)):
            candidate = devices[:index] + devices[index + 1 :]
            if fails(candidate):
                devices = candidate
                progress = True
                break
    reproducer_lines = [
        f"fleet of {len(devices)}: "
        + ", ".join(device.hostname for device in devices)
    ]
    for device in devices:
        for acl in device.acls.values():
            reproducer_lines.append(f"[{device.hostname}]")
            reproducer_lines.extend(_render_acl(acl))
    final_detail = _symmetry_mismatch(devices) or detail
    return SelfCheckFailure(
        "symmetry", case_seed, "compression-report-identity", final_detail,
        "\n".join(reproducer_lines),
    )


_NEAR_IP_TOKEN = re.compile(r"(?<![\d.])(?:\d{1,3}\.){3}\d{1,3}(?![\d.])")


def _order_canonical(report: dict) -> dict:
    """Sort each top-level finding list into a literal-independent order.

    Serialized reports order findings by their concrete literals, so a
    non-monotone substitution permutes entries without changing any of
    them; sorting by JSON encoding makes the replay comparison
    order-insensitive at the top level while every entry stays
    compared exactly.
    """
    import json

    return {
        key: sorted(value, key=json.dumps)
        if isinstance(value, list)
        else value
        for key, value in report.items()
    }


def _near_symmetry_mismatch(devices) -> Optional[str]:
    """One-line description of a near-symmetry soundness violation.

    Two claims are cross-validated.  First, the three-mode report
    identity: ``compress`` ``off``/``exact``/``near`` must serialize
    byte-identically (the near plan replays counts through template
    signatures, so any unsound replay shows up as a diverging matrix).
    Second, the substitution-replay identity on full reports: when two
    same-template device pairs admit raw substitutions *and induce the
    same joint equality pattern over their hole atoms* (the theorem's
    precondition — a clone pair and a distinct-literal pair are not
    replay-equivalent even though each device maps individually), the
    first pair's live report rewritten through the substitutions must
    equal the second pair's live report *up to entry order*: the
    serializer orders findings by their concrete literals, and a
    non-monotone substitution permutes that order without changing any
    finding.
    """
    from ..core.fleet import compare_fleet
    from ..core.near_symmetry import (
        pair_pattern,
        raw_substitution,
        replay_report_dict,
    )
    from ..core.serialize import fleet_report_to_dict

    reports = {}
    for compress in ("off", "exact", "near"):
        reports[compress] = fleet_report_to_dict(
            compare_fleet(devices, workers=1, compress=compress)
        )
    for mode in ("exact", "near"):
        if reports[mode] != reports["off"]:
            keys = sorted(
                key
                for key in set(reports[mode]) | set(reports["off"])
                if reports[mode].get(key) != reports["off"].get(key)
            )
            return (
                f"fleet report diverges between {mode} compression and"
                f" the uncompressed run (fields: {', '.join(keys)})"
            )

    # Replay identity: (a, b) rewritten through per-device substitutions
    # must equal the live (c, d) report, for same-template a->c, b->d.
    groups: dict = {}
    for device in devices:
        groups.setdefault(device.template.fingerprint, []).append(device)
    multi = [
        sorted(group, key=lambda d: d.hostname)
        for group in groups.values()
        if len(group) >= 2
    ]
    multi.sort(key=lambda group: group[0].hostname)
    quad = None
    if multi and len(multi[0]) >= 4:
        quad = (multi[0][0], multi[0][2], multi[0][1], multi[0][3])
    elif len(multi) >= 2:
        quad = (multi[0][0], multi[1][0], multi[0][1], multi[1][1])
    if quad is not None:
        first, second, first_image, second_image = quad
        # Oriented-pattern equality is the replay precondition; the
        # report-level identity only holds when the pairs agree on
        # which hole atoms coincide within and across the two sides.
        same_pattern = pair_pattern(
            first.template.atom_sequence, second.template.atom_sequence
        ) == pair_pattern(
            first_image.template.atom_sequence,
            second_image.template.atom_sequence,
        )
        sub1 = raw_substitution(first, first_image)
        sub2 = raw_substitution(second, second_image)
        if same_pattern and sub1 is not None and sub2 is not None:
            mapping = dict(sub1)
            conflict = any(
                mapping.get(key, value) != value
                for key, value in sub2.items()
            )
            if not conflict:
                mapping.update(sub2)
                replayed = replay_report_dict(
                    report_to_dict(config_diff(first, second)), mapping
                )
                live = report_to_dict(
                    config_diff(first_image, second_image)
                )
                if _order_canonical(replayed) != _order_canonical(live):
                    return (
                        "substitution-replayed report for"
                        f" ({first.hostname}, {second.hostname}) !="
                        " live report for"
                        f" ({first_image.hostname}, {second_image.hostname})"
                    )
    return None


def _run_near_symmetry_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    """Cross-validate near-symmetry compression on parameterized fleets.

    The base fleet is the parameterized Clos (unique per-device
    loopbacks/subnets/peers — exact compression finds nothing, so
    every collapsed pair exercises the template-signature replay).
    Cases then randomly stamp in a byte-identical clone (an exact class
    inside a template class) and *alias substitutions* by rewriting one
    device's IP literal onto another of its own literals — changing the
    joint equality pattern, which the signature partition must refuse
    to replay across.  A divergence is shrunk by dropping devices and
    by perturbing substitutions toward byte-identical clones while the
    mismatch persists.
    """
    from ..workloads.datacenter import parameterized_clos_fleet

    rng = random.Random(case_seed)
    count = rng.randint(4, 9)
    devices, _ = parameterized_clos_fleet(
        count=count,
        roles=rng.randint(1, min(3, count)),
        rule_count=rng.randint(4, 10),
        seed=case_seed,
        acls=rng.randint(1, 2),
        uplinks=rng.randint(1, 3),
    )
    if rng.random() < 0.4:
        source = rng.choice(devices)
        clone_text = "\n".join(source.raw_lines).replace(
            source.hostname, "pclosxx"
        )
        devices.append(parse_cisco(clone_text, "pclosxx.cfg"))
    if rng.random() < 0.4:
        index = rng.randrange(len(devices))
        mutated = _alias_one_literal(devices[index], rng)
        if mutated is not None:
            devices[index] = mutated

    detail = _near_symmetry_mismatch(devices)
    if detail is None:
        from ..core.fleet import compare_fleet

        report = compare_fleet(devices, workers=1, compress="near")
        result.differences += sum(report.matrix.values())
        return None

    def fails(fleet) -> bool:
        try:
            return _near_symmetry_mismatch(fleet) is not None
        except Exception:  # noqa: BLE001 - a shrunk fleet may fail differently
            return False

    progress = True
    while progress and len(devices) > 2:
        progress = False
        for index in range(len(devices)):
            candidate = devices[:index] + devices[index + 1 :]
            if fails(candidate):
                devices = candidate
                progress = True
                break
        if progress:
            continue
        # Substitution-perturbing shrink: replace one device with a
        # hostname-renamed clone of another (collapsing two distinct
        # substitutions into an exact class) while the mismatch holds.
        # Only accepted when it strictly reduces the number of distinct
        # device contents (modulo hostname) — otherwise clone swaps
        # could cycle forever without converging.
        def distinct_contents(fleet) -> int:
            return len(
                {
                    "\n".join(device.raw_lines).replace(
                        device.hostname, "HOSTNAME"
                    )
                    for device in fleet
                }
            )

        before = distinct_contents(devices)
        for index in range(len(devices)):
            for source in devices:
                if source.hostname == devices[index].hostname:
                    continue
                clone_text = "\n".join(source.raw_lines).replace(
                    source.hostname, devices[index].hostname
                )
                try:
                    clone = parse_cisco(
                        clone_text, devices[index].filename
                    )
                except Exception:  # noqa: BLE001 - mixed-vendor text
                    continue
                candidate = list(devices)
                candidate[index] = clone
                if distinct_contents(candidate) < before and fails(
                    candidate
                ):
                    devices = candidate
                    progress = True
                    break
            if progress:
                break
    reproducer_lines = [
        f"fleet of {len(devices)}: "
        + ", ".join(device.hostname for device in devices)
    ]
    for device in devices:
        reproducer_lines.append(f"[{device.hostname}]")
        reproducer_lines.append(
            "substitution: "
            + ", ".join(device.template.substitution)
        )
        for acl in device.acls.values():
            reproducer_lines.extend(_render_acl(acl))
    final_detail = _near_symmetry_mismatch(devices) or detail
    return SelfCheckFailure(
        "near-symmetry",
        case_seed,
        "near-compression-report-identity",
        final_detail,
        "\n".join(reproducer_lines),
    )


def _alias_one_literal(device, rng) -> Optional["object"]:
    """Rewrite one IPv4 literal of ``device`` onto another of its own.

    This aliases two previously-distinct substitution values, changing
    the device's joint equality pattern against its template class —
    the exact situation the signature partition must analyze separately
    instead of replaying.  Returns the re-parsed device, or ``None``
    when the mutation does not parse (e.g. an address swapped into a
    netmask position).
    """
    text = "\n".join(device.raw_lines)
    literals = sorted(set(_NEAR_IP_TOKEN.findall(text)))
    if len(literals) < 2:
        return None
    source, target = rng.sample(literals, 2)
    mutated = re.sub(
        rf"(?<![\d.]){re.escape(source)}(?![\d.])", target, text
    )
    try:
        return parse_cisco(mutated, device.filename)
    except Exception:  # noqa: BLE001 - swapped literal may be malformed
        return None


def _service_roundtrip(url: str, configs) -> dict:
    """Push config texts through the live daemon; the result document.

    Raises on any non-success path (HTTP error, job failure, poll
    timeout) — the service case treats those as failures too, not just
    report divergence.
    """
    import json as json_module
    import urllib.request

    request = urllib.request.Request(
        url + "/v1/fleet",
        data=json_module.dumps(
            {"configs": configs, "tenant": "oracle", "workers": 1}
        ).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        job_id = json_module.loads(response.read())["job"]["id"]
    deadline = time.time() + 120.0
    while time.time() < deadline:
        with urllib.request.urlopen(
            f"{url}/v1/jobs/{job_id}", timeout=30
        ) as response:
            document = json_module.loads(response.read())
        state = document["job"]["state"]
        if state == "done":
            return document["result"]
        if state in ("failed", "dead-letter"):
            raise RuntimeError(
                f"service job {state}: {document['job']['error']}"
            )
        time.sleep(0.05)
    raise RuntimeError("service job did not finish within 120s")


def _service_mismatch(url: str, devices) -> Optional[str]:
    """One-line description of an HTTP/in-process divergence, else None.

    Both sides parse the same rendered texts (not the already-parsed
    devices), so the comparison covers the service's parse path too;
    reports are compared as canonical JSON bytes — the byte-identity
    contract ``fleet --json`` already guarantees across runs.
    """
    import json as json_module

    from ..core.fleet import compare_fleet
    from ..core.serialize import fleet_report_to_dict
    from ..parsers import parse_config

    configs = [
        {
            "name": f"{device.hostname}.cfg",
            "text": "\n".join(device.raw_lines) + "\n",
        }
        for device in devices
    ]
    parsed = [
        parse_config(config["text"], filename=config["name"], dialect="auto")
        for config in configs
    ]
    expected = json_module.dumps(
        fleet_report_to_dict(compare_fleet(parsed, workers=1)),
        sort_keys=True,
    )
    try:
        result = _service_roundtrip(url, configs)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return f"service round-trip failed: {exc}"
    actual = json_module.dumps(result["report"], sort_keys=True)
    if actual != expected:
        for offset, (left, right) in enumerate(zip(expected, actual)):
            if left != right:
                return (
                    "service report diverges from in-process compare_fleet"
                    f" at byte {offset}"
                )
        return (
            "service report diverges from in-process compare_fleet"
            f" (lengths {len(expected)} vs {len(actual)})"
        )
    return None


def _run_service_case(
    case_seed: int, result: SelfCheckResult
) -> Optional[SelfCheckFailure]:
    """Round-trip a generated fleet through the HTTP analysis service.

    A throwaway in-thread daemon (ephemeral port, temp journal, cache
    disabled so every run is cold) analyzes the fleet via the real
    submit/queue/supervise/poll path; the returned report must be
    byte-identical JSON to the in-process ``compare_fleet`` over the
    same texts.  A divergence is shrunk by dropping devices.
    """
    import tempfile

    from ..service import ServiceConfig, ServiceThread
    from ..workloads.datacenter import gateway_fleet

    rng = random.Random(case_seed)
    count = rng.randint(3, 5)
    devices, _ = gateway_fleet(
        count=count,
        outliers=rng.randint(0, count - 1),
        rule_count=rng.randint(6, 12),
        seed=case_seed,
    )
    with tempfile.TemporaryDirectory(prefix="campion-oracle-") as tmp:
        config = ServiceConfig(
            port=0,
            journal_path=f"{tmp}/journal.jsonl",
            no_cache=True,
            workers=1,
            job_concurrency=1,
        )
        with ServiceThread(config) as service:
            detail = _service_mismatch(service.url, devices)
            if detail is None:
                result.differences += 0
                return None

            def fails(fleet) -> bool:
                try:
                    return _service_mismatch(service.url, fleet) is not None
                except Exception:  # noqa: BLE001 - shrunk fleet may differ
                    return False

            progress = True
            while progress and len(devices) > 2:
                progress = False
                for index in range(len(devices)):
                    candidate = devices[:index] + devices[index + 1 :]
                    if fails(candidate):
                        devices = candidate
                        progress = True
                        break
            reproducer_lines = [
                f"fleet of {len(devices)}: "
                + ", ".join(device.hostname for device in devices)
            ]
            final_detail = _service_mismatch(service.url, devices) or detail
    return SelfCheckFailure(
        "service",
        case_seed,
        "service-report-identity",
        final_detail,
        "\n".join(reproducer_lines),
    )


def _merge(result: SelfCheckResult, stats: CheckStats) -> None:
    result.differences += stats.differences
    result.samples += stats.samples
    result.witnesses += stats.witnesses
    result.localizations += stats.localizations
    result.skipped.extend(stats.skipped)


_CASE_RUNNERS = {
    "acl": _run_acl_case,
    "routemap": _run_route_map_case,
    "mutation": _run_mutation_case,
    "memo": _run_memo_case,
    "backend": _run_backend_case,
    "localize": _run_localize_case,
    "fleet": _run_fleet_case,
    "symmetry": _run_symmetry_case,
    "near-symmetry": _run_near_symmetry_case,
    "service": _run_service_case,
}


def run_selfcheck(
    seed: int = 0,
    pairs: int = 50,
    on_progress: Optional[Callable[[int, int], None]] = None,
    cache=None,
    set_backend: Optional[str] = None,
    generators: Optional[Sequence[str]] = None,
) -> SelfCheckResult:
    """Run the differential harness on ``pairs`` generated cases.

    Deterministic in ``seed``: case ``i`` uses seed
    ``seed * 1_000_003 + i``, so a reported failure re-runs standalone.
    All failures are collected (the run does not stop at the first).
    ``cache`` (an :class:`~repro.cache.ArtifactCache`, or ``None``) is
    threaded into the memoization cross-check cases only.

    ``set_backend`` scopes the process-default set-algebra backend to
    this run, so the whole harness — every brute-force comparison, not
    just the dedicated backend cross-check cases — exercises that
    backend; the backend cases themselves always compare both.

    ``generators`` restricts the run to a subset of case generators
    (names from ``--generators`` / this module's ``_GENERATORS``), so a
    targeted CI job can spend all its cases on one cross-check.
    """
    if generators:
        unknown = sorted(set(generators) - set(_GENERATORS))
        if unknown:
            raise ValueError(
                f"unknown generator(s): {', '.join(unknown)}"
                f" (available: {', '.join(_GENERATORS)})"
            )
        pool: Sequence[str] = tuple(generators)
    else:
        pool = _GENERATORS
    result = SelfCheckResult(seed=seed, pairs=pairs)
    start = time.time()
    scope = (
        setalg.default_backend(set_backend)
        if set_backend is not None
        else contextlib.nullcontext()
    )
    with scope:
        for index in range(pairs):
            kind = pool[index % len(pool)]
            case_seed = seed * 1_000_003 + index
            if kind == "memo":
                failure = _run_memo_case(case_seed, result, cache=cache)
            else:
                failure = _CASE_RUNNERS[kind](case_seed, result)
            if failure is not None:
                result.failures.append(failure)
            if on_progress is not None:
                on_progress(index + 1, pairs)
    result.elapsed = time.time() - start
    return result
