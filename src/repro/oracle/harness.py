"""The differential checks tying the BDD pipeline to the brute-force oracle.

For one component pair the harness asserts, in order:

1. **partition sanity** — each side's equivalence classes are pairwise
   disjoint and cover the input space (the encoder invariant §3.1 rests
   on);
2. **union vs naive** — the union of SemanticDiff's reported input sets
   equals an independently computed disagreement set: the quadratic
   union of ``p₁ ∧ p₂`` over every cross pair whose canonical action
   keys differ (no agreement-region pruning, no intersect filters);
3. **union vs monolithic** (ACLs) — the same union equals
   ``permit₁ ⊕ permit₂`` of the first-match-composed permit sets, a
   third formulation that bypasses the class partition entirely;
4. **sample agreement** — for every enumerated concrete sample, the
   concrete evaluators disagree iff the sample's encoding lies inside
   the reported union;
5. **witness reproduction** — each difference's witness model decodes to
   a concrete input on which the evaluators really disagree (and, for
   observability-safe route workloads, on which the *extensional*
   outcomes differ);
6. **localization exactness & minimality** — each difference's
   HeaderLocalize output denotes exactly the projected affected set,
   every term denotes a nonempty set, and no term is covered by the
   union of the others.

Any violated check raises :class:`OracleFailure` naming the check and
the offending input, which the driver shrinks to a minimal reproducer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..bdd import Bdd, complete_model
from ..core.ddnf import RangeAlgebra, address_prefix_algebra, prefix_range_algebra
from ..core.header_localize import HeaderLocalizeError, header_localize
from ..core.results import ComponentKind
from ..core.semantic_diff import canonical_action_key, semantic_diff_classes
from ..encoding import (
    PacketSpace,
    RouteSpace,
    acl_equivalence_classes,
    route_map_equivalence_classes,
)
from ..encoding.classes import EquivalenceClass
from ..model.acl import Acl
from ..model.routemap import RouteMap
from ..model.types import Prefix
from .evaluator import (
    RouteSample,
    SENTINEL_COMMUNITY,
    acl_disposition,
    enumerate_packet_samples,
    enumerate_route_samples,
    route_behavior,
    route_disposition,
    supports_concrete_oracle,
)

__all__ = [
    "OracleFailure",
    "CheckStats",
    "naive_disagreement",
    "check_acl_pair",
    "check_route_map_pair",
]


class OracleFailure(AssertionError):
    """One differential check failed.

    ``check`` names the violated property; ``detail`` pins the offending
    input (sample, witness, or term) so reproducers are self-contained.
    """

    def __init__(self, check: str, detail: str):
        super().__init__(f"{check}: {detail}")
        self.check = check
        self.detail = detail


@dataclass
class CheckStats:
    """What one harness run covered (for reporting, not assertions)."""

    differences: int = 0
    samples: int = 0
    witnesses: int = 0
    localizations: int = 0
    terms: int = 0
    skipped: List[str] = field(default_factory=list)


def naive_disagreement(
    classes1: Sequence[EquivalenceClass], classes2: Sequence[EquivalenceClass]
) -> Bdd:
    """The disagreement set computed the slow, obvious way.

    A deliberate re-derivation with none of SemanticDiff's machinery:
    every cross pair of classes, keyed only by :func:`canonical_action_key`,
    no agreement-region complement, no intersect pruning.  Agreement with
    ``semantic_diff_classes``'s output union is therefore meaningful.
    """
    manager = classes1[0].predicate.manager
    result = manager.false
    for class1 in classes1:
        key1 = canonical_action_key(class1.action)
        for class2 in classes2:
            if key1 != canonical_action_key(class2.action):
                result = result | (class1.predicate & class2.predicate)
    return result


def _check_partition(
    classes: Sequence[EquivalenceClass], universe: Bdd, context: str
) -> None:
    manager = universe.manager
    cover = manager.disjoin(cls.predicate for cls in classes)
    if cover != universe:
        raise OracleFailure(
            "partition-cover", f"{context}: classes do not cover the input space"
        )
    for index, cls in enumerate(classes):
        for other in classes[index + 1 :]:
            if cls.predicate.intersects(other.predicate):
                raise OracleFailure(
                    "partition-disjoint",
                    f"{context}: classes {cls.step_name!r} and "
                    f"{other.step_name!r} overlap",
                )


def _check_localization(
    affected: Bdd,
    ranges: Sequence,
    algebra: RangeAlgebra,
    to_pred: Callable,
    context: str,
    stats: CheckStats,
) -> None:
    """Exactness, per-term nonemptiness, and minimality of one localization."""
    manager = affected.manager
    localization = header_localize(affected, ranges, algebra, to_pred)
    denotations = []
    for term in localization.terms:
        denoted = to_pred(term.range)
        for subtrahend in term.minus:
            denoted = denoted - to_pred(subtrahend)
        if denoted.is_false():
            raise OracleFailure(
                "localize-empty-term", f"{context}: term {term.render()} denotes ∅"
            )
        denotations.append(denoted)
    rebuilt = manager.disjoin(denotations)
    if rebuilt != affected:
        raise OracleFailure(
            "localize-exact",
            f"{context}: union of {len(localization.terms)} terms does not "
            "equal the affected set",
        )
    for index, term in enumerate(localization.terms):
        rest = denotations[:index] + denotations[index + 1 :]
        if rest and denotations[index].implies(manager.disjoin(rest)):
            raise OracleFailure(
                "localize-minimal",
                f"{context}: term {term.render()} is covered by the union "
                "of the other terms",
            )
    stats.localizations += 1
    stats.terms += len(localization.terms)


# ---------------------------------------------------------------------------
# ACL pairs
# ---------------------------------------------------------------------------


def check_acl_pair(
    acl1: Acl,
    acl2: Acl,
    rng: Optional[random.Random] = None,
    sample_budget: int = 96,
    localize: bool = True,
) -> CheckStats:
    """Run every differential check on one ACL pair."""
    if rng is None:
        rng = random.Random(0)
    stats = CheckStats()
    space = PacketSpace()
    classes1 = acl_equivalence_classes(space, acl1)
    classes2 = acl_equivalence_classes(space, acl2)
    _check_partition(classes1, space.manager.true, f"acl {acl1.name}")
    _check_partition(classes2, space.manager.true, f"acl {acl2.name}")

    differences = semantic_diff_classes(ComponentKind.ACL, classes1, classes2)
    stats.differences = len(differences)
    union = space.manager.disjoin(d.input_set for d in differences)

    naive = naive_disagreement(classes1, classes2)
    if union != naive:
        raise OracleFailure(
            "acl-union-vs-naive",
            "SemanticDiff union differs from the quadratic cross-pair union",
        )
    monolithic = space.acl_permit_pred(acl1) ^ space.acl_permit_pred(acl2)
    if union != monolithic:
        raise OracleFailure(
            "acl-union-vs-monolithic",
            "SemanticDiff union differs from permit1 XOR permit2",
        )

    for sample in enumerate_packet_samples((acl1, acl2), rng, sample_budget):
        concrete = acl_disposition(acl1, sample) != acl_disposition(acl2, sample)
        symbolic = space.encode_concrete(**sample.as_kwargs()).intersects(union)
        if concrete != symbolic:
            raise OracleFailure(
                "acl-sample",
                f"packet [{sample.describe()}]: concrete evaluators "
                f"{'disagree' if concrete else 'agree'} but the reported "
                f"union says {'disagree' if symbolic else 'agree'}",
            )
        stats.samples += 1

    for difference in differences:
        model = complete_model(difference.input_set, space.manager.num_vars)
        if model is None:
            raise OracleFailure(
                "acl-witness", "a reported difference has an empty input set"
            )
        packet = space.decode(model)
        if acl1.evaluate_concrete(
            packet.src_ip,
            packet.dst_ip,
            packet.protocol,
            packet.src_port,
            packet.dst_port,
            packet.icmp_type,
        ) == acl2.evaluate_concrete(
            packet.src_ip,
            packet.dst_ip,
            packet.protocol,
            packet.src_port,
            packet.dst_port,
            packet.icmp_type,
        ):
            raise OracleFailure(
                "acl-witness",
                f"witness packet {packet.describe()} does not reproduce "
                "the difference concretely",
            )
        stats.witnesses += 1

    if localize:
        _check_acl_localizations(space, acl1, acl2, differences, stats)
    return stats


def _check_acl_localizations(
    space: PacketSpace, acl1: Acl, acl2: Acl, differences, stats: CheckStats
) -> None:
    vocabularies = {"srcIp": [], "dstIp": []}
    prefix_only = {"srcIp": True, "dstIp": True}
    for acl in (acl1, acl2):
        for line in acl.lines:
            for label, wildcard in (("srcIp", line.src), ("dstIp", line.dst)):
                prefix = wildcard.as_prefix()
                if prefix is None:
                    prefix_only[label] = False
                elif prefix not in vocabularies[label]:
                    vocabularies[label].append(prefix)
    fields = {"srcIp": space.src_ip, "dstIp": space.dst_ip}
    for label, bitvector in fields.items():
        if not prefix_only[label]:
            # Discontiguous wildcards: the space is not prefix-generated,
            # so production code degrades to example-only output there.
            stats.skipped.append(f"localize-{label}-non-prefix")
            continue
        keep = set(bitvector.var_indices)
        drop = [i for i in range(space.manager.num_vars) if i not in keep]

        def to_pred(prefix: Prefix, _bitvector=bitvector) -> Bdd:
            from ..model.acl import IpWildcard

            return space.wildcard_pred(_bitvector, IpWildcard.from_prefix(prefix))

        for index, difference in enumerate(differences):
            projected = space.manager.exists(difference.input_set, drop)
            try:
                _check_localization(
                    projected,
                    vocabularies[label],
                    address_prefix_algebra(),
                    to_pred,
                    f"difference {index} / {label}",
                    stats,
                )
            except HeaderLocalizeError as exc:
                raise OracleFailure(
                    "localize-inexpressible",
                    f"difference {index} / {label}: {exc} (the affected set "
                    "must be generated by the configurations' own prefixes)",
                ) from exc


# ---------------------------------------------------------------------------
# Route-map pairs
# ---------------------------------------------------------------------------


def check_route_map_pair(
    map1: RouteMap,
    map2: RouteMap,
    rng: Optional[random.Random] = None,
    sample_budget: int = 80,
    behavioral: bool = False,
    localize: bool = True,
) -> CheckStats:
    """Run every differential check on one route-map pair.

    ``behavioral=True`` additionally requires witnesses to differ
    *extensionally* (distinct output routes), which is only sound for
    observability-safe workloads — the driver's generated maps qualify;
    arbitrary parsed configs may set an attribute to its incoming value.
    """
    if rng is None:
        rng = random.Random(0)
    stats = CheckStats()
    space = RouteSpace([map1, map2])
    classes1 = route_map_equivalence_classes(space, map1)
    classes2 = route_map_equivalence_classes(space, map2)
    _check_partition(classes1, space.universe, f"route map {map1.name}")
    _check_partition(classes2, space.universe, f"route map {map2.name}")

    differences = semantic_diff_classes(
        ComponentKind.ROUTE_MAP, classes1, classes2
    )
    stats.differences = len(differences)
    union = space.manager.disjoin(d.input_set for d in differences)

    naive = naive_disagreement(classes1, classes2)
    if union != naive:
        raise OracleFailure(
            "routemap-union-vs-naive",
            "SemanticDiff union differs from the quadratic cross-pair union",
        )

    concrete_ok = supports_concrete_oracle(map1) and supports_concrete_oracle(map2)
    if not concrete_ok:
        stats.skipped.append("routemap-concrete-aspath")

    if concrete_ok:
        for sample in enumerate_route_samples(space, (map1, map2), rng, sample_budget):
            key1 = canonical_action_key(route_disposition(map1, sample))
            key2 = canonical_action_key(route_disposition(map2, sample))
            concrete = key1 != key2
            symbolic = space.encode_concrete(
                sample.prefix, sample.communities, sample.tag, sample.protocol
            ).intersects(union)
            if concrete != symbolic:
                raise OracleFailure(
                    "routemap-sample",
                    f"route [{sample.describe()}]: concrete dispositions "
                    f"{'differ' if concrete else 'agree'} but the reported "
                    f"union says {'differ' if symbolic else 'agree'}",
                )
            stats.samples += 1

    sentinel_safe = SENTINEL_COMMUNITY not in space.communities
    for difference in differences:
        model = complete_model(difference.input_set, space.manager.num_vars)
        if model is None:
            raise OracleFailure(
                "routemap-witness", "a reported difference has an empty input set"
            )
        example = space.decode(model)
        if not concrete_ok or example.matched_regexes:
            continue
        sample = RouteSample(
            prefix=example.prefix,
            communities=example.communities,
            tag=example.tag,
            protocol=example.protocol,
        )
        key1 = canonical_action_key(route_disposition(map1, sample))
        key2 = canonical_action_key(route_disposition(map2, sample))
        if key1 == key2:
            raise OracleFailure(
                "routemap-witness",
                f"witness route [{sample.describe()}] takes the same "
                "disposition through both maps",
            )
        if behavioral and sentinel_safe:
            if route_behavior(map1, sample) == route_behavior(map2, sample):
                raise OracleFailure(
                    "routemap-witness-behavior",
                    f"witness route [{sample.describe()}] produces identical "
                    "output routes despite differing dispositions",
                )
        stats.witnesses += 1

    if localize:
        ranges = map1.prefix_ranges() + map2.prefix_ranges()
        for index, difference in enumerate(differences):
            projected = space.project_to_prefix(difference.input_set)
            try:
                _check_localization(
                    projected,
                    ranges,
                    prefix_range_algebra(),
                    space.range_pred,
                    f"difference {index} / prefix",
                    stats,
                )
            except HeaderLocalizeError as exc:
                raise OracleFailure(
                    "localize-inexpressible",
                    f"difference {index} / prefix: {exc}",
                ) from exc
    return stats
