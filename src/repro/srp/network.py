"""The network model of Definition 3.1, made executable.

A network is a topology ``T = (V, E)``, a route set ``R`` (here: concrete
:class:`~repro.model.eval.ConcreteRoute` values), per-protocol
configuration functions mapping edges to configurations, per-protocol
transfer functions, and per-protocol preference relations.

The configurations attached to edges are built from the *same*
vendor-independent model Campion compares — BGP edges carry the sender's
export route map and the receiver's import route map — which is what
makes the Theorem 3.3 harness meaningful: Campion's per-component
equivalence verdicts are exactly local equivalence of these transfer
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..model.eval import ConcreteRoute
from ..model.routemap import RouteMap
from ..model.types import Prefix

__all__ = ["Topology", "BgpEdgeConfig", "OspfEdgeConfig", "SrpNetwork"]

Edge = Tuple[str, str]


@dataclass
class Topology:
    """A directed graph of routers.  Edge (u, v) lets v learn from u."""

    nodes: List[str] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        known = set(self.nodes)
        for u, v in self.edges:
            if u not in known or v not in known:
                raise ValueError(f"edge ({u}, {v}) references unknown node")
        if len(set(self.edges)) != len(self.edges):
            raise ValueError("duplicate edges in topology")

    def in_edges(self, node: str) -> List[Edge]:
        """Directed edges arriving at ``node``."""
        return [edge for edge in self.edges if edge[1] == node]

    def add_bidirectional(self, u: str, v: str) -> None:
        """Add both directed edges between two nodes."""
        for edge in ((u, v), (v, u)):
            if edge not in self.edges:
                self.edges.append(edge)


@dataclass(frozen=True)
class BgpEdgeConfig:
    """BGP session configuration along one directed edge (u → v).

    ``export_map`` is u's per-neighbor export policy, ``import_map`` v's
    import policy; either may be None (accept unchanged).  ``ebgp``
    selects eBGP semantics: AS prepending on export and local-preference
    reset on import.
    """

    export_map: Optional[RouteMap] = None
    import_map: Optional[RouteMap] = None
    sender_asn: int = 0
    receiver_local_pref: int = 100
    ebgp: bool = True
    next_hop: Optional[int] = None
    send_communities: bool = True


@dataclass(frozen=True)
class OspfEdgeConfig:
    """OSPF adjacency along one directed edge: the receiver-side cost."""

    cost: int = 1
    enabled: bool = True


@dataclass
class SrpNetwork:
    """Definition 3.1's tuple, with per-protocol edge configurations."""

    topology: Topology
    bgp_edges: Dict[Edge, BgpEdgeConfig] = field(default_factory=dict)
    ospf_edges: Dict[Edge, OspfEdgeConfig] = field(default_factory=dict)
    # Per-node originations: routes injected locally (connected, static,
    # or a BGP origination at the destination router).
    originations: Dict[str, List[ConcreteRoute]] = field(default_factory=dict)

    def originate(self, node: str, route: ConcreteRoute) -> None:
        """Inject a locally-originated route at ``node``."""
        if node not in self.topology.nodes:
            raise ValueError(f"unknown node {node!r}")
        self.originations.setdefault(node, []).append(route)

    def protocols(self) -> List[str]:
        """Protocols configured on at least one edge."""
        result = []
        if self.bgp_edges:
            result.append("bgp")
        if self.ospf_edges:
            result.append("ospf")
        return result
