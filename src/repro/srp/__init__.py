"""Stable Routing Problem simulator — the Theorem 3.3 substrate."""

from .equivalence import (
    LocalDifference,
    check_local_equivalence,
    same_routing_solutions,
    sample_routes,
)
from .network import BgpEdgeConfig, OspfEdgeConfig, SrpNetwork, Topology
from .protocols import bgp_prefer, bgp_transfer, best_route, ospf_prefer, ospf_transfer
from .solver import RoutingSolution, SolverError, solve_network, solve_protocol

__all__ = [
    "BgpEdgeConfig",
    "LocalDifference",
    "OspfEdgeConfig",
    "RoutingSolution",
    "SolverError",
    "SrpNetwork",
    "Topology",
    "best_route",
    "bgp_prefer",
    "bgp_transfer",
    "check_local_equivalence",
    "ospf_prefer",
    "ospf_transfer",
    "same_routing_solutions",
    "sample_routes",
    "solve_network",
    "solve_protocol",
]
