"""Stable-state solver for the SRP (the fixed routing processes of
Figure 4, executed to a fixpoint).

Each protocol is solved per destination prefix with a synchronous
Bellman-Ford-style iteration: every node's candidate set is its local
originations plus the transfers of its in-neighbors' current best
routes; the protocol preference picks the best; iteration repeats until
no node's choice changes.  Well-behaved policies (no persistent
oscillation) converge within |V| rounds per protocol; the solver bounds
iterations and raises on divergence rather than looping.

The RIB then selects among protocols by administrative distance, and the
forwarding function is a longest-prefix match over the RIB — the bottom
row of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model.eval import ConcreteRoute
from ..model.types import Prefix
from .network import SrpNetwork
from .protocols import best_route, bgp_transfer, ospf_transfer

__all__ = ["SolverError", "RoutingSolution", "solve_protocol", "solve_network"]


class SolverError(RuntimeError):
    """The iteration failed to stabilize (oscillating policy)."""


@dataclass
class RoutingSolution:
    """Stable routing state: best route per (node, protocol, prefix)."""

    best: Dict[Tuple[str, str, Prefix], ConcreteRoute] = field(default_factory=dict)

    def rib(self, node: str) -> Dict[Prefix, ConcreteRoute]:
        """Per-prefix RIB winner at a node, by administrative distance."""
        winners: Dict[Prefix, ConcreteRoute] = {}
        for (solution_node, _protocol, prefix), route in self.best.items():
            if solution_node != node:
                continue
            incumbent = winners.get(prefix)
            if incumbent is None or route.admin_distance < incumbent.admin_distance:
                winners[prefix] = route
        return winners

    def forward(self, node: str, dst_ip: int) -> Optional[ConcreteRoute]:
        """Longest-prefix-match forwarding decision at a node."""
        best: Optional[ConcreteRoute] = None
        for prefix, route in self.rib(node).items():
            if prefix.contains_address(dst_ip):
                if best is None or prefix.length > best.prefix.length:
                    best = route
        return best

    def routes_at(self, node: str) -> List[ConcreteRoute]:
        """All stable routes at a node, sorted for comparison."""
        return sorted(
            (
                route
                for (solution_node, _p, _prefix), route in self.best.items()
                if solution_node == node
            ),
            key=lambda r: (r.prefix, r.protocol),
        )


def solve_protocol(
    network: SrpNetwork, protocol: str, max_rounds: Optional[int] = None
) -> Dict[Tuple[str, Prefix], ConcreteRoute]:
    """Fixpoint of one protocol over all originated prefixes."""
    nodes = network.topology.nodes
    if max_rounds is None:
        max_rounds = 2 * len(nodes) + 4

    if protocol == "bgp":
        edges = network.bgp_edges
        transfer = bgp_transfer
    elif protocol == "ospf":
        edges = network.ospf_edges
        transfer = ospf_transfer
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    originated: Dict[str, List[ConcreteRoute]] = {}
    for node, routes in network.originations.items():
        for route in routes:
            if route.protocol == protocol:
                originated.setdefault(node, []).append(route)

    state: Dict[Tuple[str, Prefix], ConcreteRoute] = {}
    for node, routes in originated.items():
        for route in routes:
            key = (node, route.prefix)
            incumbent = state.get(key)
            state[key] = (
                route if incumbent is None else best_route(protocol, incumbent, route)
            )

    for _ in range(max_rounds):
        next_state: Dict[Tuple[str, Prefix], ConcreteRoute] = {}
        for node in nodes:
            candidates: Dict[Prefix, List[ConcreteRoute]] = {}
            for route in originated.get(node, []):
                candidates.setdefault(route.prefix, []).append(route)
            for edge in network.topology.in_edges(node):
                config = edges.get(edge)
                if config is None:
                    continue
                neighbor = edge[0]
                for (state_node, prefix), route in state.items():
                    if state_node != neighbor:
                        continue
                    transferred = transfer(config, route)
                    if transferred is not None:
                        candidates.setdefault(prefix, []).append(transferred)
            for prefix, routes in candidates.items():
                chosen = routes[0]
                for route in routes[1:]:
                    chosen = best_route(protocol, chosen, route)
                next_state[(node, prefix)] = chosen
        if next_state == state:
            return state
        state = next_state
    raise SolverError(f"{protocol} did not stabilize within {max_rounds} rounds")


def solve_network(network: SrpNetwork) -> RoutingSolution:
    """Solve every protocol and assemble the full routing solution."""
    solution = RoutingSolution()
    for protocol in network.protocols():
        stable = solve_protocol(network, protocol)
        for (node, prefix), route in stable.items():
            solution.best[(node, protocol, prefix)] = route
    # Non-propagating originations (connected/static) appear directly.
    for node, routes in network.originations.items():
        for route in routes:
            if route.protocol in ("static", "connected"):
                solution.best[(node, route.protocol, route.prefix)] = route
    return solution
