"""Per-protocol transfer functions and preference relations.

These are the blue "fixed process" nodes of the paper's Figure 4: route
selection and protocol mechanics are standardized; only the
configurations (route maps, costs) vary.  The transfer functions consume
the vendor-independent model directly, so a network built from two
locally-equivalent configurations runs the *same* transfers — the
hypothesis of Theorem 3.3.
"""

from __future__ import annotations

from typing import Optional

from ..model.eval import ConcreteRoute, evaluate_route_map
from .network import BgpEdgeConfig, OspfEdgeConfig

__all__ = [
    "bgp_transfer",
    "ospf_transfer",
    "bgp_prefer",
    "ospf_prefer",
    "best_route",
]


def bgp_transfer(config: BgpEdgeConfig, route: ConcreteRoute) -> Optional[ConcreteRoute]:
    """One BGP edge: sender export policy, session mechanics, receiver
    import policy.  Returns None for a filtered (⊥) route."""
    if route.protocol != "bgp":
        return None
    if config.export_map is not None:
        result = evaluate_route_map(config.export_map, route)
        if not result.accepted:
            return None
        assert result.route is not None
        route = result.route
    if not config.send_communities:
        route = route.with_updates(communities=frozenset())
    if config.ebgp:
        route = route.with_updates(
            as_path=(config.sender_asn,) + route.as_path,
            local_pref=config.receiver_local_pref,
        )
    if config.next_hop is not None:
        route = route.with_updates(next_hop=config.next_hop)
    if config.import_map is not None:
        result = evaluate_route_map(config.import_map, route)
        if not result.accepted:
            return None
        assert result.route is not None
        route = result.route
    return route


def ospf_transfer(config: OspfEdgeConfig, route: ConcreteRoute) -> Optional[ConcreteRoute]:
    """One OSPF adjacency: add the receiving interface's cost.

    The route's ``med`` field carries the OSPF metric (both are additive
    path costs; reusing the field keeps ConcreteRoute protocol-agnostic).
    """
    if route.protocol != "ospf" or not config.enabled:
        return None
    return route.with_updates(med=route.med + config.cost)


def bgp_prefer(a: ConcreteRoute, b: ConcreteRoute) -> ConcreteRoute:
    """The standard BGP decision process (the ≤ relation of Definition
    3.1): local preference, AS-path length, MED, then a deterministic
    next-hop tiebreak."""
    if a.local_pref != b.local_pref:
        return a if a.local_pref > b.local_pref else b
    if len(a.as_path) != len(b.as_path):
        return a if len(a.as_path) < len(b.as_path) else b
    if a.med != b.med:
        return a if a.med < b.med else b
    hop_a = a.next_hop if a.next_hop is not None else 0
    hop_b = b.next_hop if b.next_hop is not None else 0
    return a if hop_a <= hop_b else b


def ospf_prefer(a: ConcreteRoute, b: ConcreteRoute) -> ConcreteRoute:
    """OSPF prefers the lowest path cost (carried in ``med``)."""
    if a.med != b.med:
        return a if a.med < b.med else b
    hop_a = a.next_hop if a.next_hop is not None else 0
    hop_b = b.next_hop if b.next_hop is not None else 0
    return a if hop_a <= hop_b else b


def best_route(protocol: str, a: ConcreteRoute, b: ConcreteRoute) -> ConcreteRoute:
    """Dispatch to the protocol's preference relation."""
    if protocol == "bgp":
        return bgp_prefer(a, b)
    if protocol == "ospf":
        return ospf_prefer(a, b)
    raise ValueError(f"unknown protocol {protocol!r}")
