"""Local equivalence and the Theorem 3.3 harness.

Theorem 3.3: if two networks are *locally equivalent* under a topology
isomorphism — every per-edge, per-protocol transfer function agrees on
every route — then they have the same routing solutions.  The modular
checks Campion runs (SemanticDiff on the route maps attached to each
edge, StructuralDiff on costs) establish exactly local equivalence, so
Campion never needs to model BGP or OSPF themselves.

This module makes both sides of the implication executable:

* :func:`check_local_equivalence` decides the hypothesis — exactly, by
  running Campion's SemanticDiff on each edge's policy composition (and
  comparing OSPF costs structurally), plus optional concrete sampling as
  a sanity cross-check;
* :func:`same_routing_solutions` decides the conclusion by solving both
  networks to their stable states and comparing.

``tests/srp/test_theorem.py`` and ``benchmarks/bench_theorem33_srp.py``
drive randomized networks through both, checking the implication holds
and that mutated (non-locally-equivalent) networks exhibit divergent
solutions that Campion's modular checks would have flagged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.semantic_diff import diff_route_maps
from ..model.eval import ConcreteRoute
from ..model.routemap import RouteMap
from ..model.types import Community, Prefix
from .network import BgpEdgeConfig, Edge, OspfEdgeConfig, SrpNetwork
from .protocols import bgp_transfer, ospf_transfer
from .solver import RoutingSolution, solve_network

__all__ = [
    "LocalDifference",
    "check_local_equivalence",
    "sample_routes",
    "same_routing_solutions",
]


@dataclass(frozen=True)
class LocalDifference:
    """One violation of local equivalence: an edge whose transfers differ."""

    edge: Edge
    protocol: str
    detail: str


def _maps_equivalent(map1: Optional[RouteMap], map2: Optional[RouteMap]) -> bool:
    """Semantic equivalence of two (possibly absent) route maps.

    Absent maps are the identity (accept unchanged), modeled as an empty
    permit-all policy for the comparison.
    """
    from ..model.routemap import Action

    identity = RouteMap(name="<identity>", clauses=(), default_action=Action.PERMIT)
    _, differences = diff_route_maps(map1 or identity, map2 or identity)
    return not differences


def check_local_equivalence(
    net1: SrpNetwork,
    net2: SrpNetwork,
    iso: Optional[Dict[str, str]] = None,
) -> List[LocalDifference]:
    """All local-equivalence violations between two networks.

    ``iso`` maps net1 node names to net2 names (identity by default).
    BGP edges compare session mechanics structurally and policies with
    SemanticDiff; OSPF edges compare costs structurally.  An empty result
    is exactly Theorem 3.3's hypothesis.
    """
    iso = iso or {node: node for node in net1.topology.nodes}
    mapped_edges = {(iso[u], iso[v]) for u, v in net1.topology.edges}
    if mapped_edges != set(net2.topology.edges):
        raise ValueError("iso is not an isomorphism between the topologies")

    violations: List[LocalDifference] = []
    for edge in net1.topology.edges:
        mapped = (iso[edge[0]], iso[edge[1]])
        bgp1 = net1.bgp_edges.get(edge)
        bgp2 = net2.bgp_edges.get(mapped)
        if (bgp1 is None) != (bgp2 is None):
            violations.append(LocalDifference(edge, "bgp", "session on one side only"))
        elif bgp1 is not None and bgp2 is not None:
            mechanics1 = (bgp1.sender_asn, bgp1.ebgp, bgp1.receiver_local_pref, bgp1.send_communities)
            mechanics2 = (bgp2.sender_asn, bgp2.ebgp, bgp2.receiver_local_pref, bgp2.send_communities)
            if mechanics1 != mechanics2:
                violations.append(
                    LocalDifference(edge, "bgp", f"session mechanics {mechanics1} vs {mechanics2}")
                )
            if not _maps_equivalent(bgp1.export_map, bgp2.export_map):
                violations.append(LocalDifference(edge, "bgp", "export policies differ"))
            if not _maps_equivalent(bgp1.import_map, bgp2.import_map):
                violations.append(LocalDifference(edge, "bgp", "import policies differ"))

        ospf1 = net1.ospf_edges.get(edge)
        ospf2 = net2.ospf_edges.get(mapped)
        if (ospf1 is None) != (ospf2 is None):
            violations.append(LocalDifference(edge, "ospf", "adjacency on one side only"))
        elif ospf1 is not None and ospf2 is not None and ospf1 != ospf2:
            violations.append(
                LocalDifference(edge, "ospf", f"cost {ospf1.cost} vs {ospf2.cost}")
            )

    origin1 = {
        (node, tuple(sorted(routes, key=lambda r: (r.prefix, r.protocol))))
        for node, routes in net1.originations.items()
    }
    origin2 = {
        (iso_inverse_lookup(iso, node), tuple(sorted(routes, key=lambda r: (r.prefix, r.protocol))))
        for node, routes in net2.originations.items()
    }
    if origin1 != origin2:
        violations.append(
            LocalDifference(("<origin>", "<origin>"), "origination", "originated routes differ")
        )
    return violations


def iso_inverse_lookup(iso: Dict[str, str], node2: str) -> str:
    """The net1 name of a net2 node (inverse isomorphism lookup)."""
    for node1, mapped in iso.items():
        if mapped == node2:
            return node1
    raise KeyError(f"{node2!r} has no preimage under the isomorphism")


def sample_routes(
    rng: random.Random,
    count: int,
    protocol: str = "bgp",
    communities: Sequence[Community] = (),
) -> List[ConcreteRoute]:
    """Random concrete routes for sampling-based transfer comparison."""
    routes = []
    for _ in range(count):
        length = rng.randint(8, 32)
        network = rng.getrandbits(32) & (
            0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        )
        carried = frozenset(c for c in communities if rng.random() < 0.5)
        routes.append(
            ConcreteRoute(
                prefix=Prefix(network, length),
                communities=carried,
                as_path=tuple(
                    rng.randint(64512, 65534) for _ in range(rng.randint(0, 4))
                ),
                local_pref=rng.choice([50, 100, 150, 200]),
                med=rng.randint(0, 100),
                protocol=protocol,
                next_hop=rng.getrandbits(32),
            )
        )
    return routes


def same_routing_solutions(
    net1: SrpNetwork,
    net2: SrpNetwork,
    iso: Optional[Dict[str, str]] = None,
) -> Tuple[bool, str]:
    """Solve both networks and compare stable states under ``iso``.

    Returns (equal, explanation) — the conclusion of Theorem 3.3.

    SRP instances without stable solutions (dispute wheels — random
    policies occasionally build one) fall outside the theorem's
    hypothesis, but local equivalence still forces identical *dynamics*:
    when one network fails to stabilize the other must too, and that
    symmetric oscillation counts as equal behavior here; one side
    oscillating while the other stabilizes is a genuine difference.
    """
    from .solver import SolverError

    iso = iso or {node: node for node in net1.topology.nodes}
    try:
        solution1 = solve_network(net1)
    except SolverError as first_error:
        try:
            solve_network(net2)
        except SolverError:
            return True, f"both networks oscillate identically ({first_error})"
        return False, "net1 oscillates but net2 stabilizes"
    try:
        solution2 = solve_network(net2)
    except SolverError:
        return False, "net2 oscillates but net1 stabilizes"
    for node in net1.topology.nodes:
        routes1 = solution1.routes_at(node)
        routes2 = solution2.routes_at(iso[node])
        # next_hop values are node-local identifiers; compare the rest.
        normalized1 = [r.with_updates(next_hop=None) for r in routes1]
        normalized2 = [r.with_updates(next_hop=None) for r in routes2]
        if normalized1 != normalized2:
            return False, (
                f"node {node}: {len(routes1)} vs {len(routes2)} routes; "
                f"first mismatch among {normalized1} vs {normalized2}"
            )
    return True, "routing solutions identical"
